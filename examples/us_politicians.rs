//! US politicians domain: the paper's senator-election example.
//!
//! A new senator's page and the state's page must link each other, the old
//! senator's link is removed from the state, and the new senator records a
//! predecessor — while the old senator's page keeps pointing at the state.
//! This example mines the pattern, then shows the partial (erroneous)
//! elections WiClean flags.
//!
//! Run with: `cargo run --release --example us_politicians [seeds]`

use wiclean::core::partial::detect_partial_updates;
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::eval::quality::default_wc_config;
use wiclean::synth::{generate, scenarios, SynthConfig};

fn main() {
    let seeds: usize = std::env::args()
        .nth(1)
        .map_or(400, |a| a.parse().expect("seed count"));

    println!("generating a {seeds}-senator corpus…");
    let world = generate(
        scenarios::politics(),
        SynthConfig {
            seed_count: seeds,
            rng_seed: 777,
            ..SynthConfig::default()
        },
    );

    let wc = default_wc_config(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let result = find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc);

    // Locate the election pattern among the discoveries.
    let election = world
        .domain
        .expert_pattern(&world.domain.templates[0], &world.universe);
    let Some(found) = result.discovered.iter().find(|d| d.pattern == election) else {
        println!("election pattern not discovered at {seeds} seeds — try more");
        return;
    };
    println!(
        "\nelection pattern discovered (freq {:.2}, window {}):\n  {}",
        found.frequency,
        found.window,
        found.pattern.display(&world.universe)
    );

    let report = detect_partial_updates(
        &world.store,
        &world.universe,
        &wc.miner,
        &found.working,
        world.seed_type,
        &found.window,
        2,
    );
    println!(
        "\n{} complete elections, {} partial — e.g.:",
        report.complete_count,
        report.partials.len()
    );
    for p in report.partials.iter().take(5) {
        println!("  ⚠ {}", p.display(&world.universe));
    }
}
