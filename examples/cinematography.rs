//! Cinematography domain: mine actor-related edit patterns and compare the
//! discoveries against the domain's expert list (the paper's §6.3 recall
//! experiment, cinema column).
//!
//! Run with: `cargo run --release --example cinematography [seeds]`

use std::collections::BTreeSet;
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::eval::quality::default_wc_config;
use wiclean::synth::{generate, scenarios, SynthConfig};

fn main() {
    let seeds: usize = std::env::args()
        .nth(1)
        .map_or(400, |a| a.parse().expect("seed count"));

    println!("generating a {seeds}-actor cinematography corpus…");
    let world = generate(
        scenarios::cinema(),
        SynthConfig {
            seed_count: seeds,
            rng_seed: 20181101,
            ..SynthConfig::default()
        },
    );

    let wc = default_wc_config(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let result = find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc);

    let discovered: BTreeSet<_> = result
        .discovered
        .iter()
        .map(|d| d.pattern.clone())
        .collect();
    let expert = world.expert_list();

    println!("\nexpert pattern list vs. discoveries:");
    let mut hits = 0;
    for (name, pattern, is_windowed) in &expert {
        let hit = discovered.contains(pattern);
        hits += usize::from(hit);
        println!(
            "  [{}] {:<22} {:>9} — {}",
            if hit { "✓" } else { " " },
            name,
            if *is_windowed {
                "windowed"
            } else {
                "no window"
            },
            pattern.display(&world.universe)
        );
    }
    println!(
        "\nrecall {hits}/{} — the paper reports 7/8 for cinematography, with the \
         miss being the pattern that has no time window",
        expert.len()
    );

    let extra = result
        .discovered
        .iter()
        .filter(|d| !expert.iter().any(|(_, p, _)| *p == d.pattern))
        .count();
    println!("non-expert discoveries: {extra} (the paper reports 100% precision)");
}
