//! The paper's future-work domain transfer: software repositories.
//!
//! "Applying our ideas to other domains where revision histories are
//! available and link consistency is important (e.g., software
//! repositories) is another challenge" — WiClean's model needs nothing
//! Wikipedia-specific: package pages, releases, maintainers and licenses
//! are entities; coordinated edits (cut a release, hand over
//! maintainership, adopt a dependency) are patterns; a registry page that
//! lists a new release while the release page lacks the back-link is a
//! partial edit.
//!
//! Run with: `cargo run --release --example software_repos [seeds]`

use wiclean::core::partial::detect_partial_updates;
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::eval::quality::default_wc_config;
use wiclean::synth::{generate, scenarios, SynthConfig};

fn main() {
    let seeds: usize = std::env::args()
        .nth(1)
        .map_or(400, |a| a.parse().expect("seed count"));

    println!("generating a {seeds}-project software-registry corpus…");
    let world = generate(
        scenarios::software(),
        SynthConfig {
            seed_count: seeds,
            rng_seed: 20260705,
            ..SynthConfig::default()
        },
    );

    let wc = default_wc_config(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let result = find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc);

    println!("\ndiscovered maintenance patterns:");
    for d in result.by_frequency() {
        println!(
            "  freq {:.2} in {}:  {}",
            d.frequency,
            d.window,
            d.pattern.display(&world.universe)
        );
    }

    // Flag incomplete maintainer handovers.
    let handover = world
        .domain
        .expert_pattern(&world.domain.templates[1], &world.universe);
    if let Some(found) = result.discovered.iter().find(|d| d.pattern == handover) {
        let report = detect_partial_updates(
            &world.store,
            &world.universe,
            &wc.miner,
            &found.working,
            world.seed_type,
            &found.window,
            2,
        );
        println!(
            "\nmaintainer handovers: {} complete, {} incomplete:",
            report.complete_count,
            report.partials.len()
        );
        for p in report.partials.iter().take(6) {
            println!("  ⚠ {}", p.display(&world.universe));
        }
    }
}
