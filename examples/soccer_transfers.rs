//! End-to-end soccer run: generate a year of synthetic revision history,
//! search windows and patterns (Algorithm 2), then flag incomplete
//! transfers (Algorithm 3) with completion suggestions.
//!
//! Run with: `cargo run --release --example soccer_transfers [seeds]`

use wiclean::core::partial::detect_partial_updates;
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::eval::quality::default_wc_config;
use wiclean::synth::{generate, scenarios, SynthConfig};

fn main() {
    let seeds: usize = std::env::args()
        .nth(1)
        .map_or(400, |a| a.parse().expect("seed count"));

    println!("generating a {seeds}-player soccer corpus…");
    let world = generate(
        scenarios::soccer(),
        SynthConfig {
            seed_count: seeds,
            rng_seed: 20180801,
            ..SynthConfig::default()
        },
    );
    println!(
        "  {} pages, {} revisions, {} planted events, {} planted errors\n",
        world.store.page_count(),
        world.store.revision_count(),
        world.truth.events.len(),
        world.truth.errors.len()
    );

    let wc = default_wc_config(std::thread::available_parallelism().map_or(1, |n| n.get()));
    println!("running Algorithm 2 (window & threshold search)…");
    let result = find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc);
    println!(
        "  {} iterations, final window width {} days, final tau {:.3}\n",
        result.iterations,
        result.final_width / 86_400,
        result.final_tau
    );

    println!("discovered patterns:");
    for d in result.by_frequency() {
        println!(
            "  freq {:.2} in {}:  {}",
            d.frequency,
            d.window,
            d.pattern.display(&world.universe)
        );
        for r in &d.rel_patterns {
            println!(
                "      rel (rf {:.2}): {}",
                r.rel_frequency,
                r.pattern.display(&world.universe)
            );
        }
    }

    // Algorithm 3 on the highest-frequency discovered pattern.
    let Some(top) = result.by_frequency().first().copied().cloned() else {
        println!("no patterns discovered");
        return;
    };
    println!(
        "\nrunning Algorithm 3 on the top pattern in {}…",
        top.window
    );
    let report = detect_partial_updates(
        &world.store,
        &world.universe,
        &wc.miner,
        &top.working,
        world.seed_type,
        &top.window,
        3,
    );
    println!(
        "  {} complete realizations, {} partial (potential errors)",
        report.complete_count,
        report.partials.len()
    );
    for p in report.partials.iter().take(8) {
        println!("  ⚠ {}", p.display(&world.universe));
    }
    if report.partials.len() > 8 {
        println!("  … and {} more", report.partials.len() - 8);
    }
    println!("\ncomplete examples shown to the editor as evidence:");
    for ex in &report.complete_examples {
        let parts: Vec<String> = ex
            .iter()
            .map(|(v, e)| {
                format!(
                    "{}={}",
                    v.display(world.universe.taxonomy()),
                    world.universe.entity_name(*e)
                )
            })
            .collect();
        println!("  ✓ {}", parts.join(", "));
    }
}
