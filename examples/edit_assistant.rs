//! The WiClean plug-in experience: periodic-window detection and online
//! completion suggestions for an editor's in-flight change (paper §5,
//! "Edit assistance").
//!
//! Run with: `cargo run --release --example edit_assistant [seeds]`

use wiclean::core::assist::{find_periodic, suggest_completions};
use wiclean::core::partial::detect_partial_updates;
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::eval::quality::default_wc_config;
use wiclean::synth::{generate, scenarios, SynthConfig};

fn main() {
    let seeds: usize = std::env::args()
        .nth(1)
        .map_or(400, |a| a.parse().expect("seed count"));

    let world = generate(
        scenarios::soccer(),
        SynthConfig {
            seed_count: seeds,
            rng_seed: 20180801,
            ..SynthConfig::default()
        },
    );
    let wc = default_wc_config(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let result = find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc);

    // Periodic patterns across the final iteration's windows. (With one
    // simulated year each pattern has one occurrence window; a real
    // deployment feeds multiple years and `find_periodic` estimates the
    // recurrence period — here we lower the bar to one occurrence to show
    // the API.)
    let periodic = find_periodic(&result.window_results, 1);
    println!("patterns with identified occurrence windows:");
    for p in periodic.iter().take(6) {
        println!(
            "  {} — window(s) {:?}",
            p.pattern.display(&world.universe),
            p.windows
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
    }

    // Pick an entity with a flagged partial edit and show what the plug-in
    // would suggest to its editor.
    let Some(top) = result.by_frequency().first().copied().cloned() else {
        return;
    };
    let report = detect_partial_updates(
        &world.store,
        &world.universe,
        &wc.miner,
        &top.working,
        world.seed_type,
        &top.window,
        0,
    );
    let Some(victim) = report
        .partials
        .iter()
        .find_map(|p| p.assignment.first().and_then(|(_, e)| *e))
    else {
        println!("\nno partial edits to assist with — corpus fully coherent");
        return;
    };

    println!(
        "\nan editor is updating `{}` inside {} — the plug-in suggests:",
        world.universe.entity_name(victim),
        top.window
    );
    let suggestions = suggest_completions(
        &world.store,
        &world.universe,
        &wc.miner,
        &[(top.working.clone(), top.frequency)],
        world.seed_type,
        victim,
        &top.window,
    );
    for s in &suggestions {
        println!("  💡 {}", s.display(&world.universe));
    }
}
