//! Quickstart: the paper's Figure 1 on a scripted micro-world.
//!
//! Builds the Neymar-transfer scenario, prints the merged revision
//! timeline with the reduction column `R` (0 = cancelled by an inverse
//! edit), mines the transfer window, and prints the discovered pattern.
//!
//! Run with: `cargo run --release --example quickstart`

use wiclean::core::config::MinerConfig;
use wiclean::core::miner::WindowMiner;
use wiclean::revstore::{extract_actions_for, reduce_actions};
use wiclean::synth::neymar::neymar_scenario;

fn main() {
    let s = neymar_scenario();
    let u = &s.universe;

    // ---- Figure 1: the merged action timeline with the R column --------
    let players = u.entities_of(s.player_ty);
    let everyone: Vec<_> = u.entities().iter().collect();
    let _ = players;
    let out = extract_actions_for(&s.store, u, &everyone, &s.window);
    let reduced = reduce_actions(&out.actions);

    println!(
        "{:>3} {:>3} {:<18} {:<14} {:<18} {:>8} {:>2}",
        "#", "+/-", "Subject", "Relation", "Object", "Time", "R"
    );
    let mut actions = out.actions.clone();
    actions.sort_by_key(|a| a.time);
    for (i, a) in actions.iter().enumerate() {
        let survives = reduced.contains(a);
        println!(
            "{:>3} {:>3} {:<18} {:<14} {:<18} {:>8} {:>2}",
            i + 1,
            a.op.sigil(),
            u.entity_name(a.source),
            u.relation_name(a.rel),
            u.entity_name(a.target),
            a.time,
            u8::from(survives),
        );
    }
    println!(
        "\n{} raw actions, {} after reduction (rows with R=0 cancel out)\n",
        actions.len(),
        reduced.len()
    );

    // ---- Mine the transfer window ---------------------------------------
    let config = MinerConfig {
        tau: 0.5, // two of three players transfer coherently
        max_abstraction_height: 1,
        max_vars_per_type: 1, // single-player patterns, for readability
        mine_relative: false,
        ..MinerConfig::default()
    };
    let miner = WindowMiner::new(&s.store, u, config);
    let result = miner.mine_window(s.player_ty, &s.window);

    println!("most specific frequent patterns (tau = 0.5):");
    for p in result.most_specific() {
        println!("  freq {:.2}  {}", p.frequency, p.pattern.display(u));
    }
}
