//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the shim `serde` crate's [`Content`] tree to JSON text and
//! parses JSON text back into a content tree. Covers the API surface the
//! workspace uses: `to_string`, `to_string_pretty`, `from_str`, `Error`, and
//! an owned [`Value`] with indexing / `as_array` accessors.
//!
//! Conventions matching real serde_json where the workspace depends on them:
//! non-string map keys (integer ids) are written as quoted strings and parse
//! back through the integer impls' string fallback; `f64` values print in
//! Rust's shortest round-trip form, so `report == from_str(to_string(report))`
//! holds exactly.

use serde::{Content, Deserialize, Deserializer, Serialize};
use std::fmt;

/// Serialization/deserialization failure.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's Display for f64 is shortest-round-trip.
        out.push_str(&v.to_string());
    } else {
        // Real serde_json refuses non-finite floats; the workspace never
        // produces them, so map to null rather than fail a whole report.
        out.push_str("null");
    }
}

fn write_key(key: &Content, out: &mut String) -> Result<(), Error> {
    match key {
        Content::Str(s) => write_escaped(s, out),
        Content::U64(v) => write_escaped(&v.to_string(), out),
        Content::I64(v) => write_escaped(&v.to_string(), out),
        Content::F64(v) => write_escaped(&v.to_string(), out),
        Content::Bool(v) => write_escaped(&v.to_string(), out),
        other => {
            return Err(Error::new(format!(
                "map key must be a scalar, found {other:?}"
            )))
        }
    }
    Ok(())
}

fn write_content(
    content: &Content,
    out: &mut String,
    pretty: bool,
    level: usize,
) -> Result<(), Error> {
    const INDENT: &str = "  ";
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (ix, item) in items.iter().enumerate() {
                if ix > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&INDENT.repeat(level + 1));
                }
                write_content(item, out, pretty, level + 1)?;
            }
            if pretty {
                out.push('\n');
                out.push_str(&INDENT.repeat(level));
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (ix, (key, value)) in entries.iter().enumerate() {
                if ix > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&INDENT.repeat(level + 1));
                }
                write_key(key, out)?;
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_content(value, out, pretty, level + 1)?;
            }
            if pretty {
                out.push('\n');
                out.push_str(&INDENT.repeat(level));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&serde::ser::to_content(value), &mut out, false, 0)?;
    Ok(out)
}

/// Renders `value` as human-readable two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&serde::ser::to_content(value), &mut out, true, 0)?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: raw UTF-8 run up to the next quote or escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'+' | b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.error("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            text.parse::<i64>()
                .map(Content::I64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| self.error("invalid number"))
        }
    }
}

fn parse_content(input: &str) -> Result<Content, Error> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

/// Parses a value from JSON text.
pub fn from_str<'a, T: Deserialize<'a>>(input: &'a str) -> Result<T, Error> {
    T::deserialize(serde::de::ContentDeserializer::<Error>::new(parse_content(
        input,
    )?))
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// An owned, dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (normalized to `f64` for comparisons).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn from_content(content: Content) -> Result<Self, Error> {
        Ok(match content {
            Content::Null => Value::Null,
            Content::Bool(v) => Value::Bool(v),
            Content::U64(v) => Value::Number(v as f64),
            Content::I64(v) => Value::Number(v as f64),
            Content::F64(v) => Value::Number(v),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => Value::Array(
                items
                    .into_iter()
                    .map(Value::from_content)
                    .collect::<Result<_, _>>()?,
            ),
            Content::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| {
                        let key = match k {
                            Content::Str(s) => s,
                            Content::U64(v) => v.to_string(),
                            Content::I64(v) => v.to_string(),
                            other => return Err(Error::new(format!("bad object key {other:?}"))),
                        };
                        Ok((key, Value::from_content(v)?))
                    })
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    /// Member lookup; `None` when not an object or key absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array contents, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer value, when this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(v) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, ix: usize) -> &Value {
        self.as_array()
            .and_then(|items| items.get(ix))
            .unwrap_or(&NULL_VALUE)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Value::from_content(deserializer.deserialize_content()?)
            .map_err(|e| serde::de::Error::custom(e.msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a \"b\"\n").unwrap(), r#""a \"b\"\n""#);
        assert_eq!(from_str::<String>(r#""a \"b\"\n""#).unwrap(), "a \"b\"\n");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 0.8 * 0.8, 1.0 / 3.0, 1e-12, 123456.789, -2.5e10] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v, "via {json}");
        }
        // Integral floats print as integers and still deserialize as f64.
        assert_eq!(to_string(&2.0f64).unwrap(), "2");
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1,2,3]").unwrap(), v);

        let m: HashMap<u32, String> = [(7, "x".to_owned())].into_iter().collect();
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"7":"x"}"#);
        assert_eq!(from_str::<HashMap<u32, String>>(&json).unwrap(), m);
    }

    #[test]
    fn unicode_and_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, String)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn value_indexing() {
        let v: Value = from_str(r#"{"name":"x","items":[1,2],"n":3}"#).unwrap();
        assert_eq!(v["name"], "x");
        assert_eq!(v["items"].as_array().unwrap().len(), 2);
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
