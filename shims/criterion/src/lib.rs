//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! used API subset: groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `sample_size`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a plain wall-clock median over
//! `sample_size` samples with a short warm-up — no statistics machinery, but
//! real timings, so ablation benches still produce meaningful comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque re-export so benches can defeat constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            group: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, label: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&label.to_string(), self.sample_size, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `label`.
    pub fn bench_function<F>(&mut self, label: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group, label);
        run_one(&name, self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.group, id);
        run_one(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (report already printed incrementally).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let total: Duration = b.samples.iter().sum();
    println!(
        "  {name}: median {median:?} over {} samples (total {total:?})",
        b.samples.len()
    );
}

/// Declares a function that runs each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("count", |b| b.iter(|| calls += 1));
        // 1 warm-up + sample_size timed calls.
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_bench_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
    }
}
