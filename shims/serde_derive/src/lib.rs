//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! shim `serde` crate's [`Content`] tree model, without `syn`/`quote`: the
//! item is parsed directly from the `proc_macro` token stream and the impl is
//! emitted as source text. Supported shapes are exactly what the workspace
//! uses — non-generic structs (named, tuple, unit) and enums (unit, tuple,
//! and struct variants) with the `#[serde(skip)]`, `#[serde(default)]`, and
//! `#[serde(transparent)]` attributes. Anything else fails the build with an
//! explicit message rather than silently misbehaving.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// Extracts the idents inside `#[serde(...)]`; empty for any other attribute.
fn serde_attr_idents(attr_body: &Group) -> Vec<String> {
    let mut iter = attr_body.stream().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Vec::new(),
    }
    match iter.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .filter_map(|tt| match tt {
                TokenTree::Ident(id) => Some(id.to_string()),
                TokenTree::Punct(p) if p.as_char() == ',' => None,
                other => panic!(
                    "serde shim derive: unsupported token `{other}` in #[serde(...)] \
                     (only bare `skip`, `default`, `transparent` are supported)"
                ),
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Consumes leading `#[...]` attributes, returning the serde field attrs.
fn parse_attrs(iter: &mut TokenIter, transparent: &mut bool) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                for ident in serde_attr_idents(&g) {
                    match ident.as_str() {
                        "skip" => attrs.skip = true,
                        "default" => attrs.default = true,
                        "transparent" => *transparent = true,
                        other => panic!("serde shim derive: unsupported attribute `{other}`"),
                    }
                }
            }
            other => panic!("serde shim derive: malformed attribute near {other:?}"),
        }
    }
    attrs
}

/// Consumes a visibility qualifier if present.
fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

/// Consumes a type (everything up to and including a top-level `,`).
fn skip_type(iter: &mut TokenIter) {
    let mut angle_depth = 0i32;
    while let Some(tt) = iter.peek() {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' {
                    angle_depth -= 1;
                } else if c == ',' && angle_depth == 0 {
                    iter.next();
                    return;
                }
                iter.next();
            }
            _ => {
                iter.next();
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut out = Vec::new();
    while iter.peek().is_some() {
        let mut ignored = false;
        let attrs = parse_attrs(&mut iter, &mut ignored);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, found {other:?}"),
        }
        skip_type(&mut iter);
        out.push(Field { name, attrs });
    }
    out
}

fn parse_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    while iter.peek().is_some() {
        let mut ignored = false;
        let attrs = parse_attrs(&mut iter, &mut ignored);
        if attrs.skip || attrs.default {
            panic!("serde shim derive: serde attributes on tuple fields are unsupported");
        }
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_type(&mut iter);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut out = Vec::new();
    while iter.peek().is_some() {
        let mut ignored = false;
        let _ = parse_attrs(&mut iter, &mut ignored);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                iter.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(parse_tuple_fields(g.stream()));
                iter.next();
                f
            }
            _ => Fields::Unit,
        };
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                iter.next();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde shim derive: explicit enum discriminants are unsupported")
            }
            _ => {}
        }
        out.push(Variant { name, fields });
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut transparent = false;
    loop {
        let _ = parse_attrs(&mut iter, &mut transparent);
        skip_visibility(&mut iter);
        let keyword = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected item keyword, found {other:?}"),
        };
        let is_enum = match keyword.as_str() {
            "struct" => false,
            "enum" => true,
            // e.g. nothing else is expected, but skip stray idents defensively
            _ => continue,
        };
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected type name, found {other:?}"),
        };
        let kind = match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive: generic types are unsupported (deriving `{name}`)")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                if is_enum {
                    Kind::Enum(parse_variants(g.stream()))
                } else {
                    Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("serde shim derive: unsupported item body near {other:?}"),
        };
        return Item {
            name,
            transparent,
            kind,
        };
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            if item.transparent {
                let inner: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
                assert!(
                    inner.len() == 1,
                    "serde shim derive: #[serde(transparent)] needs exactly one field"
                );
                format!(
                    "::serde::Serialize::serialize(&self.{}, serializer)",
                    inner[0].name
                )
            } else {
                let mut s = String::from(
                    "let mut __fields: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.attrs.skip) {
                    s.push_str(&format!(
                        "__fields.push((::serde::Content::Str(::std::string::String::from(\
                         \"{0}\")), ::serde::ser::to_content(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str(
                    "::serde::Serializer::serialize_content(serializer, \
                     ::serde::Content::Map(__fields))",
                );
                s
            }
        }
        Kind::Struct(Fields::Tuple(len)) => {
            if *len == 1 {
                "::serde::Serialize::serialize(&self.0, serializer)".to_owned()
            } else {
                let items: Vec<String> = (0..*len)
                    .map(|i| format!("::serde::ser::to_content(&self.{i})"))
                    .collect();
                format!(
                    "::serde::Serializer::serialize_content(serializer, \
                     ::serde::Content::Seq(::std::vec![{}]))",
                    items.join(", ")
                )
            }
        }
        Kind::Struct(Fields::Unit) => {
            "::serde::Serializer::serialize_content(serializer, ::serde::Content::Null)".to_owned()
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_content(serializer, \
                         ::serde::Content::Str(::std::string::String::from(\"{vname}\"))),\n"
                    )),
                    Fields::Tuple(len) => {
                        let binders: Vec<String> = (0..*len).map(|i| format!("__f{i}")).collect();
                        let payload = if *len == 1 {
                            "::serde::ser::to_content(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::ser::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => \
                             ::serde::Serializer::serialize_content(serializer, \
                             ::serde::Content::Map(::std::vec![(::serde::Content::Str(\
                             ::std::string::String::from(\"{vname}\")), {payload})])),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.attrs.skip)
                            .map(|f| {
                                format!(
                                    "(::serde::Content::Str(::std::string::String::from(\
                                     \"{0}\")), ::serde::ser::to_content({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => \
                             ::serde::Serializer::serialize_content(serializer, \
                             ::serde::Content::Map(::std::vec![(::serde::Content::Str(\
                             ::std::string::String::from(\"{vname}\")), \
                             ::serde::Content::Map(::std::vec![{items}]))])),\n",
                            binds = binders.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn named_field_builders(fields: &[Field], owner: &str) -> String {
    fields
        .iter()
        .map(|f| {
            if f.attrs.skip {
                format!("{}: ::core::default::Default::default(),\n", f.name)
            } else if f.attrs.default {
                format!(
                    "{0}: ::serde::de::take_field_or_default::<_, __D::Error>(&mut __fields, \"{0}\", \
                     \"{owner}\")?,\n",
                    f.name
                )
            } else {
                format!(
                    "{0}: ::serde::de::take_field::<_, __D::Error>(&mut __fields, \"{0}\", \"{owner}\")?,\n",
                    f.name
                )
            }
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            if item.transparent {
                let inner: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
                assert!(
                    inner.len() == 1,
                    "serde shim derive: #[serde(transparent)] needs exactly one field"
                );
                let mut builders = format!(
                    "{}: ::serde::de::from_content::<_, __D::Error>(__content)?,\n",
                    inner[0].name
                );
                for f in fields.iter().filter(|f| f.attrs.skip) {
                    builders.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                }
                format!("::core::result::Result::Ok({name} {{\n{builders}}})")
            } else {
                format!(
                    "let mut __fields = \
                     ::serde::de::content_into_fields::<__D::Error>(__content, \"{name}\")?;\n\
                     let _ = &mut __fields;\n\
                     ::core::result::Result::Ok({name} {{\n{builders}}})",
                    builders = named_field_builders(fields, name)
                )
            }
        }
        Kind::Struct(Fields::Tuple(len)) => {
            if *len == 1 {
                format!(
                    "::core::result::Result::Ok({name}(::serde::de::from_content::<_, __D::Error>(__content)?))"
                )
            } else {
                let items: Vec<String> = (0..*len)
                    .map(|_| {
                        format!(
                            "::serde::de::from_content::<_, __D::Error>(::serde::de::next_element::<__D::Error>(\
                             &mut __iter, \"{name}\")?)?"
                        )
                    })
                    .collect();
                format!(
                    "let mut __iter = \
                     ::serde::de::content_into_seq::<__D::Error>(__content, \"{name}\")?\
                     .into_iter();\n\
                     ::core::result::Result::Ok({name}({items}))",
                    items = items.join(", ")
                )
            }
        }
        Kind::Struct(Fields::Unit) => {
            format!("let _ = __content;\n::core::result::Result::Ok({name})")
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(len) => {
                        if *len == 1 {
                            payload_arms.push_str(&format!(
                                "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                                 ::serde::de::from_content::<_, __D::Error>(__value)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*len)
                                .map(|_| {
                                    format!(
                                        "::serde::de::from_content(\
                                         ::serde::de::next_element::<__D::Error>(&mut __iter, \
                                         \"{name}::{vname}\")?)?"
                                    )
                                })
                                .collect();
                            payload_arms.push_str(&format!(
                                "\"{vname}\" => {{\nlet mut __iter = \
                                 ::serde::de::content_into_seq::<__D::Error>(__value, \
                                 \"{name}::{vname}\")?.into_iter();\n\
                                 ::core::result::Result::Ok({name}::{vname}({items}))\n}},\n",
                                items = items.join(", ")
                            ));
                        }
                    }
                    Fields::Named(fields) => {
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{\nlet mut __fields = \
                             ::serde::de::content_into_fields::<__D::Error>(__value, \
                             \"{name}::{vname}\")?;\nlet _ = &mut __fields;\n\
                             ::core::result::Result::Ok({name}::{vname} {{\n{builders}}})\n}},\n",
                            builders = named_field_builders(fields, &format!("{name}::{vname}"))
                        ));
                    }
                }
            }
            format!(
                "match __content {{\n\
                 ::serde::Content::Str(__variant) => match __variant.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                 \"unknown variant `{{}}` of `{name}`\", __other))),\n\
                 }},\n\
                 ::serde::Content::Map(mut __entries) if __entries.len() == 1 => {{\n\
                 let (__key, __value) = __entries.pop().expect(\"length checked\");\n\
                 let __key = match __key {{\n\
                 ::serde::Content::Str(__s) => __s,\n\
                 __other => return ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                 \"expected a string variant key for `{name}`, found {{:?}}\", __other))),\n\
                 }};\n\
                 let _ = &__value;\n\
                 match __key.as_str() {{\n\
                 {payload_arms}\
                 __other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                 \"unknown variant `{{}}` of `{name}`\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                 \"invalid content for enum `{name}`: {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         let __content = ::serde::Deserializer::deserialize_content(deserializer)?;\n\
         let _ = &__content;\n\
         {body}\n}}\n}}\n"
    )
}

/// Derives `serde::Serialize` for the supported item shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for the supported item shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}
