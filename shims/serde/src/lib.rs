//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! used subset of serde's API. The model is deliberately simpler than real
//! serde: instead of a visitor-driven streaming core, every value round-trips
//! through an owned [`Content`] tree. `Serialize` and `Deserialize` keep
//! serde's exact method signatures (so hand-written impls in the workspace
//! compile unchanged), and the `derive` feature forwards to a hand-rolled
//! proc-macro supporting the attributes the workspace uses:
//! `#[serde(skip)]`, `#[serde(default)]`, `#[serde(transparent)]`.
//!
//! Format crates (here: `serde_json`) provide a `Serializer` that accepts a
//! finished `Content` tree and a `Deserializer` that produces one.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;
use std::hash::{BuildHasher, Hash};
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every serialization passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0 when produced by this crate's impls).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, sets).
    Seq(Vec<Content>),
    /// Key-value map (structs, maps); insertion-ordered.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Total order over content trees, used to emit maps with
    /// nondeterministically-ordered backing stores (e.g. `HashMap`) in a
    /// stable key order.
    pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(c: &Content) -> u8 {
            match c {
                Content::Null => 0,
                Content::Bool(_) => 1,
                Content::U64(_) => 2,
                Content::I64(_) => 3,
                Content::F64(_) => 4,
                Content::Str(_) => 5,
                Content::Seq(_) => 6,
                Content::Map(_) => 7,
            }
        }
        match (self, other) {
            (Content::Bool(a), Content::Bool(b)) => a.cmp(b),
            (Content::U64(a), Content::U64(b)) => a.cmp(b),
            (Content::I64(a), Content::I64(b)) => a.cmp(b),
            (Content::F64(a), Content::F64(b)) => a.total_cmp(b),
            (Content::Str(a), Content::Str(b)) => a.cmp(b),
            (Content::Seq(a), Content::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Content::Map(a), Content::Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.total_cmp(kb).then_with(|| va.total_cmp(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// A type that can render itself into a serializer.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A sink that accepts a finished [`Content`] tree.
pub trait Serializer: Sized {
    /// Success value.
    type Ok;
    /// Failure value.
    type Error: ser::Error;

    /// Consumes a complete content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A type reconstructible from a deserializer.
pub trait Deserialize<'de>: Sized {
    /// Reads `Self` out of `deserializer`.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A source that yields a complete [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Failure value.
    type Error: de::Error;

    /// Produces the complete content tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// Serialization-side machinery.
pub mod ser {
    use super::*;

    /// Errors a serializer can raise.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Error type for the infallible in-memory serializer; `custom` panics
    /// because workspace types never fail to serialize.
    #[derive(Debug)]
    pub enum Impossible {}

    impl Error for Impossible {
        fn custom<T: Display>(msg: T) -> Self {
            panic!("in-memory serialization cannot fail: {msg}")
        }
    }

    struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = Impossible;

        fn serialize_content(self, content: Content) -> Result<Content, Impossible> {
            Ok(content)
        }
    }

    /// Renders any serializable value to its content tree.
    pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
        match value.serialize(ContentSerializer) {
            Ok(content) => content,
            Err(impossible) => match impossible {},
        }
    }
}

/// Deserialization-side machinery.
pub mod de {
    use super::*;
    use std::marker::PhantomData;

    /// Errors a deserializer can raise.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A [`Deserializer`] over an already-built content tree, generic in the
    /// error type so `T::deserialize` can surface the caller's error.
    pub struct ContentDeserializer<E> {
        content: Content,
        marker: PhantomData<E>,
    }

    impl<E> ContentDeserializer<E> {
        /// Wraps a content tree.
        pub fn new(content: Content) -> Self {
            Self {
                content,
                marker: PhantomData,
            }
        }
    }

    impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
        type Error = E;

        fn deserialize_content(self) -> Result<Content, E> {
            Ok(self.content)
        }
    }

    /// Reconstructs any deserializable value from a content tree.
    pub fn from_content<T, E>(content: Content) -> Result<T, E>
    where
        T: Deserialize<'static>,
        E: Error,
    {
        T::deserialize(ContentDeserializer::new(content))
    }

    fn describe(content: &Content) -> &'static str {
        match content {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::U64(_) | Content::I64(_) => "an integer",
            Content::F64(_) => "a float",
            Content::Str(_) => "a string",
            Content::Seq(_) => "a sequence",
            Content::Map(_) => "a map",
        }
    }

    /// Unwraps a map content node (derive-macro helper).
    pub fn content_into_fields<E: Error>(
        content: Content,
        expected: &str,
    ) -> Result<Vec<(Content, Content)>, E> {
        match content {
            Content::Map(fields) => Ok(fields),
            other => Err(E::custom(format!(
                "expected a map for `{expected}`, found {}",
                describe(&other)
            ))),
        }
    }

    /// Unwraps a sequence content node (derive-macro helper).
    pub fn content_into_seq<E: Error>(content: Content, expected: &str) -> Result<Vec<Content>, E> {
        match content {
            Content::Seq(items) => Ok(items),
            other => Err(E::custom(format!(
                "expected a sequence for `{expected}`, found {}",
                describe(&other)
            ))),
        }
    }

    fn extract_field(fields: &mut Vec<(Content, Content)>, name: &str) -> Option<Content> {
        let ix = fields
            .iter()
            .position(|(k, _)| matches!(k, Content::Str(s) if s == name))?;
        Some(fields.remove(ix).1)
    }

    /// Takes a required struct field out of a parsed map (derive helper).
    pub fn take_field<T, E>(
        fields: &mut Vec<(Content, Content)>,
        name: &str,
        struct_name: &str,
    ) -> Result<T, E>
    where
        T: Deserialize<'static>,
        E: Error,
    {
        match extract_field(fields, name) {
            Some(value) => from_content(value),
            None => Err(E::custom(format!(
                "missing field `{name}` in `{struct_name}`"
            ))),
        }
    }

    /// Takes an optional (`#[serde(default)]`) struct field (derive helper).
    pub fn take_field_or_default<T, E>(
        fields: &mut Vec<(Content, Content)>,
        name: &str,
        _struct_name: &str,
    ) -> Result<T, E>
    where
        T: Deserialize<'static> + Default,
        E: Error,
    {
        match extract_field(fields, name) {
            Some(value) => from_content(value),
            None => Ok(T::default()),
        }
    }

    /// Pulls the next tuple/seq element (derive helper for tuple variants).
    pub fn next_element<E: Error>(
        iter: &mut std::vec::IntoIter<Content>,
        expected: &str,
    ) -> Result<Content, E> {
        iter.next()
            .ok_or_else(|| E::custom(format!("sequence too short for `{expected}`")))
    }
}

// ---------------------------------------------------------------------------
// Serialize implementations for std types used in the workspace.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                serializer.serialize_content(if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                })
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self as f64))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl Serialize for Box<str> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.as_ref().to_owned()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Seq(self.iter().map(ser::to_content).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::Seq(vec![$(ser::to_content(&self.$ix)),+]))
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

fn serialize_map_entries<'a, K, V, S, I>(
    entries: I,
    serializer: S,
    sort: bool,
) -> Result<S::Ok, S::Error>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    S: Serializer,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(Content, Content)> = entries
        .map(|(k, v)| (ser::to_content(k), ser::to_content(v)))
        .collect();
    if sort {
        out.sort_by(|(a, _), (b, _)| a.total_cmp(b));
    }
    serializer.serialize_content(Content::Map(out))
}

impl<K: Serialize, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sorted so hash iteration order never leaks into the output.
        serialize_map_entries(self.iter(), serializer, true)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_entries(self.iter(), serializer, false)
    }
}

impl<T: Serialize, H: BuildHasher> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items: Vec<Content> = self.iter().map(ser::to_content).collect();
        items.sort_by(|a, b| a.total_cmp(b));
        serializer.serialize_content(Content::Seq(items))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Seq(self.iter().map(ser::to_content).collect()))
    }
}

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Map(vec![
            (
                Content::Str("secs".to_owned()),
                Content::U64(self.as_secs()),
            ),
            (
                Content::Str("nanos".to_owned()),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ]))
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations for std types used in the workspace.
// ---------------------------------------------------------------------------

fn int_from_content<E: de::Error>(content: Content, what: &str) -> Result<i128, E> {
    match content {
        Content::U64(v) => Ok(i128::from(v)),
        Content::I64(v) => Ok(i128::from(v)),
        Content::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Ok(v as i128),
        // Map keys arrive stringified from JSON.
        Content::Str(s) => s
            .parse::<i128>()
            .map_err(|_| E::custom(format!("cannot parse `{s}` as {what}"))),
        other => Err(E::custom(format!("expected {what}, found {other:?}"))),
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let raw = int_from_content::<D::Error>(
                    deserializer.deserialize_content()?,
                    stringify!($t),
                )?;
                <$t>::try_from(raw).map_err(|_| {
                    de::Error::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(de::Error::custom(format!(
                "expected a boolean, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            Content::Str(s) => s
                .parse::<f64>()
                .map_err(|_| de::Error::custom(format!("cannot parse `{s}` as f64"))),
            other => Err(de::Error::custom(format!(
                "expected a number, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom(format!(
                "expected a single character, found `{s}`"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected a string, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for Box<str> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(String::into_boxed_str)
    }
}

impl<'de, T: Deserialize<'static>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => de::from_content(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'static>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        de::content_into_seq::<D::Error>(deserializer.deserialize_content()?, "Vec")?
            .into_iter()
            .map(de::from_content)
            .collect()
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal, $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'static>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                let items = de::content_into_seq::<__D::Error>(
                    deserializer.deserialize_content()?,
                    "tuple",
                )?;
                if items.len() != $len {
                    return Err(de::Error::custom(format!(
                        "expected a {}-tuple, found {} elements",
                        $len,
                        items.len()
                    )));
                }
                let mut iter = items.into_iter();
                Ok(($(
                    de::from_content::<$name, __D::Error>(iter.next().expect("length checked"))?,
                )+))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (1, A)
    (2, A, B)
    (3, A, B, C)
    (4, A, B, C, D)
    (5, A, B, C, D, E)
    (6, A, B, C, D, E, F)
}

fn map_from_content<K, V, E>(content: Content) -> Result<Vec<(K, V)>, E>
where
    K: Deserialize<'static>,
    V: Deserialize<'static>,
    E: de::Error,
{
    de::content_into_fields::<E>(content, "map")?
        .into_iter()
        .map(|(k, v)| Ok((de::from_content::<K, E>(k)?, de::from_content::<V, E>(v)?)))
        .collect()
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'static> + Eq + Hash,
    V: Deserialize<'static>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(
            map_from_content::<K, V, D::Error>(deserializer.deserialize_content()?)?
                .into_iter()
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'static> + Ord,
    V: Deserialize<'static>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(
            map_from_content::<K, V, D::Error>(deserializer.deserialize_content()?)?
                .into_iter()
                .collect(),
        )
    }
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'static> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

impl<'de, T> Deserialize<'de> for BTreeSet<T>
where
    T: Deserialize<'static> + Ord,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields =
            de::content_into_fields::<D::Error>(deserializer.deserialize_content()?, "Duration")?;
        let secs: u64 = de::take_field::<u64, D::Error>(&mut fields, "secs", "Duration")?;
        let nanos: u32 = de::take_field::<u32, D::Error>(&mut fields, "nanos", "Duration")?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::de::from_content;
    use crate::ser::to_content;

    #[derive(Debug)]
    struct TestError(#[allow(dead_code)] String);

    impl de::Error for TestError {
        fn custom<T: Display>(msg: T) -> Self {
            TestError(msg.to_string())
        }
    }

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + Deserialize<'static>,
    {
        from_content::<T, TestError>(to_content(value)).expect("round trip")
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(round_trip(&42u64), 42);
        assert_eq!(round_trip(&-7i32), -7);
        assert_eq!(round_trip(&1.5f64), 1.5);
        assert!(round_trip(&true));
        assert_eq!(round_trip(&"hi".to_owned()), "hi");
        assert_eq!(round_trip(&Some(3u8)), Some(3));
        assert_eq!(round_trip(&None::<u8>), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        assert_eq!(round_trip(&v), v);
        let m: HashMap<u32, String> = v.iter().cloned().collect();
        assert_eq!(round_trip(&m), m);
        let s: BTreeSet<u64> = [3, 1, 2].into_iter().collect();
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(12, 345_678_901);
        assert_eq!(round_trip(&d), d);
    }

    #[test]
    fn hash_map_serializes_sorted() {
        let m: HashMap<u64, u64> = (0..20).map(|i| (i, i)).collect();
        match to_content(&m) {
            Content::Map(entries) => {
                let keys: Vec<_> = entries
                    .iter()
                    .map(|(k, _)| match k {
                        Content::U64(v) => *v,
                        other => panic!("unexpected key {other:?}"),
                    })
                    .collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                assert_eq!(keys, sorted);
            }
            other => panic!("expected a map, found {other:?}"),
        }
    }

    #[test]
    fn ints_accept_stringified_keys() {
        assert_eq!(
            from_content::<u32, TestError>(Content::Str("9".into())).unwrap(),
            9
        );
        assert!(from_content::<u32, TestError>(Content::Str("x".into())).is_err());
        assert!(from_content::<u8, TestError>(Content::U64(300)).is_err());
    }
}
