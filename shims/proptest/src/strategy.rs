//! Strategy trait and combinators for the proptest shim.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree / shrinking: `generate` draws one
/// value directly from the deterministic [`TestRng`] stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (needed by `prop_oneof!` arms of
    /// differing types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a nonzero value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if roll < weight {
                return arm.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("roll bounded by total weight")
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// One alternation-free regex atom.
enum Atom {
    /// Inclusive codepoint ranges.
    Class(Vec<(u32, u32)>),
    /// A literal character.
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// The character set `.` draws from: printable ASCII plus a sprinkling of
/// whitespace, Latin-1, CJK, and an emoji range so "arbitrary text"
/// properties see multi-byte UTF-8.
const DOT_RANGES: &[(u32, u32)] = &[
    (0x20, 0x7E),
    (0x20, 0x7E),
    (0x20, 0x7E),
    (0x09, 0x0A),
    (0xC0, 0xFF),
    (0x4E00, 0x4E2F),
    (0x1F600, 0x1F60F),
];

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Atom {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    if chars.peek() == Some(&'^') {
        panic!("proptest shim: negated classes unsupported in `{pattern}`");
    }
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("proptest shim: unterminated class in `{pattern}`"));
        if c == ']' {
            break;
        }
        let lo = if c == '\\' {
            chars
                .next()
                .unwrap_or_else(|| panic!("proptest shim: dangling escape in `{pattern}`"))
        } else {
            c
        };
        if chars.peek() == Some(&'-') {
            // Either a range `a-z` or a literal `-` before `]`.
            let mut lookahead = chars.clone();
            lookahead.next();
            match lookahead.peek() {
                Some(&']') | None => {
                    ranges.push((lo as u32, lo as u32));
                }
                Some(_) => {
                    chars.next();
                    let hi = chars.next().expect("peeked");
                    assert!(
                        lo <= hi,
                        "proptest shim: inverted range `{lo}-{hi}` in `{pattern}`"
                    );
                    ranges.push((lo as u32, hi as u32));
                }
            }
        } else {
            ranges.push((lo as u32, lo as u32));
        }
    }
    assert!(
        !ranges.is_empty(),
        "proptest shim: empty class in `{pattern}`"
    );
    Atom::Class(ranges)
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some(&'{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        None => {
                            let n: usize = spec.trim().parse().unwrap_or_else(|_| {
                                panic!("proptest shim: bad quantifier in `{pattern}`")
                            });
                            (n, n)
                        }
                        Some((lo, hi)) => {
                            let min = lo.trim().parse().unwrap_or_else(|_| {
                                panic!("proptest shim: bad quantifier in `{pattern}`")
                            });
                            let max = if hi.trim().is_empty() {
                                min + 8
                            } else {
                                hi.trim().parse().unwrap_or_else(|_| {
                                    panic!("proptest shim: bad quantifier in `{pattern}`")
                                })
                            };
                            (min, max)
                        }
                    };
                    assert!(
                        min <= max,
                        "proptest shim: inverted quantifier in `{pattern}`"
                    );
                    return (min, max);
                }
                spec.push(c);
            }
            panic!("proptest shim: unterminated quantifier in `{pattern}`")
        }
        Some(&'*') => {
            chars.next();
            (0, 8)
        }
        Some(&'+') => {
            chars.next();
            (1, 8)
        }
        Some(&'?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Class(DOT_RANGES.to_vec()),
            '[' => parse_class(&mut chars, pattern),
            '\\' => {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("proptest shim: dangling escape in `{pattern}`"));
                match e {
                    'd' => Atom::Class(vec![('0' as u32, '9' as u32)]),
                    'w' => Atom::Class(vec![
                        ('a' as u32, 'z' as u32),
                        ('A' as u32, 'Z' as u32),
                        ('0' as u32, '9' as u32),
                        ('_' as u32, '_' as u32),
                    ]),
                    's' => Atom::Class(vec![(' ' as u32, ' ' as u32), ('\t' as u32, '\t' as u32)]),
                    other => Atom::Literal(other),
                }
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("proptest shim: regex feature `{c}` unsupported in `{pattern}`")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_class(ranges: &[(u32, u32)], rng: &mut TestRng) -> char {
    let total: u64 = ranges.iter().map(|(lo, hi)| u64::from(hi - lo) + 1).sum();
    let mut roll = rng.below(total);
    for (lo, hi) in ranges {
        let width = u64::from(hi - lo) + 1;
        if roll < width {
            // Skip the surrogate gap rather than panic on unlucky ranges.
            let cp = lo + roll as u32;
            return char::from_u32(cp).unwrap_or('\u{FFFD}');
        }
        roll -= width;
    }
    unreachable!("roll bounded by total width")
}

/// String literals are regex-subset strategies, as in upstream proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(0xD00D, 3)
    }

    #[test]
    fn literal_and_class_pattern() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "ab[0-9]{2}z".generate(&mut r);
            assert_eq!(s.len(), 5, "{s}");
            assert!(s.starts_with("ab") && s.ends_with('z'), "{s}");
            assert!(s[2..4].chars().all(|c| c.is_ascii_digit()), "{s}");
        }
    }

    #[test]
    fn name_pattern_from_workspace() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[A-Za-z][A-Za-z0-9 _.]{0,18}[A-Za-z0-9]".generate(&mut r);
            assert!((2..=20).contains(&s.chars().count()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s}");
        }
    }

    #[test]
    fn dot_pattern_generates_varied_text() {
        let mut r = rng();
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..40 {
            let s = ".{0,400}".generate(&mut r);
            lens.insert(s.chars().count());
            assert!(s.chars().count() <= 400);
        }
        assert!(lens.len() > 10, "lengths should vary: {lens:?}");
    }

    #[test]
    fn union_respects_weights_roughly() {
        let u = Union::new(vec![(1, Just(0u8).boxed()), (3, Just(1u8).boxed())]);
        let mut r = rng();
        let ones = (0..4000).filter(|_| u.generate(&mut r) == 1).count();
        assert!(
            (2600..3400).contains(&ones),
            "weighted pick gave {ones}/4000"
        );
    }

    #[test]
    fn class_with_trailing_dash_is_literal() {
        let mut r = rng();
        for _ in 0..30 {
            let s = "[a-]".generate(&mut r);
            assert!(s == "a" || s == "-", "{s}");
        }
    }
}
