//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! used subset of proptest's API: the `proptest!` / `prop_assert*` /
//! `prop_assume!` / `prop_oneof!` macros, `Strategy` with `prop_map` and
//! `boxed`, range and tuple strategies, `Just`, `any::<T>()`,
//! `collection::{vec, btree_set}`, `prop::bool::ANY`, and regex-subset string
//! strategies (`"[A-Za-z]{1,8}"`-style literals).
//!
//! Differences from upstream, deliberate for an offline shim: no shrinking
//! (a failing case reports its case number and seed instead of a minimized
//! input), and generation is driven by a splitmix64 stream seeded from the
//! test's module path and name, so failures reproduce exactly across runs.

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Deterministic RNG and test-case plumbing used by the `proptest!` macro.
pub mod test_runner {
    /// Per-test configuration (`cases` is the only knob the workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic splitmix64 stream driving all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream for one test case: mixes the property seed and case index.
        pub fn for_case(seed: u64, case: u64) -> Self {
            Self {
                state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input; the case is skipped.
        Reject(String),
        /// A `prop_assert*` failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Builds a rejection.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }
}

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Stable seed for a property, derived from its module path and name (FNV-1a).
pub fn seed_of(module: &str, name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in module.bytes().chain([b':']).chain(name.bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (full value range).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-range strategy marker.
    #[derive(Debug, Clone)]
    pub struct FullRange<T>(PhantomData<T>);

    impl<T> Default for FullRange<T> {
        fn default() -> Self {
            Self(PhantomData)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange::default()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for FullRange<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;
        fn arbitrary() -> Self::Strategy {
            FullRange::default()
        }
    }
}

pub use arbitrary::{any, Arbitrary};

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Inclusive-min, exclusive-max length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.max_exclusive <= self.min + 1 {
                self.min
            } else {
                self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            Self {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Set of values from `element`; duplicates may make it smaller than the
    /// drawn length (matching upstream's behavior for saturated domains).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // A few extra draws to approach the target despite collisions.
            for _ in 0..target.saturating_mul(2) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// The `prop::` namespace (`prop::bool::ANY`, `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares deterministic property tests.
///
/// Supports the upstream surface the workspace uses: an optional
/// `#![proptest_config(...)]` header and `fn name(pat in strategy, ...) { .. }`
/// items carrying outer attributes (including `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] items; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config($config:expr)) => {};
    (@config($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __seed = $crate::seed_of(::core::module_path!(), ::core::stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempt: u64 = 0;
            let __max_attempts: u64 = (__config.cases as u64).saturating_mul(20).max(20);
            while __accepted < __config.cases && __attempt < __max_attempts {
                let mut __rng = $crate::test_runner::TestRng::for_case(__seed, __attempt);
                __attempt += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                // The closure gives `$body` a scope where `?` and early
                // `return` produce a `TestCaseError`, not a test exit.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "property `{}` falsified at case {} (seed {:#x}): {}",
                            ::core::stringify!($name),
                            __attempt - 1,
                            __seed,
                            __msg
                        );
                    }
                }
            }
            ::std::assert!(
                __accepted >= __config.cases / 2,
                "property `{}` rejected too many inputs ({} accepted of {} attempts)",
                ::core::stringify!($name),
                __accepted,
                __attempt
            );
        }
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    __l
                ),
            ));
        }
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!("assumption failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_of("a::b", "t"), crate::seed_of("a::b", "t"));
        assert_ne!(crate::seed_of("a::b", "t"), crate::seed_of("a::b", "u"));
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in -4i64..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u8..4, prop::bool::ANY).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 < 8);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            for x in &v { prop_assert!(*x < 10); }
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }

        #[test]
        fn oneof_picks_every_weighted_arm(n in prop_oneof![1 => Just(0u8), 3 => 1u8..3]) {
            prop_assert!(n < 3);
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_is_honored(_x in 0u32..2) {
            // Runs without error; the case count is internal.
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_case_info() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
