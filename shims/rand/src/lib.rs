//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! used subset: `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over
//! integer ranges, and `SliceRandom::{shuffle, choose}`. The generator is
//! splitmix64 — deterministic for a given seed, statistically strong enough
//! for synthetic-corpus generation, and stable across platforms. Streams
//! differ from upstream rand's ChaCha-based `StdRng` (seeded corpora are not
//! bit-compatible with upstream-generated ones), which is fine: every seed in
//! the workspace is generated and consumed by this same implementation.

use std::ops::Range;

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of the 64-bit stream).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`. Panics unless
    /// `0.0 <= p <= 1.0`, like upstream.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, span)` via Lemire-style
/// widening multiply (negligible bias for the span sizes used here is
/// avoided entirely by the 128-bit reduction).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Slice element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

/// Named generators.
pub mod rngs {
    /// The workspace's deterministic standard generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014); full 2^64 period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

/// `use rand::prelude::*` brings the traits and `StdRng` into scope.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

pub mod seq {
    pub use super::SliceRandom;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
