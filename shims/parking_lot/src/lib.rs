//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! *used* subset of parking_lot's API as a thin wrapper over `std::sync`.
//! Semantics match parking_lot where the workspace relies on them:
//! non-poisoning locks (a panicked holder does not wedge other threads) and
//! guard types that `Deref` to the protected data.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Non-poisoning mutual exclusion lock.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_is_not_poisoned_by_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
