//! WiClean umbrella crate: re-exports the full public API.
//!
//! End to end — generate a small synthetic corpus, mine the window of a
//! planted coordinated-edit pattern, and flag the incomplete occurrences:
//!
//! ```
//! use wiclean::core::config::MinerConfig;
//! use wiclean::core::miner::WindowMiner;
//! use wiclean::core::partial::detect_partial_updates;
//! use wiclean::synth::{generate, scenarios, SynthConfig};
//! use wiclean::types::{Window, DAY};
//!
//! let world = generate(scenarios::software(), SynthConfig::tiny(7));
//! let config = MinerConfig { tau: 0.3, mine_relative: false, ..MinerConfig::default() };
//!
//! // Mine the maintainer-handover window (days 14–28).
//! let window = Window::new(14 * DAY, 28 * DAY);
//! let miner = WindowMiner::new(&world.store, &world.universe, config);
//! let result = miner.mine_window(world.seed_type, &window);
//! assert!(result.most_specific().count() > 0);
//!
//! // Flag incomplete occurrences of the strongest pattern.
//! let top = result.most_specific().next().unwrap();
//! let report = detect_partial_updates(
//!     &world.store, &world.universe, &config,
//!     &top.working, world.seed_type, &window, 2,
//! );
//! assert!(report.complete_count > 0);
//! ```
pub use wiclean_baselines as baselines;
pub use wiclean_core as core;
pub use wiclean_eval as eval;
pub use wiclean_graph as graph;
pub use wiclean_rel as rel;
pub use wiclean_revstore as revstore;
pub use wiclean_serve as serve;
pub use wiclean_synth as synth;
pub use wiclean_types as types;
pub use wiclean_wikitext as wikitext;
