//! The `wiclean` command-line interface.
//!
//! ```text
//! wiclean generate --domain soccer --seeds 500 --rng 7 --out corpus.json
//! wiclean stats    --corpus corpus.json
//! wiclean ingest   --corpus corpus.json --store DIR [--sync MODE]
//! wiclean mine     --corpus corpus.json [--durability DIR] [--threads N] [--out report.json]
//! wiclean detect   --corpus corpus.json [--durability DIR] [--top K]
//! ```
//!
//! `generate` builds a synthetic corpus (see `wiclean-synth`); `ingest`
//! streams a corpus into a crash-safe durable store directory (WAL +
//! checksummed checkpoints); `mine` runs the full window-and-pattern
//! search (Algorithm 2) and prints a JSON report; `detect` mines and then
//! runs partial-update detection (Algorithm 3) on the discovered patterns,
//! printing the flagged potential errors like the WiClean editor plug-in
//! would. With `--durability DIR`, `mine`/`detect` read their revisions
//! from the durable store (recovering it if the ingesting process
//! crashed), and any records lost to torn or corrupt WAL tails surface in
//! the degraded-coverage section of the report.
//!
//! With `--backend disk`, `ingest` converts a corpus into an out-of-core
//! sharded store (delta-encoded segment logs, see DESIGN.md §9) and
//! `mine`/`stream` read revisions from those segments instead of holding
//! the corpus in memory, materializing page snapshots through a
//! byte-budgeted cache. Mining output is byte-identical between the two
//! backends; a shard's torn tail after a crash surfaces per shard in the
//! degraded-coverage section.
//!
//! `serve` is the online half (see `wiclean-serve`): it mines once, builds
//! the read-optimized suggestion index, and answers editor requests over
//! newline-delimited JSON on a TCP port until a wire `shutdown` — with the
//! admin `reload` op re-mining and hot-swapping a fresh index under live
//! traffic. `suggest` is the one-shot form of the same query for scripts
//! and smoke tests.

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use wiclean::core::partial::detect_partial_updates;
use wiclean::core::recover::{open_recovered, RecoveredStore};
use wiclean::core::report::WcReport;
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::core::{ingest_sharded, open_sharded_corpus, MiningPool, ShardedCorpus};
use wiclean::eval::quality::default_wc_config;
use wiclean::revstore::{
    DurabilityPolicy, DurableStore, FaultPlan, FaultyStore, MemoryBudget, RealFs, ResilientFetcher,
    RetryPolicy, RevisionStore, ShardPolicy, ShardedStore, SyncPolicy,
};
use wiclean::serve::{IndexLimits, PatternIndex, PatternSet, ReloadFn, ServeConfig};
use wiclean::synth::{generate, scenarios, Corpus, CorpusHeader, SynthConfig};

/// Distinct exit code for "the crawl circuit breaker opened": results were
/// still written, but coverage is untrustworthy.
const EXIT_BREAKER_TRIPPED: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags).map(|()| ExitCode::SUCCESS),
        "stats" => cmd_stats(&flags).map(|()| ExitCode::SUCCESS),
        "ingest" => cmd_ingest(&flags).map(|()| ExitCode::SUCCESS),
        "mine" => cmd_mine(&flags),
        "detect" => cmd_detect(&flags),
        "serve" => cmd_serve(&flags).map(|()| ExitCode::SUCCESS),
        "stream" => cmd_stream(&flags).map(|()| ExitCode::SUCCESS),
        "suggest" => cmd_suggest(&flags).map(|()| ExitCode::SUCCESS),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
wiclean — mine Wikipedia-style revision histories for edit patterns

USAGE:
  wiclean generate --domain <soccer|cinema|politics|software> [--seeds N] [--rng S] --out FILE
  wiclean stats    --corpus FILE
  wiclean ingest   --corpus FILE --store DIR [DURABILITY FLAGS | CORPUS BACKEND FLAGS]
  wiclean mine     --corpus FILE [--durability DIR] [--threads N] [--extract MODE] [PLANNER FLAGS] [--out FILE] [FAULT FLAGS]
  wiclean mine     --backend disk --store DIR [--threads N] [--extract MODE] [PLANNER FLAGS] [--out FILE] [CORPUS BACKEND FLAGS]
  wiclean detect   --corpus FILE [--durability DIR] [--threads N] [--extract MODE] [--top K] [FAULT FLAGS]
  wiclean serve    --corpus FILE [--addr HOST:PORT] [--max-conns N] [--threads N] [SERVE FLAGS]
  wiclean stream   --corpus FILE [--serve HOST:PORT] [--out FILE] [STREAM FLAGS] [PLANNER FLAGS]
  wiclean stream   --backend disk --store DIR [--serve HOST:PORT] [--out FILE] [STREAM FLAGS] [PLANNER FLAGS]
  wiclean suggest  --corpus FILE --entity NAME [--edit add|remove] [--rel NAME] [--threads N]

MODE (extraction pipeline, both produce byte-identical output):
  incremental      prediff-gated interned extraction (default)
  full             frozen full-reparse reference path (ablation)

PLANNER FLAGS (adaptive join planning, `mine` and `stream`; all plan
choices produce byte-identical mining output):
  --planner on|off `on` (default): per-join sampled statistics + cost
                   model pick the pair-stage strategy, build side, and
                   partition count, with mid-join re-planning and a
                   per-shape plan cache; `off`: the fixed heuristics
                   (hash build-right, hard-coded parallel gate)
  --replan-factor F
                   re-plan a join when its observed output exceeds the
                   estimate by this factor (> 1.0; default 4.0)

DURABILITY FLAGS (crash-safe revision store; see also --durability):
  --sync MODE      WAL fsync policy: `always`, `every:N`, or `never`
                   (default: every:64)
  --checkpoint-every N
                   records between checksummed checkpoints (default: 4096)
  --durability DIR read revisions from the durable store at DIR instead of
                   the corpus, recovering after a crash; records lost to
                   torn/corrupt WAL tails are reported as degraded coverage

CORPUS BACKEND FLAGS (out-of-core sharded store; see DESIGN.md §9):
  --backend B      `memory` (default): revisions live in RAM, loaded from
                   --corpus; `disk`: revisions live in delta-encoded
                   sharded segment logs under --store, materialized
                   through a byte-budgeted snapshot cache. Mining output
                   is byte-identical between backends
  --store DIR      the sharded store directory (`ingest --backend disk`
                   creates it; `mine`/`stream` open it, recovering any
                   shard with a torn tail and reporting the loss per
                   shard as degraded coverage)
  --shards N       segment files to hash-partition entities across at
                   ingest (default: 8; an existing store's own shard
                   count always wins on open)
  --snapshot-every N
                   full-text checkpoint frame cadence per entity chain;
                   revisions in between are stored as line-splice deltas
                   (default: 16; 1 disables delta encoding)
  --memory-budget MB
                   snapshot-cache budget in MiB (default: 256); least
                   recently used snapshots are evicted past it

SERVE FLAGS (online suggestion server; see DESIGN.md §7):
  --addr HOST:PORT bind address (default: 127.0.0.1:9178; port 0 = OS pick)
  --max-conns N    concurrent connection cap (default: 64); one handler
                   thread per live connection, further accepts wait
  --max-patterns N reject pattern sets with more than N canonical patterns
  --max-entities N reject indexes involving more than N distinct entities
                   (both default to the full u32 id space; exceeding a
                   limit rejects the load, it never kills the server)
  --debug-ops on   enable the `panic` wire op (panic-proofing harness)

STREAM FLAGS (incremental streaming miner; see DESIGN.md §8):
  --grace S        watermark grace period in seconds: a window seals once
                   an event arrives more than S past its end (default 3600)
  --refresh-revisions N
                   incremental refresh cadence: delta-join a window's new
                   rows after every N arrivals for it (default 64)
  --shuffle-seed S replay the corpus revisions in a deterministic shuffled
                   arrival order instead of chronologically
  --width S        stream window width in seconds (default: mining w_min)
  --serve HOST:PORT
                   also run the suggestion server; every sealed window
                   rebuilds the index and hot-swaps it under live traffic

FAULT FLAGS (crawl-robustness testing):
  --fault-rate R   inject transient fetch faults with probability R (0.0–1.0)
  --fault-seed S   seed for the deterministic fault stream
  --retries N      retries per page after the first attempt (0 disables;
                   default: the built-in retry/backoff policy)

Exit codes: 0 success, 1 error, 3 crawl circuit breaker tripped (results
written, but coverage is untrustworthy).";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{key}`"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(flags)
}

fn flag<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn num_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
    }
}

fn load_corpus(flags: &HashMap<String, String>) -> Result<Corpus, String> {
    let path = flag(flags, "corpus")?;
    Corpus::load(path).map_err(|e| e.to_string())
}

fn threads(flags: &HashMap<String, String>) -> Result<usize, String> {
    num_flag(
        flags,
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )
}

/// Applies the `--extract` mode flag to a mining config.
fn apply_extract_mode(
    wc: &mut wiclean::core::config::WcConfig,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    match flags.get("extract").map(String::as_str) {
        None | Some("incremental") => Ok(()),
        Some("full") => {
            wc.use_incremental_extract = false;
            Ok(())
        }
        Some(other) => Err(format!(
            "flag --extract: `{other}` is not `incremental` or `full`"
        )),
    }
}

/// Applies the `--planner` / `--replan-factor` flags to a mining config.
/// Both produce byte-identical mining output; the planner only changes
/// how fast the pair stage runs.
fn apply_planner_flags(
    wc: &mut wiclean::core::config::WcConfig,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    match flags.get("planner").map(String::as_str) {
        None | Some("on") => {}
        Some("off") => wc.use_adaptive_planner = false,
        Some(other) => return Err(format!("flag --planner: `{other}` is not on|off")),
    }
    if let Some(v) = flags.get("replan-factor") {
        let factor: f64 = v
            .parse()
            .map_err(|_| format!("flag --replan-factor: cannot parse `{v}`"))?;
        wc.miner.planner.replan_factor = factor;
        wc.miner
            .planner
            .validate()
            .map_err(|e| format!("flag --replan-factor: {e}"))?;
    }
    Ok(())
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let domain = match flag(flags, "domain")? {
        "soccer" => scenarios::soccer(),
        "cinema" | "cinematography" => scenarios::cinema(),
        "politics" | "us_politicians" => scenarios::politics(),
        "software" | "software_repos" => scenarios::software(),
        other => return Err(format!("unknown domain `{other}`")),
    };
    let out = flag(flags, "out")?;
    let config = SynthConfig {
        seed_count: num_flag(flags, "seeds", 500)?,
        rng_seed: num_flag(flags, "rng", 0xC1EA11)?,
        ..SynthConfig::default()
    };
    eprintln!(
        "generating `{}` corpus: {} seeds (rng {})…",
        domain.name, config.seed_count, config.rng_seed
    );
    let world = generate(domain, config);
    eprintln!(
        "  {} pages, {} revisions, {} planted events, {} planted errors",
        world.store.page_count(),
        world.store.revision_count(),
        world.truth.events.len(),
        world.truth.errors.len()
    );
    Corpus::from_world(world)
        .save(out)
        .map_err(|e| e.to_string())?;
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    println!("seed type : {}", corpus.seed_type);
    println!(
        "entities  : {} ({} of the seed type)",
        corpus.universe.entities().len(),
        corpus.universe.count_entities_of(corpus.seed_type_id())
    );
    println!("types     : {}", corpus.universe.taxonomy().len());
    println!("relations : {}", corpus.universe.relation_count());
    println!("pages     : {}", corpus.store.page_count());
    println!("revisions : {}", corpus.store.revision_count());
    if let Some(truth) = &corpus.truth {
        println!(
            "ground truth: {} events, {} errors ({}% corrected in year 2), {} spurious",
            truth.events.len(),
            truth.errors.len(),
            (truth.correction_fraction() * 100.0).round(),
            truth.spurious.len()
        );
    }
    Ok(())
}

/// Parses a `--sync` value into a [`SyncPolicy`].
fn parse_sync(mode: &str) -> Result<SyncPolicy, String> {
    match mode {
        "always" => Ok(SyncPolicy::Always),
        "never" => Ok(SyncPolicy::Never),
        other => match other.strip_prefix("every:").map(str::parse) {
            Some(Ok(n)) => Ok(SyncPolicy::EveryN(n)),
            _ => Err(format!(
                "flag --sync: `{other}` is not `always`, `every:N`, or `never`"
            )),
        },
    }
}

/// Builds the durability policy from the CLI's durability flags.
fn durability_policy(flags: &HashMap<String, String>) -> Result<DurabilityPolicy, String> {
    let mut policy = DurabilityPolicy::default();
    if let Some(mode) = flags.get("sync") {
        policy.sync = parse_sync(mode)?;
    }
    if let Some(n) = flags.get("checkpoint-every") {
        policy.checkpoint_every = n
            .parse()
            .map_err(|_| format!("flag --checkpoint-every: cannot parse `{n}`"))?;
    }
    policy.validate()?;
    Ok(policy)
}

/// Opens (recovering if needed) the durable store named by `--durability`,
/// if the flag is present, and narrates what recovery found.
fn open_durability(flags: &HashMap<String, String>) -> Result<Option<RecoveredStore>, String> {
    let Some(dir) = flags.get("durability") else {
        return Ok(None);
    };
    let rec = open_recovered(RealFs, dir.as_str(), durability_policy(flags)?)
        .map_err(|e| format!("durable store {dir}: {e}"))?;
    let r = &rec.recovery;
    eprintln!(
        "  durable store: checkpoint epoch {} ({} records) + {} WAL records replayed",
        r.checkpoint_epoch, r.records_in_checkpoint, r.records_replayed
    );
    if !r.is_clean() {
        eprintln!(
            "  recovery losses: {} records / {} bytes dropped, {} checkpoints rejected ({:?} tail)",
            r.records_dropped, r.bytes_dropped, r.checkpoints_rejected, r.tail
        );
    }
    Ok(Some(rec))
}

/// Name of the universe/seed-type sidecar inside a sharded store
/// directory, written at ingest so `mine --backend disk` never needs the
/// original corpus blob.
const HEADER_FILE: &str = "universe.json";

/// Whether the corpus backend flags select the out-of-core disk store.
fn disk_backend(flags: &HashMap<String, String>) -> Result<bool, String> {
    match flags.get("backend").map(String::as_str) {
        None | Some("memory") => Ok(false),
        Some("disk") => Ok(true),
        Some(other) => Err(format!("flag --backend: `{other}` is not memory|disk")),
    }
}

/// Builds the shard policy from the corpus-backend flags.
fn shard_policy(flags: &HashMap<String, String>) -> Result<ShardPolicy, String> {
    let mut policy = ShardPolicy {
        shards: num_flag(flags, "shards", ShardPolicy::default().shards)?,
        snapshot_every: num_flag(
            flags,
            "snapshot-every",
            ShardPolicy::default().snapshot_every,
        )?,
        ..ShardPolicy::default()
    };
    if policy.shards == 0 {
        return Err("flag --shards: must be at least 1".to_owned());
    }
    if policy.snapshot_every == 0 {
        return Err("flag --snapshot-every: must be at least 1".to_owned());
    }
    if let Some(mode) = flags.get("sync") {
        policy.sync = parse_sync(mode)?;
    }
    Ok(policy)
}

/// The snapshot-cache byte budget from `--memory-budget` (MiB).
fn memory_budget(flags: &HashMap<String, String>) -> Result<Arc<MemoryBudget>, String> {
    let mib: u64 = num_flag(flags, "memory-budget", 256)?;
    if mib == 0 {
        return Err("flag --memory-budget: must be at least 1 MiB".to_owned());
    }
    Ok(Arc::new(MemoryBudget::new(mib << 20)))
}

/// Opens the sharded store named by `--store`, narrating what the
/// per-shard recovery scan found.
fn open_disk_corpus(flags: &HashMap<String, String>) -> Result<ShardedCorpus<RealFs>, String> {
    let dir = flag(flags, "store")?;
    let corpus = open_sharded_corpus(
        RealFs,
        Path::new(dir),
        shard_policy(flags)?,
        memory_budget(flags)?,
    )
    .map_err(|e| format!("sharded store {dir}: {e}"))?;
    let r = &corpus.recovery;
    eprintln!(
        "  sharded store: {} shards, {} frame records recovered",
        r.shards, r.records_recovered
    );
    for l in &r.losses {
        eprintln!(
            "  recovery losses: shard {} dropped {} records / {} bytes ({:?} tail)",
            l.shard, l.records_dropped, l.bytes_dropped, l.outcome
        );
    }
    Ok(corpus)
}

fn cmd_ingest(flags: &HashMap<String, String>) -> Result<(), String> {
    if disk_backend(flags)? {
        return cmd_ingest_disk(flags);
    }
    let corpus = load_corpus(flags)?;
    let dir = flag(flags, "store")?;
    let policy = durability_policy(flags)?;
    let mut ds = DurableStore::create(RealFs, dir, policy).map_err(|e| e.to_string())?;
    eprintln!(
        "ingesting {} revisions into {dir} (sync {:?}, checkpoint every {})…",
        corpus.store.revision_count(),
        policy.sync,
        policy.checkpoint_every
    );
    let mut entities: Vec<_> = corpus.store.entities().collect();
    entities.sort_by_key(|e| e.as_u32());
    for e in entities {
        let Some(history) = corpus.store.peek(e) else {
            continue;
        };
        for r in history.revisions() {
            ds.record(e, r.time, &r.text).map_err(|e| e.to_string())?;
        }
    }
    ds.checkpoint().map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} records, epoch {} ({} checkpoint retries)",
        ds.records_ingested(),
        ds.epoch(),
        ds.checkpoint_failures()
    );
    Ok(())
}

/// `ingest --backend disk`: converts a corpus into an out-of-core sharded
/// store — delta-encoded segment logs plus the universe sidecar — so
/// `mine --backend disk` can run without the corpus blob in memory.
fn cmd_ingest_disk(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    let dir = flag(flags, "store")?;
    let policy = shard_policy(flags)?;
    let store = ShardedStore::create(RealFs, Path::new(dir), policy, memory_budget(flags)?)
        .map_err(|e| format!("sharded store {dir}: {e}"))?;
    eprintln!(
        "ingesting {} revisions into {dir} ({} shards, snapshot every {}, sync {:?})…",
        corpus.store.revision_count(),
        policy.shards,
        policy.snapshot_every,
        policy.sync
    );
    let pool = MiningPool::new(threads(flags)?);
    let n = ingest_sharded(&pool, &corpus.store, &store).map_err(|e| e.to_string())?;
    CorpusHeader::of(&corpus)
        .save(Path::new(dir).join(HEADER_FILE))
        .map_err(|e| e.to_string())?;
    let stats = store.corpus_stats();
    eprintln!(
        "wrote {n} revisions: {} bytes on disk ({:.1} bytes/revision), {} full + {} delta frames",
        stats.bytes_on_disk,
        stats.bytes_on_disk as f64 / (n.max(1)) as f64,
        stats.frames_full,
        stats.frames_delta
    );
    Ok(())
}

/// Builds the fault plan and retry policy from the CLI's fault flags.
fn fault_setup(flags: &HashMap<String, String>) -> Result<(FaultPlan, RetryPolicy), String> {
    let rate: f64 = num_flag(flags, "fault-rate", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("flag --fault-rate: `{rate}` is not in 0.0–1.0"));
    }
    let seed: u64 = num_flag(flags, "fault-seed", 0xC1EA11F)?;
    let policy = match flags.get("retries") {
        None => RetryPolicy::default(),
        Some(v) => {
            let retries: u32 = v
                .parse()
                .map_err(|_| format!("flag --retries: cannot parse `{v}`"))?;
            RetryPolicy::with_attempts(retries + 1)
        }
    };
    Ok((FaultPlan::transient_only(rate, seed), policy))
}

/// Prints the degraded-coverage section of a report to stderr.
fn print_degraded(report: &WcReport) {
    let d = &report.degraded;
    if d.is_empty() {
        eprintln!("  coverage: full (no fetch losses)");
        return;
    }
    eprintln!(
        "  degraded coverage: {} entities lost ({} revisions), {} parse issues{}",
        d.entities_lost.len(),
        d.revisions_lost,
        d.parse_issues,
        if d.denominator_affected {
            "; frequency denominators affected"
        } else {
            ""
        }
    );
    if d.wal_records_dropped > 0 || d.wal_bytes_dropped > 0 || d.checkpoints_rejected > 0 {
        eprintln!(
            "    ✗ crash recovery: {} WAL records ({} bytes) dropped, {} checkpoints rejected",
            d.wal_records_dropped, d.wal_bytes_dropped, d.checkpoints_rejected
        );
    }
    for l in &d.shard_losses {
        eprintln!(
            "    ✗ shard {}: {} records / {} bytes dropped ({:?} tail)",
            l.shard, l.records_dropped, l.bytes_dropped, l.outcome
        );
    }
    for l in d.entities_lost.iter().take(10) {
        eprintln!("    ✗ {} — {}", l.entity, l.reason);
    }
    if d.entities_lost.len() > 10 {
        eprintln!("    … and {} more", d.entities_lost.len() - 10);
    }
    for (w, msg) in &d.failed_windows {
        eprintln!("    ✗ window {w}: {msg}");
    }
}

fn cmd_mine(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    if disk_backend(flags)? {
        return cmd_mine_disk(flags);
    }
    let mut wc = default_wc_config(threads(flags)?);
    apply_extract_mode(&mut wc, flags)?;
    apply_planner_flags(&mut wc, flags)?;
    let (plan, policy) = fault_setup(flags)?;
    let corpus = load_corpus(flags)?;
    eprintln!("mining `{}` (Algorithm 2)…", corpus.seed_type);
    let recovered = open_durability(flags)?;
    let store = recovered.as_ref().map_or(&corpus.store, |r| &r.store);
    let faulty = FaultyStore::new(store, plan);
    let fetcher = ResilientFetcher::new(&faulty, policy);
    if !plan.is_clean() {
        eprintln!(
            "  fault injection on: transient rate {:.0}%, {} attempts per page",
            plan.transient_rate * 100.0,
            policy.max_attempts
        );
    }
    let mut result =
        find_windows_and_patterns(&fetcher, &corpus.universe, corpus.seed_type_id(), &wc);
    if let Some(rec) = &recovered {
        rec.stamp(&mut result.degraded, &mut result.stats);
    }
    eprintln!(
        "  {} iterations → {} patterns (final width {}d, tau {:.3})",
        result.iterations,
        result.discovered.len(),
        result.final_width / 86_400,
        result.final_tau
    );
    eprintln!(
        "  extraction: {:.1}% of revision bytes skipped by the incremental parser",
        result.stats.extract_skip_rate() * 100.0
    );
    let report = WcReport::from_result(&result, &corpus.universe);
    print_degraded(&report);
    let json = report.to_json();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    if fetcher.breaker_tripped() {
        eprintln!("warning: crawl circuit breaker tripped — coverage is untrustworthy");
        return Ok(ExitCode::from(EXIT_BREAKER_TRIPPED));
    }
    Ok(ExitCode::SUCCESS)
}

/// `mine --backend disk`: the same Algorithm 2 search, reading revisions
/// from the sharded segment logs through the snapshot cache instead of an
/// in-memory corpus. Output is byte-identical to the memory backend.
fn cmd_mine_disk(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    if num_flag::<f64>(flags, "fault-rate", 0.0)? > 0.0 {
        return Err(
            "flag --fault-rate: fault injection applies to the memory backend only".to_owned(),
        );
    }
    let mut wc = default_wc_config(threads(flags)?);
    apply_extract_mode(&mut wc, flags)?;
    apply_planner_flags(&mut wc, flags)?;
    let dir = flag(flags, "store")?;
    let header = CorpusHeader::load(Path::new(dir).join(HEADER_FILE))
        .map_err(|e| format!("sharded store {dir}: {e}"))?;
    eprintln!("mining `{}` (Algorithm 2, out-of-core)…", header.seed_type);
    let corpus = open_disk_corpus(flags)?;
    let mut result =
        find_windows_and_patterns(&corpus.store, &header.universe, header.seed_type_id(), &wc);
    corpus.stamp(&mut result.degraded);
    corpus.stamp_stats(&mut result.stats);
    eprintln!(
        "  {} iterations → {} patterns (final width {}d, tau {:.3})",
        result.iterations,
        result.discovered.len(),
        result.final_width / 86_400,
        result.final_tau
    );
    let s = &result.stats;
    eprintln!(
        "  corpus: {} bytes on disk, snapshot cache {} hits / {} misses / {} evictions, {} delta frames replayed",
        s.bytes_on_disk,
        s.snapshot_cache_hits,
        s.snapshot_cache_misses,
        s.snapshot_cache_evictions,
        s.delta_chain_replays
    );
    let report = WcReport::from_result(&result, &header.universe);
    print_degraded(&report);
    let json = report.to_json();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_detect(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let corpus = load_corpus(flags)?;
    let top: usize = num_flag(flags, "top", 5)?;
    let mut wc = default_wc_config(threads(flags)?);
    apply_extract_mode(&mut wc, flags)?;
    let (plan, policy) = fault_setup(flags)?;
    eprintln!("mining `{}`…", corpus.seed_type);
    let recovered = open_durability(flags)?;
    let store = recovered.as_ref().map_or(&corpus.store, |r| &r.store);
    let faulty = FaultyStore::new(store, plan);
    let fetcher = ResilientFetcher::new(&faulty, policy);
    let mut result =
        find_windows_and_patterns(&fetcher, &corpus.universe, corpus.seed_type_id(), &wc);
    if let Some(rec) = &recovered {
        rec.stamp(&mut result.degraded, &mut result.stats);
    }
    eprintln!(
        "  {} patterns discovered; running Algorithm 3 on the top {}…\n",
        result.discovered.len(),
        top.min(result.discovered.len())
    );
    for d in result.by_frequency().into_iter().take(top) {
        let report = detect_partial_updates(
            &fetcher,
            &corpus.universe,
            &wc.miner,
            &d.working,
            corpus.seed_type_id(),
            &d.window,
            2,
        );
        println!(
            "pattern (freq {:.2}, window {}):\n  {}",
            d.frequency,
            d.window,
            d.pattern.display(&corpus.universe)
        );
        println!(
            "  {} complete, {} potential errors",
            report.complete_count,
            report.partials.len()
        );
        for p in report.partials.iter().take(5) {
            println!("    ⚠ {}", p.display(&corpus.universe));
        }
        if report.partials.len() > 5 {
            println!("    … and {} more", report.partials.len() - 5);
        }
        println!();
    }
    print_degraded(&WcReport::from_result(&result, &corpus.universe));
    if fetcher.breaker_tripped() {
        eprintln!("warning: crawl circuit breaker tripped — coverage is untrustworthy");
        return Ok(ExitCode::from(EXIT_BREAKER_TRIPPED));
    }
    Ok(ExitCode::SUCCESS)
}

/// Index-capacity limits from the serve flags.
fn index_limits(flags: &HashMap<String, String>) -> Result<IndexLimits, String> {
    Ok(IndexLimits {
        max_patterns: num_flag(flags, "max-patterns", u32::MAX)?,
        max_entities: num_flag(flags, "max-entities", u32::MAX)?,
    })
}

/// Mines the corpus and builds the serving index from every discovered
/// pattern (shared by `serve`, its reload path, and `suggest`).
fn mine_and_index(
    corpus: &Corpus,
    wc: &wiclean::core::config::WcConfig,
    limits: IndexLimits,
) -> Result<PatternIndex, String> {
    let result =
        find_windows_and_patterns(&corpus.store, &corpus.universe, corpus.seed_type_id(), wc);
    let set = PatternSet::from_wc_result(&result);
    let index = PatternIndex::build(&corpus.store, &corpus.universe, &wc.miner, &set, limits)
        .map_err(|e| e.to_string())?;
    let s = index.stats();
    eprintln!(
        "  index: {} patterns → {} suggestions over {} entities ({:.0} ms build, {} complete realizations seen)",
        s.patterns, s.suggestions, s.entities, s.build_ms, s.complete_realizations
    );
    Ok(index)
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    let mut wc = default_wc_config(threads(flags)?);
    apply_extract_mode(&mut wc, flags)?;
    let limits = index_limits(flags)?;
    let config = ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:9178".to_string()),
        max_connections: num_flag(flags, "max-conns", 64)?,
        enable_debug_ops: matches!(flags.get("debug-ops").map(String::as_str), Some("on")),
    };
    eprintln!("mining `{}` for the serving pattern set…", corpus.seed_type);
    let index = mine_and_index(&corpus, &wc, limits)?;
    let universe = std::sync::Arc::new(corpus.universe.clone());
    // The admin `reload` op re-mines: the original corpus, or (with a
    // `spec`) a newer corpus file sharing the same vocabulary — relation
    // names in requests still resolve against the serving universe.
    let reload: ReloadFn = Box::new(move |spec| match spec {
        None => mine_and_index(&corpus, &wc, limits),
        Some(path) => {
            let fresh = Corpus::load(path).map_err(|e| e.to_string())?;
            mine_and_index(&fresh, &wc, limits)
        }
    });
    let mut handle = wiclean::serve::serve(config, universe, index, Some(reload))
        .map_err(|e| format!("cannot bind: {e}"))?;
    println!("listening on {}", handle.addr());
    let example = r#"{"op":"suggest","entity":"Player 4"}"#;
    eprintln!("  one request per line, e.g.: {example}");
    handle.wait();
    eprintln!("server stopped");
    Ok(())
}

/// The corpus a `stream` run replays: from the corpus blob (memory
/// backend), or reassembled from a sharded store directory plus its
/// universe sidecar (`--backend disk`). A stream replay holds every
/// revision in its feed regardless of backend, so materializing the
/// histories here costs no more than the feed itself; the disk backend's
/// value for `stream` is starting from segment files an `ingest` (or a
/// crashed one — losses are narrated) left behind.
fn load_stream_corpus(flags: &HashMap<String, String>) -> Result<Corpus, String> {
    if !disk_backend(flags)? {
        return load_corpus(flags);
    }
    let dir = flag(flags, "store")?;
    let header = CorpusHeader::load(Path::new(dir).join(HEADER_FILE))
        .map_err(|e| format!("sharded store {dir}: {e}"))?;
    let sharded = open_disk_corpus(flags)?;
    let mut store = RevisionStore::new();
    for entity in sharded.store.entities() {
        let Some(history) = sharded
            .store
            .materialize(entity)
            .map_err(|e| e.to_string())?
        else {
            continue;
        };
        for r in history.revisions() {
            store.record(entity, r.time, r.text.clone());
        }
    }
    Ok(Corpus {
        version: header.version,
        universe: header.universe,
        store,
        seed_type: header.seed_type,
        truth: None,
        domain: None,
        synth_config: None,
    })
}

fn cmd_stream(flags: &HashMap<String, String>) -> Result<(), String> {
    use wiclean::core::stream::{wc_result_from_sealed, StreamMiner};
    use wiclean::revstore::{FeedEvent, RevisionFeed, VecFeed};

    let mut wc = default_wc_config(threads(flags)?);
    apply_extract_mode(&mut wc, flags)?;
    apply_planner_flags(&mut wc, flags)?;
    let corpus = load_stream_corpus(flags)?;
    wc.stream.grace = num_flag(flags, "grace", wc.stream.grace)?;
    wc.stream.refresh_revisions =
        num_flag(flags, "refresh-revisions", wc.stream.refresh_revisions)?;
    wc.stream.validate()?;
    wc.w_min = num_flag(flags, "width", wc.w_min)?;

    // Replay the corpus as a live feed: chronological by default, or a
    // deterministic out-of-order arrival with --shuffle-seed.
    let mut events = Vec::new();
    let mut entities: Vec<_> = corpus.store.entities().collect();
    entities.sort_by_key(|e| e.as_u32());
    for e in entities {
        let Some(history) = corpus.store.peek(e) else {
            continue;
        };
        for r in history.revisions() {
            events.push(FeedEvent {
                entity: e,
                time: r.time,
                text: r.text.clone(),
            });
        }
    }
    events.sort_by_key(|e| e.time);
    let total_events = events.len();
    let mut feed = match flags.get("shuffle-seed") {
        Some(v) => {
            let seed: u64 = v
                .parse()
                .map_err(|_| format!("flag --shuffle-seed: cannot parse `{v}`"))?;
            VecFeed::shuffled(events, seed)
        }
        None => VecFeed::new(events),
    };

    // With --serve, start answering suggestion queries immediately (empty
    // index, epoch 1) and hot-swap a refreshed index after every seal.
    let universe = std::sync::Arc::new(corpus.universe.clone());
    let limits = index_limits(flags)?;
    let mut handle = match flags.get("serve") {
        None => None,
        Some(addr) => {
            let empty = PatternSet::single_window(
                corpus.seed_type_id(),
                wiclean::types::Window::new(0, 0),
                &[],
            );
            let index = PatternIndex::build(&corpus.store, &universe, &wc.miner, &empty, limits)
                .map_err(|e| e.to_string())?;
            let config = ServeConfig {
                addr: addr.clone(),
                max_connections: num_flag(flags, "max-conns", 64)?,
                enable_debug_ops: false,
            };
            let h = wiclean::serve::serve(config, universe.clone(), index, None)
                .map_err(|e| format!("cannot bind: {e}"))?;
            println!("listening on {} (epoch 1: empty index)", h.addr());
            Some(h)
        }
    };

    eprintln!(
        "streaming {} revisions of `{}` (width {}d, grace {}s, refresh every {})…",
        total_events,
        corpus.seed_type,
        wc.w_min / 86_400,
        wc.stream.grace,
        wc.stream.refresh_revisions
    );
    let mut sm = StreamMiner::from_wc(&corpus.universe, corpus.seed_type_id(), &wc);
    // Narrates every window sealed since the last call and, when serving,
    // rebuilds the suggestion index over all sealed windows and hot-swaps
    // it under live traffic.
    let mut published = 0usize;
    let publish = |sm: &StreamMiner,
                   handle: &Option<wiclean::serve::ServeHandle>,
                   published: &mut usize|
     -> Result<(), String> {
        for r in &sm.sealed()[*published..] {
            eprintln!(
                "  sealed {} → {} patterns ({} most specific)",
                r.window,
                r.patterns.len(),
                r.most_specific().count()
            );
        }
        *published = sm.sealed().len();
        let Some(h) = handle else { return Ok(()) };
        let result = wc_result_from_sealed(
            sm.sealed(),
            corpus.seed_type_id(),
            wc.w_min,
            wc.tau0,
            sm.late_revisions(),
        );
        let set = PatternSet::from_wc_result(&result);
        let index = PatternIndex::build(sm.store(), &universe, &wc.miner, &set, limits)
            .map_err(|e| e.to_string())?;
        let epoch = h.swap_index(index);
        eprintln!(
            "  hot-swapped suggestion index: epoch {epoch} ({} patterns)",
            set.patterns.len()
        );
        Ok(())
    };
    while let Some(event) = feed.next_event() {
        if sm.ingest(&event) > 0 {
            publish(&sm, &handle, &mut published)?;
        }
    }
    if sm.flush() > 0 {
        publish(&sm, &handle, &mut published)?;
    }

    let stats = sm.stats().clone();
    eprintln!(
        "  stream: {} windows sealed, {} delta rows joined, {} full re-mine fallbacks, {} late revisions, {:.1} ms seal lag",
        stats.windows_sealed,
        stats.delta_rows_joined,
        stats.full_remine_fallbacks,
        sm.late_revisions(),
        stats.stream_lag_us as f64 / 1000.0
    );
    let result = sm.into_result();
    let report = WcReport::from_result(&result, &corpus.universe);
    print_degraded(&report);
    let json = report.to_json();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => {
            if handle.is_none() {
                println!("{json}");
            }
        }
    }
    if let Some(h) = handle.as_mut() {
        eprintln!("  feed drained; serving final epoch until wire `shutdown`");
        h.wait();
        eprintln!("server stopped");
    }
    Ok(())
}

fn cmd_suggest(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    let entity = flag(flags, "entity")?.to_string();
    let mut wc = default_wc_config(threads(flags)?);
    apply_extract_mode(&mut wc, flags)?;
    let sig = match (flags.get("edit"), flags.get("rel")) {
        (None, None) => None,
        (Some(edit), Some(rel)) => {
            let op = match edit.as_str() {
                "add" | "+" => wiclean::wikitext::EditOp::Add,
                "remove" | "-" => wiclean::wikitext::EditOp::Remove,
                other => return Err(format!("flag --edit: `{other}` is not add|remove")),
            };
            let rel = corpus
                .universe
                .lookup_relation(rel)
                .ok_or_else(|| format!("flag --rel: unknown relation `{rel}`"))?;
            Some(wiclean::serve::ActionSig { op, rel })
        }
        _ => return Err("flags --edit and --rel must be given together".to_string()),
    };
    eprintln!("mining `{}`…", corpus.seed_type);
    let index = mine_and_index(&corpus, &wc, index_limits(flags)?)?;
    let suggestions = index.suggest_by_name(&entity, sig);
    if suggestions.is_empty() {
        println!("no suggestions for `{entity}`");
        return Ok(());
    }
    for s in suggestions {
        println!("⚠ {}", s.text);
        println!("  pattern: {}", s.pattern_text);
    }
    Ok(())
}
