//! Static snapshot auditing (the prior-work baseline) vs. WiClean's
//! window-aware detection — the paper's Example 1.1 motivation made
//! executable.
//!
//! A reciprocity constraint checker flags "player points at club, club
//! doesn't point back" the instant the first half of a coordinated edit
//! lands, even though the second half routinely follows within the
//! tolerable window. WiClean only signals occurrences that are still
//! partial once the window has closed.

use wiclean::graph::{audit_reciprocity, state_graph_at, ReciprocalRule};
use wiclean::synth::{generate, scenarios, SynthConfig};
use wiclean::types::YEAR;

#[test]
fn static_audit_flags_inflight_edits_wiclean_tolerates() {
    let world = generate(
        scenarios::soccer(),
        SynthConfig {
            seed_count: 120,
            rng_seed: 20180801,
            distractor_entities: 20,
            ..SynthConfig::default()
        },
    );
    let cc = world.universe.lookup_relation("current_club").unwrap();
    let squad = world.universe.lookup_relation("squad").unwrap();
    let rules = [ReciprocalRule {
        forward: cc,
        backward: squad,
    }];

    // Find a COMPLETE transfer whose player-side edit precedes its
    // club-side edit (they virtually all do — the club page follows with
    // jitter). Transfer template: action 0 = +current_club (player page),
    // action 2 = +squad (new club page).
    let transfer_ix = 0;
    let event = world
        .truth
        .events_of_template(transfer_ix)
        .find(|e| e.is_complete())
        .expect("a complete transfer exists");
    let player = event.seed;
    let new_club = event.bindings[1];

    // Locate the actual edit times from the revision store.
    let player_edit = world
        .store
        .peek(player)
        .unwrap()
        .revisions()
        .iter()
        .map(|r| r.time)
        .find(|&t| t >= event.time)
        .unwrap();

    // Mid-flight: right after the player's page changed.
    let mid = player_edit + 1;
    let mid_graph = state_graph_at(&world.store, &world.universe, mid);
    let mid_violations = audit_reciprocity(&mid_graph, &rules);
    assert!(
        mid_violations
            .iter()
            .any(|v| v.source == player && v.target == new_club),
        "the static audit flags the half-done (but perfectly normal) transfer"
    );

    // End of year one: the club page has long since followed.
    let end_graph = state_graph_at(&world.store, &world.universe, YEAR - 1);
    let end_violations = audit_reciprocity(&end_graph, &rules);
    assert!(
        !end_violations
            .iter()
            .any(|v| v.source == player && v.target == new_club),
        "the completed transfer is consistent at year end"
    );

    // The violations that REMAIN at year end correspond to genuinely
    // incomplete events: every planted transfer missing its +squad mirror
    // and uncorrected must be present.
    for err in world.truth.errors.iter().filter(|e| !e.corrected_in_y2) {
        let ev = &world.truth.events[err.event_ix];
        if ev.template_ix != transfer_ix {
            continue;
        }
        // Action 2 of the transfer template is +squad(new_club → player).
        if err.action_ix == 2 {
            let p = ev.seed;
            let club = ev.bindings[1];
            assert!(
                end_violations
                    .iter()
                    .any(|v| v.source == p && v.target == club),
                "uncorrected missing-squad error must be a standing violation"
            );
        }
    }

    // After the year-two correction pass, the standing violations shrink.
    let y2_graph = state_graph_at(&world.store, &world.universe, 2 * YEAR - 1);
    let y2_violations = audit_reciprocity(&y2_graph, &rules);
    assert!(
        y2_violations.len() <= end_violations.len(),
        "corrections cannot increase violations ({} vs {})",
        y2_violations.len(),
        end_violations.len()
    );
}
