//! End-to-end calibration: mine a generated soccer world and compare the
//! discovered patterns against the domain's expert list.

use std::collections::BTreeSet;
use wiclean::core::config::{MinerConfig, WcConfig};
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::synth::{generate, scenarios, SynthConfig};
use wiclean::types::{WEEK, YEAR};

#[test]
fn soccer_patterns_recovered() {
    let synth_config = SynthConfig {
        seed_count: 400,
        rng_seed: 20180801,
        ..SynthConfig::default()
    };
    let world = generate(scenarios::soccer(), synth_config);

    let wc = WcConfig {
        w_min: 2 * WEEK,
        tau0: 0.8,
        max_window: YEAR,
        min_tau: 0.2,
        timeline_start: 2 * WEEK,
        timeline_end: YEAR,
        miner: MinerConfig {
            tau_rel: 0.3,
            max_pattern_actions: 6,
            max_abstraction_height: 1,
            mine_relative: true,
            ..MinerConfig::default()
        },
        threads: 8,
        ..WcConfig::default()
    };

    let result = find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc);
    let expert = world.expert_list();

    let discovered: BTreeSet<_> = result
        .discovered
        .iter()
        .map(|d| d.pattern.clone())
        .collect();
    eprintln!("iterations: {}", result.iterations);
    eprintln!(
        "final width: {} days, final tau: {:.3}",
        result.final_width / (24 * 3600),
        result.final_tau
    );
    eprintln!("discovered ({}):", discovered.len());
    for d in &result.discovered {
        eprintln!(
            "  f={:.2} win={} {}",
            d.frequency,
            d.window,
            d.pattern.display(&world.universe)
        );
        for r in &d.rel_patterns {
            eprintln!(
                "    rel f={:.2} rf={:.2} {}",
                r.frequency,
                r.rel_frequency,
                r.pattern.display(&world.universe)
            );
        }
    }
    eprintln!("expert list:");
    let mut hits = 0;
    let mut windowed_total = 0;
    for (name, pattern, is_windowed) in &expert {
        let hit = discovered.contains(pattern);
        if *is_windowed {
            windowed_total += 1;
            if hit {
                hits += 1;
            }
        }
        eprintln!(
            "  [{}] windowed={} {}  → {}",
            name,
            is_windowed,
            pattern.display(&world.universe),
            if hit { "FOUND" } else { "missed" }
        );
    }

    // Precision: every discovered pattern must be an expert pattern.
    let expert_set: BTreeSet<_> = expert.iter().map(|(_, p, _)| p.clone()).collect();
    let false_positives: Vec<_> = result
        .discovered
        .iter()
        .filter(|d| !expert_set.contains(&d.pattern))
        .collect();
    for fp in &false_positives {
        eprintln!("FALSE POSITIVE: {}", fp.pattern.display(&world.universe));
    }

    assert!(
        hits >= windowed_total - 1,
        "recall too low: {hits}/{windowed_total} windowed expert patterns found"
    );
    assert!(
        false_positives.is_empty(),
        "{} non-expert patterns discovered",
        false_positives.len()
    );
}
