//! Cross-crate robustness integration: the full window-and-pattern search
//! over a fault-injected fetch layer.
//!
//! Two acceptance properties:
//!
//! 1. 10% transient faults + the default retry policy recover the identical
//!    most specific pattern set with empty degraded coverage — transient
//!    faults are invisible to the miner.
//! 2. With retries disabled the run still completes, and the report
//!    enumerates every entity it had to skip.

use std::collections::BTreeSet;
use wiclean::core::pattern::Pattern;
use wiclean::core::report::WcReport;
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::eval::quality::default_wc_config;
use wiclean::revstore::{FaultPlan, FaultyStore, FetchError, ResilientFetcher, RetryPolicy};
use wiclean::synth::{generate, scenarios, SynthConfig, SynthWorld};

fn small_world() -> SynthWorld {
    generate(
        scenarios::soccer(),
        SynthConfig {
            seed_count: 60,
            rng_seed: 424242,
            distractor_entities: 30,
            ..SynthConfig::default()
        },
    )
}

fn pattern_set(result: &wiclean::core::windows::WcResult) -> BTreeSet<Pattern> {
    result
        .discovered
        .iter()
        .map(|d| d.pattern.clone())
        .collect()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full pipeline — run with --release")]
fn transient_faults_with_default_retry_are_invisible() {
    let world = small_world();
    let wc = default_wc_config(2);

    let clean = find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc);

    let faulty = FaultyStore::new(&world.store, FaultPlan::transient_only(0.10, 0xC0FFEE));
    let fetcher = ResilientFetcher::new(&faulty, RetryPolicy::default());
    let healed = find_windows_and_patterns(&fetcher, &world.universe, world.seed_type, &wc);

    assert!(
        healed.degraded.is_empty(),
        "default retry must heal 10% transient faults: {:?}",
        healed.degraded
    );
    assert!(healed.failed_windows.is_empty());
    assert_eq!(pattern_set(&clean), pattern_set(&healed));
    assert_eq!(clean.final_width, healed.final_width);
    assert!(
        fetcher.retries_used() > 0,
        "a 10% fault rate must have cost retries"
    );
    assert_eq!(fetcher.pages_given_up(), 0);
    assert!(!fetcher.breaker_tripped());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full pipeline — run with --release")]
fn disabled_retries_degrade_and_enumerate_every_loss() {
    let world = small_world();
    // Sequential mining: the faulty store's per-entity attempt counters make
    // fault outcomes depend on fetch order, so reproducibility is only
    // guaranteed single-threaded.
    let wc = default_wc_config(1);

    let faulty = FaultyStore::new(&world.store, FaultPlan::transient_only(0.30, 7));
    let fetcher = ResilientFetcher::new(&faulty, RetryPolicy::no_retries());
    let result = find_windows_and_patterns(&fetcher, &world.universe, world.seed_type, &wc);

    // The run completes and the losses are fully enumerated.
    assert!(result.degraded.entities_lost() > 0, "30% loss must bite");
    assert_eq!(fetcher.retries_used(), 0);
    assert!(fetcher.pages_given_up() > 0);
    for lost in &result.degraded.lost {
        assert!(
            !world.universe.entity_name(lost.entity).is_empty(),
            "every lost entity resolves to a real page"
        );
        assert_eq!(lost.error, FetchError::Exhausted { attempts: 1 });
    }
    assert!(result.degraded.denominator_affected);

    // The report carries the same enumeration, and survives serialization.
    let report = WcReport::from_result(&result, &world.universe);
    assert_eq!(
        report.degraded.entities_lost.len(),
        result.degraded.entities_lost()
    );
    let back = WcReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back, report);

    // Deterministic: the same fault seed reproduces the same losses.
    let faulty2 = FaultyStore::new(&world.store, FaultPlan::transient_only(0.30, 7));
    let fetcher2 = ResilientFetcher::new(&faulty2, RetryPolicy::no_retries());
    let result2 = find_windows_and_patterns(&fetcher2, &world.universe, world.seed_type, &wc);
    assert_eq!(result.degraded.lost, result2.degraded.lost);
    assert_eq!(pattern_set(&result), pattern_set(&result2));
}
