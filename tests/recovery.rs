//! Kill-and-recover integration: the crawler dies mid-ingestion — a torn
//! final WAL write at 25%, 50%, and 90% of the stream — and the full
//! pipeline runs over whatever recovery salvages.
//!
//! Acceptance properties:
//!
//! 1. Recovery never panics and never refuses a directory whose
//!    checkpoints are intact; it returns exactly the acknowledged prefix
//!    (the WAL is synced per record here, so nothing buffered is in play).
//! 2. Mining over the recovered store produces the identical pattern set
//!    as mining over that same prefix ingested cleanly in memory — a
//!    crash-recovered corpus is indistinguishable from one that never
//!    crashed, minus the honestly-reported tail.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use wiclean::core::degraded::DegradedCoverage;
use wiclean::core::miner::MineStats;
use wiclean::core::pattern::Pattern;
use wiclean::core::recover::open_recovered;
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::eval::quality::default_wc_config;
use wiclean::revstore::{
    DurabilityPolicy, DurableStore, FailKind, FailOp, FailSpec, FailpointFs, MemFs, RevisionStore,
    SyncPolicy, TailOutcome,
};
use wiclean::synth::{generate, scenarios, SynthConfig};
use wiclean::types::{EntityId, Timestamp};

fn stream() -> (
    wiclean::types::Universe,
    wiclean::types::TypeId,
    Vec<(EntityId, Timestamp, String)>,
) {
    let world = generate(
        scenarios::soccer(),
        SynthConfig {
            seed_count: 40,
            rng_seed: 777,
            distractor_entities: 20,
            ..SynthConfig::default()
        },
    );
    let mut entities: Vec<EntityId> = world.store.entities().collect();
    entities.sort_by_key(|e| e.as_u32());
    let mut out = Vec::new();
    for e in entities {
        for r in world.store.peek(e).expect("entity has a page").revisions() {
            out.push((e, r.time, r.text.clone()));
        }
    }
    (world.universe, world.seed_type, out)
}

fn ingest_clean(prefix: &[(EntityId, Timestamp, String)]) -> RevisionStore {
    let mut s = RevisionStore::new();
    for (e, t, text) in prefix {
        s.record(*e, *t, text.clone());
    }
    s
}

fn policy() -> DurabilityPolicy {
    DurabilityPolicy {
        sync: SyncPolicy::Always,
        checkpoint_every: 64,
        delta_encode: true,
    }
}

fn pattern_set(result: &wiclean::core::windows::WcResult) -> BTreeSet<Pattern> {
    result
        .discovered
        .iter()
        .map(|d| d.pattern.clone())
        .collect()
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full pipeline over three crashes — run with --release"
)]
fn kill_and_recover_mines_exactly_the_surviving_prefix() {
    let (universe, seed_type, stream) = stream();
    let total = stream.len() as u64;
    assert!(total > 100, "stream too small to place kill points");
    let wc = default_wc_config(2);

    for percent in [25u64, 50, 90] {
        let kill_at = total * percent / 100;
        let mem = Arc::new(MemFs::new());
        let fs = Arc::new(FailpointFs::new(
            mem.clone(),
            // Tear the kill_at-th append a few bytes in and halt the
            // filesystem — the process is dead from this point on.
            FailSpec::once(FailOp::Append, kill_at, FailKind::TornWrite { keep: 7 }),
        ));

        let dir = PathBuf::from("/crawl");
        let mut ds = DurableStore::create(fs, dir.clone(), policy()).expect("create store");
        let mut acked: u64 = 0;
        for (e, t, text) in &stream {
            if ds.record(*e, *t, text).is_err() {
                break;
            }
            acked += 1;
        }
        assert_eq!(acked, kill_at, "the torn append kills record #{kill_at}");
        assert!(ds.is_wedged(), "a torn append must wedge the store");
        drop(ds);

        // The crawler is gone; recover from what hit the disk.
        let rec = open_recovered(mem, dir, policy()).expect("recovery must not refuse");
        let n = rec.recovery.records_recovered();
        assert_eq!(
            n, acked,
            "per-record sync ⇒ exactly the acked prefix survives"
        );
        assert_eq!(rec.recovery.tail, TailOutcome::TornTail);
        assert!(
            rec.recovery.bytes_dropped > 0,
            "the torn frame is accounted"
        );
        assert_eq!(rec.recovery.records_dropped, 0);

        let prefix = &stream[..n as usize];
        let clean = ingest_clean(prefix);
        assert_eq!(
            rec.store, clean,
            "recovered store ≡ clean prefix at {percent}%"
        );

        // The losses flow into run accounting like any coverage loss.
        let mut degraded = DegradedCoverage::default();
        let mut stats = MineStats::default();
        rec.stamp(&mut degraded, &mut stats);
        assert!(!degraded.is_empty());
        assert_eq!(stats.wal_bytes_dropped, rec.recovery.bytes_dropped);

        // Full pipeline: recovered vs clean prefix must mine identically.
        let mined_recovered = find_windows_and_patterns(&rec.store, &universe, seed_type, &wc);
        let mined_clean = find_windows_and_patterns(&clean, &universe, seed_type, &wc);
        assert_eq!(
            pattern_set(&mined_recovered),
            pattern_set(&mined_clean),
            "pattern sets diverge after recovery at {percent}%"
        );
        assert_eq!(mined_recovered.final_width, mined_clean.final_width);
        assert_eq!(mined_recovered.final_tau, mined_clean.final_tau);
    }
}

#[test]
fn kill_and_recover_is_exact_without_mining() {
    // The debug-profile variant: same crash points, everything but the
    // full mining runs — so `cargo test` exercises recovery too.
    let (_, _, stream) = stream();
    let total = stream.len() as u64;
    for percent in [25u64, 50, 90] {
        let kill_at = total * percent / 100;
        let mem = Arc::new(MemFs::new());
        let fs = Arc::new(FailpointFs::new(
            mem.clone(),
            FailSpec::once(FailOp::Append, kill_at, FailKind::TornWrite { keep: 3 }),
        ));
        let dir = PathBuf::from("/crawl");
        let mut ds = DurableStore::create(fs, dir.clone(), policy()).expect("create store");
        for (e, t, text) in &stream {
            if ds.record(*e, *t, text).is_err() {
                break;
            }
        }
        drop(ds);
        let rec = open_recovered(mem, dir, policy()).expect("recovery must not refuse");
        assert_eq!(rec.recovery.records_recovered(), kill_at);
        assert_eq!(rec.store, ingest_clean(&stream[..kill_at as usize]));
    }
}
