//! End-to-end calibration for the cinematography and US-politician
//! domains (the soccer domain has its own verbose test in calibration.rs).

use std::collections::BTreeSet;
use wiclean::core::config::{MinerConfig, WcConfig};
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::synth::{generate, DomainSpec, SynthConfig};
use wiclean::types::{WEEK, YEAR};

fn check_domain(domain: DomainSpec, rng_seed: u64) {
    let name = domain.name.clone();
    let synth_config = SynthConfig {
        seed_count: 400,
        rng_seed,
        ..SynthConfig::default()
    };
    let world = generate(domain, synth_config);

    let wc = WcConfig {
        w_min: 2 * WEEK,
        tau0: 0.8,
        max_window: YEAR,
        min_tau: 0.2,
        timeline_start: 2 * WEEK,
        timeline_end: YEAR,
        miner: MinerConfig {
            tau_rel: 0.3,
            max_pattern_actions: 6,
            max_abstraction_height: 1,
            mine_relative: false,
            ..MinerConfig::default()
        },
        threads: 8,
        ..WcConfig::default()
    };

    let result = find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc);
    let expert = world.expert_list();
    let discovered: BTreeSet<_> = result
        .discovered
        .iter()
        .map(|d| d.pattern.clone())
        .collect();

    let mut windowed_hits = 0;
    let mut windowed_total = 0;
    let mut windowless_hits = 0;
    for (tname, pattern, is_windowed) in &expert {
        let hit = discovered.contains(pattern);
        eprintln!(
            "[{name}/{tname}] windowed={is_windowed} → {}",
            if hit { "FOUND" } else { "missed" }
        );
        if *is_windowed {
            windowed_total += 1;
            windowed_hits += usize::from(hit);
        } else {
            windowless_hits += usize::from(hit);
        }
    }

    let expert_set: BTreeSet<_> = expert.iter().map(|(_, p, _)| p.clone()).collect();
    let false_positives = result
        .discovered
        .iter()
        .filter(|d| !expert_set.contains(&d.pattern))
        .count();

    assert!(
        windowed_hits >= windowed_total - 1,
        "{name}: recall too low ({windowed_hits}/{windowed_total})"
    );
    assert_eq!(
        windowless_hits, 0,
        "{name}: window-less patterns must be missed"
    );
    assert_eq!(false_positives, 0, "{name}: non-expert patterns discovered");
}

#[test]
fn cinema_patterns_recovered() {
    check_domain(wiclean::synth::scenarios::cinema(), 20181101);
}

#[test]
fn politics_patterns_recovered() {
    check_domain(wiclean::synth::scenarios::politics(), 777);
}

#[test]
fn software_patterns_recovered() {
    // The future-work domain: same calibration contract, same expectations.
    check_domain(wiclean::synth::scenarios::software(), 20260705);
}
