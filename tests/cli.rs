//! End-to-end test of the `wiclean` CLI binary.

use std::process::Command;

fn wiclean() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wiclean"))
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full pipeline — run with --release")]
fn generate_stats_mine_detect_round_trip() {
    let dir = std::env::temp_dir().join("wiclean_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");
    let report = dir.join("report.json");

    // generate
    let out = wiclean()
        .args([
            "generate",
            "--domain",
            "software",
            "--seeds",
            "150",
            "--rng",
            "7",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(corpus.exists());

    // stats
    let out = wiclean()
        .args(["stats", "--corpus", corpus.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SoftwareProject"), "{stdout}");
    assert!(stdout.contains("revisions"), "{stdout}");

    // mine → JSON report
    let out = wiclean()
        .args([
            "mine",
            "--corpus",
            corpus.to_str().unwrap(),
            "--threads",
            "2",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&report).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed["seed_type"], "SoftwareProject");
    assert!(
        !parsed["patterns"].as_array().unwrap().is_empty(),
        "patterns discovered"
    );

    // detect
    let out = wiclean()
        .args([
            "detect",
            "--corpus",
            corpus.to_str().unwrap(),
            "--threads",
            "2",
            "--top",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pattern (freq"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full pipeline — run with --release")]
fn serve_and_suggest_round_trip() {
    use std::io::{BufRead, BufReader, Write};

    let dir = std::env::temp_dir().join("wiclean_cli_serve_test");
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");
    let out = wiclean()
        .args([
            "generate",
            "--domain",
            "soccer",
            "--seeds",
            "40",
            "--rng",
            "11",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // One-shot mode: an arbitrary entity answers cleanly (suggestions or
    // the explicit "no suggestions" line — never an error).
    let out = wiclean()
        .args([
            "suggest",
            "--corpus",
            corpus.to_str().unwrap(),
            "--entity",
            "No Such Page",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("no suggestions"));

    // Server mode: bind an OS-picked port, speak the wire protocol, hot
    // reload, shut down over the wire, and exit cleanly.
    let mut child = wiclean()
        .args([
            "serve",
            "--corpus",
            corpus.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();

    let stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut send = |req: &str| -> serde_json::Value {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        serde_json::from_str(&resp).unwrap()
    };

    let v = send(r#"{"op":"ping"}"#);
    assert_eq!(v.get("ack").and_then(|a| a.as_str()), Some("pong"));
    let v = send(r#"{"op":"suggest","entity":"No Such Page"}"#);
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
    let v = send(r#"{"op":"reload"}"#);
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{v:?}");
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(2));
    let v = send(r#"{"op":"stats"}"#);
    assert_eq!(
        v.get("serve")
            .and_then(|s| s.get("swaps"))
            .and_then(|s| s.as_u64()),
        Some(1)
    );
    let v = send(r#"{"op":"shutdown"}"#);
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));

    let status = child.wait().unwrap();
    assert!(status.success(), "server exits cleanly after wire shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full pipeline — run with --release")]
fn planner_flags_round_trip() {
    let dir = std::env::temp_dir().join("wiclean_cli_planner_test");
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");
    let out = wiclean()
        .args([
            "generate",
            "--domain",
            "soccer",
            "--seeds",
            "40",
            "--rng",
            "13",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // mine with the planner on (explicitly, plus a custom re-plan factor)
    // and off: the mined sections must be byte-identical — the planner
    // only changes how fast the pair stage runs — while the planner
    // counters separate the two runs.
    let mine = |planner: &str, factor: Option<&str>, report: &std::path::Path| {
        let mut args = vec![
            "mine".to_string(),
            "--corpus".to_string(),
            corpus.to_str().unwrap().to_string(),
            "--threads".to_string(),
            "2".to_string(),
            "--planner".to_string(),
            planner.to_string(),
            "--out".to_string(),
            report.to_str().unwrap().to_string(),
        ];
        if let Some(f) = factor {
            args.push("--replan-factor".to_string());
            args.push(f.to_string());
        }
        let out = wiclean().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        serde_json::from_str::<serde_json::Value>(&std::fs::read_to_string(report).unwrap())
            .unwrap()
    };
    let on = mine("on", Some("2.5"), &dir.join("on.json"));
    let off = mine("off", None, &dir.join("off.json"));
    assert_eq!(
        on["patterns"], off["patterns"],
        "plan choice changed output"
    );
    assert_eq!(on["iterations"], off["iterations"]);
    let picks = |r: &serde_json::Value| {
        ["hash", "sort_merge", "nested", "partitioned"]
            .iter()
            .map(|s| {
                r["stats"][format!("plan_picks_{s}").as_str()]
                    .as_u64()
                    .unwrap()
            })
            .sum::<u64>()
    };
    assert!(picks(&on) > 0, "planner-on run must record plan picks");
    assert_eq!(picks(&off), 0, "planner-off run must not plan");

    // The same flags round-trip through `stream`.
    let stream = |planner: &str, report: &std::path::Path| {
        let out = wiclean()
            .args([
                "stream",
                "--corpus",
                corpus.to_str().unwrap(),
                "--threads",
                "2",
                "--planner",
                planner,
                "--replan-factor",
                "3.5",
                "--out",
                report.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        serde_json::from_str::<serde_json::Value>(&std::fs::read_to_string(report).unwrap())
            .unwrap()
    };
    let s_on = stream("on", &dir.join("stream_on.json"));
    let s_off = stream("off", &dir.join("stream_off.json"));
    assert_eq!(
        s_on["patterns"], s_off["patterns"],
        "plan choice changed streamed output"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    let out = wiclean().output().unwrap();
    assert!(!out.status.success(), "no command must fail");

    let out = wiclean().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success(), "unknown command must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = wiclean()
        .args([
            "generate",
            "--domain",
            "underwater-basket-weaving",
            "--out",
            "/tmp/x",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown domain must fail");

    let out = wiclean()
        .args(["mine", "--corpus", "/nonexistent/corpus.json"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "missing corpus must fail");

    let out = wiclean()
        .args(["mine", "--corpus", "/tmp/x.json", "--planner", "sideways"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "bad --planner value must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--planner"));

    let out = wiclean()
        .args(["mine", "--corpus", "/tmp/x.json", "--replan-factor", "1.0"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--replan-factor <= 1.0 must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("replan"));

    let out = wiclean().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
