//! End-to-end test of the `wiclean` CLI binary.

use std::process::Command;

fn wiclean() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wiclean"))
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full pipeline — run with --release")]
fn generate_stats_mine_detect_round_trip() {
    let dir = std::env::temp_dir().join("wiclean_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");
    let report = dir.join("report.json");

    // generate
    let out = wiclean()
        .args([
            "generate",
            "--domain",
            "software",
            "--seeds",
            "150",
            "--rng",
            "7",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(corpus.exists());

    // stats
    let out = wiclean()
        .args(["stats", "--corpus", corpus.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SoftwareProject"), "{stdout}");
    assert!(stdout.contains("revisions"), "{stdout}");

    // mine → JSON report
    let out = wiclean()
        .args([
            "mine",
            "--corpus",
            corpus.to_str().unwrap(),
            "--threads",
            "2",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&report).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed["seed_type"], "SoftwareProject");
    assert!(
        !parsed["patterns"].as_array().unwrap().is_empty(),
        "patterns discovered"
    );

    // detect
    let out = wiclean()
        .args([
            "detect",
            "--corpus",
            corpus.to_str().unwrap(),
            "--threads",
            "2",
            "--top",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pattern (freq"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    let out = wiclean().output().unwrap();
    assert!(!out.status.success(), "no command must fail");

    let out = wiclean().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success(), "unknown command must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = wiclean()
        .args([
            "generate",
            "--domain",
            "underwater-basket-weaving",
            "--out",
            "/tmp/x",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown domain must fail");

    let out = wiclean()
        .args(["mine", "--corpus", "/nonexistent/corpus.json"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "missing corpus must fail");

    let out = wiclean().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
