//! Cross-crate integration: the full generate → mine → detect pipeline.

use std::collections::BTreeSet;
use wiclean::baselines::{run_variant, Variant};
use wiclean::core::config::MinerConfig;
use wiclean::core::partial::detect_partial_updates;
use wiclean::core::pattern::Pattern;
use wiclean::core::report::WcReport;
use wiclean::core::windows::find_windows_and_patterns;
use wiclean::eval::quality::default_wc_config;
use wiclean::synth::{generate, scenarios, SynthConfig};
use wiclean::types::{Window, DAY};

fn small_world() -> wiclean::synth::SynthWorld {
    generate(
        scenarios::soccer(),
        SynthConfig {
            seed_count: 60,
            rng_seed: 424242,
            distractor_entities: 30,
            ..SynthConfig::default()
        },
    )
}

#[test]
fn planted_errors_are_flagged_by_algorithm3() {
    let world = small_world();
    let transfer_window = Window::new(210 * DAY, 224 * DAY);
    let wp = {
        // Build the transfer expert pattern's working form from the domain.
        let t = &world.domain.templates[0];
        assert_eq!(t.name, "summer_transfer");
        let canonical = world.domain.expert_pattern(t, &world.universe);
        assert_eq!(canonical.len(), 4);
        // Algorithm 3 needs a working pattern whose first action binds the
        // seed; the canonical action order satisfies source-before-use for
        // this pattern shape, so wrap it directly.
        wiclean::core::pattern::WorkingPattern::from_actions(canonical.actions().to_vec())
    };

    let config = MinerConfig {
        tau: 0.3,
        max_abstraction_height: 1,
        mine_relative: false,
        ..MinerConfig::default()
    };
    let report = detect_partial_updates(
        &world.store,
        &world.universe,
        &config,
        &wp,
        world.seed_type,
        &transfer_window,
        2,
    );

    // Every planted incomplete transfer must be flagged.
    let incomplete_seeds: BTreeSet<_> = world
        .truth
        .events_of_template(0)
        .filter(|e| !e.is_complete())
        .map(|e| e.seed)
        .collect();
    for seed in &incomplete_seeds {
        assert!(
            report.partials.iter().any(|p| p.involves(*seed)),
            "incomplete transfer of {} not flagged",
            world.universe.entity_name(*seed)
        );
    }
    // And complete transfers appear as complete realizations.
    let complete = world
        .truth
        .events_of_template(0)
        .filter(|e| e.is_complete())
        .count();
    assert!(report.complete_count >= complete, "complete events missing");
}

#[test]
fn all_baseline_variants_agree_on_synth_world() {
    let world = small_world();
    let window = Window::new(210 * DAY, 224 * DAY);
    let config = MinerConfig {
        tau: 0.3,
        max_abstraction_height: 1,
        max_pattern_actions: 4,
        mine_relative: false,
        ..MinerConfig::default()
    };
    let mut sets: Vec<(String, BTreeSet<Pattern>)> = Vec::new();
    for v in Variant::ALL {
        let r = run_variant(
            v,
            &world.store,
            &world.universe,
            config,
            world.seed_type,
            &window,
            2,
        );
        sets.push((
            v.name().to_owned(),
            r.most_specific().map(|p| p.pattern.clone()).collect(),
        ));
    }
    for pair in sets.windows(2) {
        assert_eq!(pair[0].1, pair[1].1, "{} vs {}", pair[0].0, pair[1].0);
    }
    assert!(!sets[0].1.is_empty());
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations — run with --release"
)]
fn report_serializes_full_run() {
    let world = small_world();
    let wc = default_wc_config(2);
    let result = find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc);
    let report = WcReport::from_result(&result, &world.universe);
    let json = report.to_json();
    let back = WcReport::from_json(&json).unwrap();
    assert_eq!(back, report);
    assert_eq!(report.seed_type, "SoccerPlayer");
}

#[test]
fn year_two_corrections_eliminate_flags() {
    let world = small_world();
    // A corrected error's missing edit must be present in the final page
    // state (year-two pass applied it).
    use wiclean::wikitext::parse_page;
    for err in world.truth.errors.iter().filter(|e| e.corrected_in_y2) {
        let src = err.missing.source;
        let history = world.store.peek(src).unwrap();
        let last = &history.revisions().last().unwrap().text;
        let page = parse_page(last);
        let rel = world
            .universe
            .relation_name(wiclean::types::RelId::from_u32(err.missing.rel));
        let target = world.universe.entity_name(err.missing.target);
        match err.missing.op {
            wiclean::revstore::EditOp::Add => {
                assert!(
                    page.contains(rel, target),
                    "corrected add missing from final state"
                );
            }
            wiclean::revstore::EditOp::Remove => {
                assert!(
                    !page.contains(rel, target),
                    "corrected remove still present in final state"
                );
            }
        }
    }
}
