//! Parsing wikitext snapshots into structured links.
//!
//! The parser is a single forward pass over the text, line-oriented for the
//! block structure (infobox, sections, tables) with a small in-line scanner
//! for `[[link]]` syntax. It tolerates the noise real pages carry: HTML
//! comments, piped links, unknown templates, stray markup, and prose links
//! (which are skipped — only infobox fields, relation sections, and captioned
//! tables are structured data, per the paper's scope).

use crate::ast::{PageLinks, SymLinks};
use serde::{Deserialize, Serialize};
use wiclean_types::{Sym, SymTable};

/// Recoverable defects observed while parsing one snapshot.
///
/// Real crawled revision text is routinely truncated or garbled in transit;
/// the parser never fails on such input — it recovers at the next structural
/// boundary — but it *counts* what it had to recover from, so the crawl
/// layer can report degraded coverage instead of silently mining a page
/// whose tail was lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseIssues {
    /// `<!--` comments with no closing `-->` (rest of page discarded).
    pub unterminated_comments: u64,
    /// `<ref>` tags with no closing `</ref>` (rest of page discarded).
    pub unterminated_refs: u64,
    /// `[[` link openers with no closing `]]` on the fragment.
    pub unterminated_links: u64,
    /// Page ended inside an `{{Infobox …}}` block.
    pub unclosed_infoboxes: u64,
    /// Page ended inside a `{| … |}` table.
    pub unclosed_tables: u64,
}

impl ParseIssues {
    /// Total defect count.
    pub fn total(&self) -> u64 {
        self.unterminated_comments
            + self.unterminated_refs
            + self.unterminated_links
            + self.unclosed_infoboxes
            + self.unclosed_tables
    }

    /// Whether the snapshot parsed without recovery.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Merges another snapshot's counts into this one.
    pub fn absorb(&mut self, other: &ParseIssues) {
        self.unterminated_comments += other.unterminated_comments;
        self.unterminated_refs += other.unterminated_refs;
        self.unterminated_links += other.unterminated_links;
        self.unclosed_infoboxes += other.unclosed_infoboxes;
        self.unclosed_tables += other.unclosed_tables;
    }
}

/// Namespaced links (`[[Category:...]]`, `[[File:...]]`, …) are metadata,
/// not entity links, and are excluded from structured extraction.
fn is_namespaced(target: &str) -> bool {
    const NAMESPACES: [&str; 5] = ["Category:", "File:", "Image:", "Template:", "Help:"];
    NAMESPACES.iter().any(|ns| target.starts_with(ns))
}

/// Extracts the link targets from an inline fragment, resolving piped links
/// `[[Target|display]]` to `Target` and trimming whitespace. Malformed link
/// openers without a closing `]]` and namespaced links (categories, files)
/// are ignored.
pub fn scan_links(fragment: &str) -> Vec<&str> {
    scan_links_counted(fragment, &mut ParseIssues::default())
}

/// [`scan_links`] that also counts unterminated `[[` openers.
pub(crate) fn scan_links_counted<'a>(fragment: &'a str, issues: &mut ParseIssues) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut rest = fragment;
    while let Some(start) = rest.find("[[") {
        rest = &rest[start + 2..];
        let Some(end) = rest.find("]]") else {
            issues.unterminated_links += 1;
            break;
        };
        let inner = &rest[..end];
        rest = &rest[end + 2..];
        let target = match inner.find('|') {
            Some(pipe) => &inner[..pipe],
            None => inner,
        };
        let target = target.trim();
        if !target.is_empty() && !is_namespaced(target) {
            out.push(target);
        }
    }
    out
}

/// Strips `<ref>…</ref>` footnotes (and self-closing `<ref … />` tags);
/// reference bodies may contain links, but those cite sources rather than
/// relate entities. Unterminated refs run to the end of the input.
pub fn strip_refs(text: &str) -> String {
    strip_refs_counted(text, &mut ParseIssues::default())
}

/// [`strip_refs`] that also counts unterminated `<ref>` tags.
pub(crate) fn strip_refs_counted(text: &str, issues: &mut ParseIssues) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find("<ref") {
        out.push_str(&rest[..start]);
        rest = &rest[start..];
        // Self-closing tag?
        let close_tag = rest.find("/>");
        let open_end = rest.find('>');
        match (open_end, close_tag) {
            (Some(oe), Some(ct)) if ct + 1 == oe => {
                // `<ref ... />`
                rest = &rest[oe + 1..];
            }
            (Some(_), _) => match rest.find("</ref>") {
                Some(end) => rest = &rest[end + 6..],
                None => {
                    issues.unterminated_refs += 1;
                    return out;
                }
            },
            (None, _) => {
                issues.unterminated_refs += 1;
                return out;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Strips `<!-- ... -->` comments. Unterminated comments run to the end of
/// the input, like MediaWiki's sanitizer.
pub fn strip_comments(text: &str) -> String {
    strip_comments_counted(text, &mut ParseIssues::default())
}

/// [`strip_comments`] that also counts unterminated comments.
pub(crate) fn strip_comments_counted(text: &str, issues: &mut ParseIssues) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find("<!--") {
        out.push_str(&rest[..start]);
        rest = &rest[start + 4..];
        match rest.find("-->") {
            Some(end) => rest = &rest[end + 3..],
            None => {
                issues.unterminated_comments += 1;
                return out;
            }
        }
    }
    out.push_str(rest);
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    /// Top level prose; links here are unstructured and skipped.
    Prose,
    /// Inside `{{Infobox ...}}`.
    Infobox,
    /// Inside a `== relation ==` section; bullets are structured links.
    Section,
    /// Inside a `{| ... |}` table.
    Table,
}

/// Parses one page snapshot into its structured links.
///
/// Recognized structure:
/// * `{{Infobox KIND` opens an infobox; `| field = value` lines contribute
///   `(field, target)` for every link in the value; `}}` closes it.
/// * `== title ==` opens a section named `title`; `* ...` bullets inside it
///   contribute `(title, target)` pairs.
/// * `{|` opens a table; `|+ caption` names its relation; `| cell` and
///   `! cell` lines contribute links under that caption; `|}` closes it.
///   Tables without a caption are presentation-only and skipped.
/// * everything else is prose and ignored.
pub fn parse_page(text: &str) -> PageLinks {
    parse_page_checked(text).0
}

/// [`parse_page`] that also reports the recoverable defects encountered —
/// the crawl layer's view of truncated or garbled revision text. The links
/// returned are identical to [`parse_page`]'s.
pub fn parse_page_checked(text: &str) -> (PageLinks, ParseIssues) {
    let mut issues = ParseIssues::default();
    let text = {
        let stripped = strip_comments_counted(text, &mut issues);
        strip_refs_counted(&stripped, &mut issues)
    };
    let mut page = PageLinks::new();
    let mut block = Block::Prose;
    let mut section_name = String::new();
    let mut table_caption: Option<String> = None;
    // Brace depth *inside* the infobox: nested templates ({{cite …}},
    // {{formatnum:…}}) may span lines and must not contribute fields or
    // close the infobox early.
    let mut infobox_depth = 0i32;

    // Redirect stubs: the whole page is just a pointer.
    if let Some(rest) = text.trim_start().strip_prefix("#REDIRECT") {
        if let Some(target) = scan_links_counted(rest, &mut issues).first() {
            page.redirect = Some((*target).to_owned());
        }
        return (page, issues);
    }

    for raw_line in text.lines() {
        let line = raw_line.trim_end();
        let trimmed = line.trim_start();

        match block {
            Block::Infobox => {
                let opens = trimmed.matches("{{").count() as i32;
                let closes = trimmed.matches("}}").count() as i32;
                if infobox_depth == 0 {
                    if let Some(rest) = trimmed.strip_prefix('|') {
                        if let Some(eq) = rest.find('=') {
                            let field = rest[..eq].trim();
                            let value = &rest[eq + 1..];
                            if !field.is_empty() {
                                for target in scan_links_counted(value, &mut issues) {
                                    page.insert(field, target);
                                }
                            }
                        }
                    }
                }
                infobox_depth += opens - closes;
                if infobox_depth < 0 {
                    // The infobox's own `}}` closed it.
                    block = Block::Prose;
                    infobox_depth = 0;
                }
            }
            Block::Table => {
                if trimmed == "|}" {
                    block = Block::Prose;
                    table_caption = None;
                } else if let Some(rest) = trimmed.strip_prefix("|+") {
                    let caption = rest.trim();
                    if !caption.is_empty() {
                        table_caption = Some(caption.to_owned());
                    }
                } else if trimmed.starts_with("|-") {
                    // row separator
                } else if let Some(rest) = trimmed
                    .strip_prefix('|')
                    .or_else(|| trimmed.strip_prefix('!'))
                {
                    if let Some(caption) = &table_caption {
                        for target in scan_links_counted(rest, &mut issues) {
                            page.insert(caption, target);
                        }
                    }
                }
            }
            Block::Prose | Block::Section => {
                if let Some(kind) = trimmed
                    .strip_prefix("{{Infobox ")
                    .or_else(|| trimmed.strip_prefix("{{infobox "))
                {
                    page.infobox_kind = Some(kind.trim().trim_end_matches('}').trim().to_owned());
                    block = Block::Infobox;
                    infobox_depth = 0;
                } else if trimmed.starts_with("{|") {
                    block = Block::Table;
                    table_caption = None;
                } else if let Some(title) = heading_title(trimmed) {
                    section_name = title.to_owned();
                    block = Block::Section;
                } else if block == Block::Section {
                    if let Some(rest) = trimmed.strip_prefix('*') {
                        for target in scan_links_counted(rest, &mut issues) {
                            page.insert(&section_name, target);
                        }
                    } else if !trimmed.is_empty() && !trimmed.starts_with('*') {
                        // Prose inside a section ends the structured list:
                        // subsequent links are unstructured.
                        if !trimmed.starts_with("[[") && !trimmed.contains("[[") {
                            // pure prose: stay in section, bullets may resume
                        } else {
                            block = Block::Prose;
                        }
                    }
                }
            }
        }
    }
    match block {
        Block::Infobox => issues.unclosed_infoboxes += 1,
        Block::Table => issues.unclosed_tables += 1,
        Block::Prose | Block::Section => {}
    }
    (page, issues)
}

/// If the line is a `== title ==` heading (any level ≥ 2), returns the title.
pub(crate) fn heading_title(line: &str) -> Option<&str> {
    if !line.starts_with("==") || !line.ends_with("==") || line.len() < 5 {
        return None;
    }
    let inner = line.trim_matches('=').trim();
    if inner.is_empty() {
        None
    } else {
        Some(inner)
    }
}

/// The block-machine state *between* two lines of the interned parser.
///
/// This is the full parser state: feeding the same line to two machines in
/// equal `LineState`s yields identical links and identical successor states.
/// That O(1)-comparable property is what lets the incremental parser splice
/// reparsed spans back into a cached per-line record list and re-use the
/// unchanged suffix (see [`crate::incr`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LineState {
    pub(crate) block: Block,
    /// Current `== section ==` name; `Some` iff `block == Section`.
    pub(crate) section: Option<Sym>,
    /// Current `|+ caption`; only meaningful while `block == Table`.
    pub(crate) table_caption: Option<Sym>,
    /// Nested-template depth inside an infobox; only meaningful while
    /// `block == Infobox`.
    pub(crate) infobox_depth: i32,
}

impl LineState {
    pub(crate) fn initial() -> Self {
        Self {
            block: Block::Prose,
            section: None,
            table_caption: None,
            infobox_depth: 0,
        }
    }
}

/// What feeding one line produced: links, maybe an infobox kind, and any
/// unterminated-`[[` count. All other issue classes are either whole-text
/// (comments/refs, handled before the machine runs) or end-of-input
/// (unclosed blocks, derived from the final state).
#[derive(Debug, Default, Clone)]
pub(crate) struct LineEffect {
    pub(crate) links: Vec<(Sym, Sym)>,
    pub(crate) kind: Option<Sym>,
    pub(crate) unterminated_links: u64,
}

/// The per-line block machine of [`parse_page_checked`], factored out so it
/// can be resumed from any recorded [`LineState`]. `feed` expects lines of
/// *already comment/ref-stripped* text — it must not re-strip, because
/// whole-text stripping can reconstruct `<!--`/`<ref` tokens in its output
/// and the frozen parser is deliberately single-pass.
#[derive(Debug, Clone)]
pub(crate) struct LineMachine {
    pub(crate) state: LineState,
}

impl LineMachine {
    pub(crate) fn new() -> Self {
        Self {
            state: LineState::initial(),
        }
    }

    pub(crate) fn resume(state: LineState) -> Self {
        Self { state }
    }

    /// Transcribes one loop iteration of [`parse_page_checked`], interning
    /// labels and targets instead of allocating strings.
    pub(crate) fn feed(&mut self, raw_line: &str, syms: &mut SymTable) -> LineEffect {
        let mut fx = LineEffect::default();
        let mut issues = ParseIssues::default();
        let line = raw_line.trim_end();
        let trimmed = line.trim_start();

        match self.state.block {
            Block::Infobox => {
                let opens = trimmed.matches("{{").count() as i32;
                let closes = trimmed.matches("}}").count() as i32;
                if self.state.infobox_depth == 0 {
                    if let Some(rest) = trimmed.strip_prefix('|') {
                        if let Some(eq) = rest.find('=') {
                            let field = rest[..eq].trim();
                            let value = &rest[eq + 1..];
                            if !field.is_empty() {
                                let mut rel = None;
                                for target in scan_links_counted(value, &mut issues) {
                                    let rel = *rel.get_or_insert_with(|| syms.intern(field));
                                    let target = syms.intern(target);
                                    fx.links.push((rel, target));
                                }
                            }
                        }
                    }
                }
                self.state.infobox_depth += opens - closes;
                if self.state.infobox_depth < 0 {
                    self.state.block = Block::Prose;
                    self.state.infobox_depth = 0;
                }
            }
            Block::Table => {
                if trimmed == "|}" {
                    self.state.block = Block::Prose;
                    self.state.table_caption = None;
                } else if let Some(rest) = trimmed.strip_prefix("|+") {
                    let caption = rest.trim();
                    if !caption.is_empty() {
                        self.state.table_caption = Some(syms.intern(caption));
                    }
                } else if trimmed.starts_with("|-") {
                    // row separator
                } else if let Some(rest) = trimmed
                    .strip_prefix('|')
                    .or_else(|| trimmed.strip_prefix('!'))
                {
                    if let Some(caption) = self.state.table_caption {
                        for target in scan_links_counted(rest, &mut issues) {
                            let target = syms.intern(target);
                            fx.links.push((caption, target));
                        }
                    }
                }
            }
            Block::Prose | Block::Section => {
                if let Some(kind) = trimmed
                    .strip_prefix("{{Infobox ")
                    .or_else(|| trimmed.strip_prefix("{{infobox "))
                {
                    fx.kind = Some(syms.intern(kind.trim().trim_end_matches('}').trim()));
                    self.state.block = Block::Infobox;
                    self.state.infobox_depth = 0;
                    self.state.section = None;
                } else if trimmed.starts_with("{|") {
                    self.state.block = Block::Table;
                    self.state.table_caption = None;
                    self.state.section = None;
                } else if let Some(title) = heading_title(trimmed) {
                    self.state.section = Some(syms.intern(title));
                    self.state.block = Block::Section;
                } else if self.state.block == Block::Section {
                    if let Some(rest) = trimmed.strip_prefix('*') {
                        let section = self.state.section.expect("Section block carries a name");
                        for target in scan_links_counted(rest, &mut issues) {
                            let target = syms.intern(target);
                            fx.links.push((section, target));
                        }
                    } else if !trimmed.is_empty() && !trimmed.starts_with('*') {
                        if !trimmed.starts_with("[[") && !trimmed.contains("[[") {
                            // pure prose: stay in section, bullets may resume
                        } else {
                            self.state.block = Block::Prose;
                            self.state.section = None;
                        }
                    }
                }
            }
        }
        fx.unterminated_links = issues.unterminated_links;
        fx
    }
}

/// End-of-input bookkeeping shared by the full interned parse and the
/// incremental splicer: a page ending inside a block counts it unclosed.
pub(crate) fn eof_issues(state: LineState, issues: &mut ParseIssues) {
    match state.block {
        Block::Infobox => issues.unclosed_infoboxes += 1,
        Block::Table => issues.unclosed_tables += 1,
        Block::Prose | Block::Section => {}
    }
}

/// [`parse_page_checked`] with interned output: identical structure and
/// issue counts, but links come back as [`Sym`] pairs against `syms`.
///
/// The differential property `parse_page_interned(t).resolve(syms) ==
/// parse_page(t)` holds for every input; proptests pin it.
pub fn parse_page_interned(text: &str, syms: &mut SymTable) -> (SymLinks, ParseIssues) {
    let mut issues = ParseIssues::default();
    let text = {
        let stripped = strip_comments_counted(text, &mut issues);
        strip_refs_counted(&stripped, &mut issues)
    };
    let mut page = SymLinks::new();

    if let Some(rest) = text.trim_start().strip_prefix("#REDIRECT") {
        if let Some(target) = scan_links_counted(rest, &mut issues).first() {
            page.redirect = Some(syms.intern(target));
        }
        return (page, issues);
    }

    let mut machine = LineMachine::new();
    for raw_line in text.lines() {
        let fx = machine.feed(raw_line, syms);
        issues.unterminated_links += fx.unterminated_links;
        if fx.kind.is_some() {
            page.infobox_kind = fx.kind;
        }
        for (rel, target) in fx.links {
            page.insert(rel, target);
        }
    }
    eof_issues(machine.state, &mut issues);
    (page, issues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{render_page, PageSpec, RelationLayout};

    #[test]
    fn scan_links_basic_and_piped() {
        assert_eq!(scan_links("[[A]] and [[B|bee]]"), vec!["A", "B"]);
        assert_eq!(scan_links("no links"), Vec::<&str>::new());
        assert_eq!(scan_links("[[  Padded  ]]"), vec!["Padded"]);
    }

    #[test]
    fn scan_links_malformed() {
        assert_eq!(scan_links("[[unterminated"), Vec::<&str>::new());
        assert_eq!(scan_links("[[]]"), Vec::<&str>::new(), "empty link skipped");
        assert_eq!(scan_links("]] stray [[X]]"), vec!["X"]);
    }

    #[test]
    fn strip_comments_variants() {
        assert_eq!(strip_comments("a<!-- b -->c"), "ac");
        assert_eq!(strip_comments("a<!-- unterminated"), "a");
        assert_eq!(strip_comments("plain"), "plain");
        assert_eq!(strip_comments("<!--x--><!--y-->z"), "z");
    }

    #[test]
    fn parses_infobox_fields() {
        let text =
            "{{Infobox football biography\n| name = Neymar\n| current_club = [[PSG F.C.]]\n}}\n";
        let page = parse_page(text);
        assert_eq!(page.infobox_kind.as_deref(), Some("football biography"));
        assert!(page.contains("current_club", "PSG F.C."));
        // `name = Neymar` has no link, so it contributes nothing.
        assert_eq!(page.len(), 1);
    }

    #[test]
    fn parses_multi_valued_infobox_field() {
        let text = "{{Infobox x\n| member_of = [[A]]<br>[[B]]\n}}\n";
        let page = parse_page(text);
        assert!(page.contains("member_of", "A"));
        assert!(page.contains("member_of", "B"));
    }

    #[test]
    fn parses_bullet_sections() {
        let text = "== squad ==\n* [[Neymar]]\n* [[Kylian Mbappe|Mbappe]]\n";
        let page = parse_page(text);
        assert!(page.contains("squad", "Neymar"));
        assert!(page.contains("squad", "Kylian Mbappe"));
    }

    #[test]
    fn parses_captioned_tables_and_skips_uncaptioned() {
        let text = "{| class=\"wikitable\"\n|+ squad\n! Name\n|-\n| [[Neymar]]\n|}\n\n{|\n|-\n| [[Hidden]]\n|}\n";
        let page = parse_page(text);
        assert!(page.contains("squad", "Neymar"));
        assert!(!page.links.iter().any(|(_, t)| t == "Hidden"));
    }

    #[test]
    fn prose_links_are_not_structured() {
        let text = "Some intro mentioning [[Unrelated Article]].\n";
        let page = parse_page(text);
        assert!(page.is_empty());
    }

    #[test]
    fn comments_hide_links() {
        let text = "== squad ==\n* <!-- [[Ghost]] --> [[Real]]\n";
        let page = parse_page(text);
        assert!(page.contains("squad", "Real"));
        assert!(!page.links.iter().any(|(_, t)| t == "Ghost"));
    }

    #[test]
    fn namespaced_links_are_skipped() {
        assert_eq!(
            scan_links("[[Category:Footballers]] [[Neymar]] [[File:pic.jpg]]"),
            vec!["Neymar"]
        );
    }

    #[test]
    fn refs_are_stripped() {
        assert_eq!(
            strip_refs("a<ref>see [[Source]]</ref>b<ref name=x />c"),
            "abc"
        );
        assert_eq!(strip_refs("a<ref>unterminated"), "a");
        assert_eq!(strip_refs("plain"), "plain");
    }

    #[test]
    fn ref_links_are_not_structured() {
        let text = "== squad ==\n* [[Real]]<ref>cited at [[Ghost Source]]</ref>\n";
        let page = parse_page(text);
        assert!(page.contains("squad", "Real"));
        assert_eq!(page.len(), 1);
    }

    #[test]
    fn redirect_pages_have_no_links() {
        let page = parse_page("#REDIRECT [[Neymar Jr.]]\n");
        assert_eq!(page.redirect.as_deref(), Some("Neymar Jr."));
        assert!(page.is_empty());
    }

    #[test]
    fn nested_templates_in_infobox_are_opaque() {
        let text = "{{Infobox club\n| ground = {{cite\n| url = [[Not A Field]]\n}}\n| in_league = [[Ligue 1]]\n}}\n";
        let page = parse_page(text);
        assert!(page.contains("in_league", "Ligue 1"));
        assert!(
            !page.links.iter().any(|(_, t)| t == "Not A Field"),
            "nested template params must not become infobox fields: {:?}",
            page.links
        );
    }

    #[test]
    fn inline_nested_template_in_value_is_fine() {
        let text =
            "{{Infobox club\n| capacity = {{formatnum:47929}} seats at [[Parc des Princes]]\n}}\n";
        let page = parse_page(text);
        assert!(page.contains("capacity", "Parc des Princes"));
    }

    #[test]
    fn heading_levels() {
        assert_eq!(heading_title("== squad =="), Some("squad"));
        assert_eq!(heading_title("=== seasons ==="), Some("seasons"));
        assert_eq!(heading_title("not a heading"), None);
        assert_eq!(heading_title("===="), None);
    }

    #[test]
    fn checked_parse_is_clean_on_well_formed_pages() {
        let text = "{{Infobox x\n| f = [[A]]\n}}\n== s ==\n* [[B]]\n";
        let (page, issues) = parse_page_checked(text);
        assert!(issues.is_clean(), "{issues:?}");
        assert_eq!(page, parse_page(text));
    }

    #[test]
    fn truncated_page_is_recovered_and_counted() {
        // Truncation mid-infobox: unterminated link + unclosed infobox.
        let text = "{{Infobox x\n| f = [[A]]\n| g = [[Trunc";
        let (page, issues) = parse_page_checked(text);
        assert!(page.contains("f", "A"), "prefix links survive truncation");
        assert_eq!(issues.unclosed_infoboxes, 1);
        assert_eq!(issues.unterminated_links, 1);
        assert!(!issues.is_clean());
    }

    #[test]
    fn garbled_markup_is_counted() {
        let (_, issues) = parse_page_checked("a<!-- chopped");
        assert_eq!(issues.unterminated_comments, 1);
        let (_, issues) = parse_page_checked("b<ref>chopped");
        assert_eq!(issues.unterminated_refs, 1);
        let (_, issues) = parse_page_checked("{| \n|+ cap\n| [[X]]\n");
        assert_eq!(issues.unclosed_tables, 1);
    }

    #[test]
    fn issues_absorb_and_total() {
        let (_, mut a) = parse_page_checked("{{Infobox x\n| f = [[A");
        let (_, b) = parse_page_checked("x<!-- chopped");
        a.absorb(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.unterminated_comments, 1);
    }

    #[test]
    fn full_round_trip() {
        let spec = PageSpec::new("PSG F.C.", "football club")
            .relation("in_league", RelationLayout::InfoboxField, vec!["Ligue 1"])
            .relation(
                "squad",
                RelationLayout::BulletSection,
                vec!["Neymar", "Kylian Mbappe"],
            )
            .relation("honours", RelationLayout::Table, vec!["Ligue 1 Trophy"])
            .prose("The club also has fans like [[Some Person]].");
        let text = render_page(&spec);
        let page = parse_page(&text);
        assert_eq!(page.infobox_kind.as_deref(), Some("football club"));
        assert!(page.contains("in_league", "Ligue 1"));
        assert!(page.contains("squad", "Neymar"));
        assert!(page.contains("squad", "Kylian Mbappe"));
        assert!(page.contains("honours", "Ligue 1 Trophy"));
        // The prose link must NOT appear.
        assert_eq!(page.len(), 4);
    }

    fn assert_interned_matches_frozen(text: &str) {
        let (frozen, frozen_issues) = parse_page_checked(text);
        let mut syms = SymTable::new();
        let (interned, interned_issues) = parse_page_interned(text, &mut syms);
        assert_eq!(interned.resolve(&syms), frozen, "links diverge on {text:?}");
        assert_eq!(interned_issues, frozen_issues, "issues diverge on {text:?}");
    }

    #[test]
    fn interned_parse_matches_frozen_on_fixtures() {
        let fixtures: &[&str] = &[
            "",
            "plain prose with [[Unstructured]] link\n",
            "{{Infobox football biography\n| name = Neymar\n| current_club = [[PSG F.C.]]\n}}\n",
            "== squad ==\n* [[Neymar]]\n* [[Kylian Mbappe|Mbappe]]\nprose [[exit]]\n* [[After]]\n",
            "{| class=\"wikitable\"\n|+ squad\n! [[Neymar]]\n|-\n| [[X]]\n|}\n",
            "{|\n| [[Uncaptioned]]\n|}\n",
            "#REDIRECT [[Neymar Jr.]]\n",
            "<!--c-->\n#REDIRECT [[Via Comment]]\n",
            "{{Infobox x\n| f = [[A]]\n| g = [[Trunc",
            "a<!-- chopped",
            "b<ref>chopped",
            "{{Infobox club\n| ground = {{cite\n| url = [[Not A Field]]\n}}\n| in_league = [[Ligue 1]]\n}}\n",
            "== s ==\n* <!-- [[Ghost]] --> [[Real]]<ref>see [[Src]]</ref>\n",
            "== a ==\n* [[X]]\n== b ==\n* [[X]]\n",
            "{{Infobox x\n| f = [[A]]\n}}\nmore\n{{Infobox y\n| f = [[B]]\n}}\n",
        ];
        for text in fixtures {
            assert_interned_matches_frozen(text);
        }
    }

    #[test]
    fn interned_parse_matches_frozen_on_rendered_page() {
        let spec = PageSpec::new("PSG F.C.", "football club")
            .relation("in_league", RelationLayout::InfoboxField, vec!["Ligue 1"])
            .relation("squad", RelationLayout::BulletSection, vec!["Neymar"])
            .relation("honours", RelationLayout::Table, vec!["Trophy"])
            .prose("Prose with [[Noise]].");
        assert_interned_matches_frozen(&render_page(&spec));
    }
}
