//! Diffing consecutive revisions into link edits.
//!
//! Wikipedia revision histories store full page text per revision; the link
//! *actions* the paper mines (Figure 1) are reconstructed by parsing two
//! consecutive snapshots and set-differencing their structured links.

use crate::ast::{EditOp, LinkEdit, PageLinks, SymEdit, SymLinks};
use crate::parse::parse_page;
use wiclean_types::SymTable;

/// Diffs two already-parsed link sets.
///
/// Returns removals first, then additions, each ordered — a deterministic
/// order downstream reduction relies on only for reproducibility (the paper
/// shows the relative order within a revision is immaterial).
pub fn diff_links(old: &PageLinks, new: &PageLinks) -> Vec<LinkEdit> {
    let mut edits = Vec::new();
    for (rel, target) in old.links.difference(&new.links) {
        edits.push(LinkEdit::new(EditOp::Remove, rel, target));
    }
    for (rel, target) in new.links.difference(&old.links) {
        edits.push(LinkEdit::new(EditOp::Add, rel, target));
    }
    edits
}

/// Diffs two interned link sets.
///
/// Edit order matches [`diff_links`] exactly: removals first, then
/// additions, each in lexicographic *string* order. Symbols order by
/// insertion index, so the (short) edit lists are sorted by their resolved
/// strings — this is what keeps the interned pipeline byte-identical to
/// the frozen one.
pub fn diff_sym_links(old: &SymLinks, new: &SymLinks, syms: &SymTable) -> Vec<SymEdit> {
    sort_sym_edits(
        old.links
            .difference(&new.links)
            .map(|&(rel, target)| SymEdit::new(EditOp::Remove, rel, target)),
        new.links
            .difference(&old.links)
            .map(|&(rel, target)| SymEdit::new(EditOp::Add, rel, target)),
        syms,
    )
}

/// Orders one revision's removals-then-additions by resolved strings, the
/// deterministic order the frozen `BTreeSet<(String, String)>` diff emits.
pub(crate) fn sort_sym_edits(
    removals: impl Iterator<Item = SymEdit>,
    additions: impl Iterator<Item = SymEdit>,
    syms: &SymTable,
) -> Vec<SymEdit> {
    let string_key = |e: &SymEdit| (syms.resolve(e.relation), syms.resolve(e.target));
    let mut removed: Vec<SymEdit> = removals.collect();
    removed.sort_by(|a, b| string_key(a).cmp(&string_key(b)));
    let mut added: Vec<SymEdit> = additions.collect();
    added.sort_by(|a, b| string_key(a).cmp(&string_key(b)));
    removed.extend(added);
    removed
}

/// Parses and diffs two consecutive wikitext snapshots.
pub fn diff_revisions(old_text: &str, new_text: &str) -> Vec<LinkEdit> {
    diff_links(&parse_page(old_text), &parse_page(new_text))
}

/// Applies a list of edits to a link set, panicking on inconsistent edits
/// (removing an absent link / adding a present one). Used by tests to state
/// the `diff ∘ apply = identity` property and by the generator to evolve
/// page state.
pub fn apply_edits(links: &mut PageLinks, edits: &[LinkEdit]) {
    for e in edits {
        match e.op {
            EditOp::Add => {
                let fresh = links.insert(&e.relation, &e.target);
                assert!(fresh, "adding already-present link {e}");
            }
            EditOp::Remove => {
                let existed = links.remove(&e.relation, &e.target);
                assert!(existed, "removing absent link {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links(pairs: &[(&str, &str)]) -> PageLinks {
        let mut p = PageLinks::new();
        for (r, t) in pairs {
            p.insert(r, t);
        }
        p
    }

    #[test]
    fn diff_detects_add_and_remove() {
        let old = links(&[("current_club", "Barcelona F.C.")]);
        let new = links(&[("current_club", "PSG F.C.")]);
        let edits = diff_links(&old, &new);
        assert_eq!(
            edits,
            vec![
                LinkEdit::new(EditOp::Remove, "current_club", "Barcelona F.C."),
                LinkEdit::new(EditOp::Add, "current_club", "PSG F.C."),
            ]
        );
    }

    #[test]
    fn diff_of_identical_pages_is_empty() {
        let p = links(&[("squad", "Neymar"), ("in_league", "Ligue 1")]);
        assert!(diff_links(&p, &p).is_empty());
    }

    #[test]
    fn diff_revisions_parses_text() {
        let old = "{{Infobox x\n| current_club = [[Barcelona F.C.]]\n}}\n";
        let new = "{{Infobox x\n| current_club = [[PSG F.C.]]\n}}\n";
        let edits = diff_revisions(old, new);
        assert_eq!(edits.len(), 2);
        assert!(edits.contains(&LinkEdit::new(EditOp::Add, "current_club", "PSG F.C.")));
    }

    #[test]
    fn apply_then_diff_is_identity() {
        let mut state = links(&[("squad", "A"), ("squad", "B")]);
        let target = links(&[("squad", "B"), ("squad", "C"), ("in_league", "L")]);
        let edits = diff_links(&state, &target);
        apply_edits(&mut state, &edits);
        assert_eq!(state, target);
        assert!(diff_links(&state, &target).is_empty());
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn apply_rejects_duplicate_add() {
        let mut state = links(&[("squad", "A")]);
        apply_edits(&mut state, &[LinkEdit::new(EditOp::Add, "squad", "A")]);
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn apply_rejects_phantom_remove() {
        let mut state = links(&[]);
        apply_edits(&mut state, &[LinkEdit::new(EditOp::Remove, "squad", "A")]);
    }

    #[test]
    fn sym_diff_matches_string_diff_order() {
        // Intern in an order that *disagrees* with lexicographic order, so
        // a sym-index sort would get the edit order wrong.
        let mut syms = SymTable::new();
        let rel = syms.intern("r");
        let (z, a, m) = (syms.intern("Z"), syms.intern("A"), syms.intern("M"));
        let mut old_s = SymLinks::new();
        old_s.insert(rel, z);
        old_s.insert(rel, a);
        let mut new_s = SymLinks::new();
        new_s.insert(rel, m);

        let sym_edits: Vec<LinkEdit> = diff_sym_links(&old_s, &new_s, &syms)
            .into_iter()
            .map(|e| e.resolve(&syms))
            .collect();
        let string_edits = diff_links(&old_s.resolve(&syms), &new_s.resolve(&syms));
        assert_eq!(sym_edits, string_edits);
        assert_eq!(
            sym_edits,
            vec![
                LinkEdit::new(EditOp::Remove, "r", "A"),
                LinkEdit::new(EditOp::Remove, "r", "Z"),
                LinkEdit::new(EditOp::Add, "r", "M"),
            ]
        );
    }

    #[test]
    fn removals_are_ordered_before_additions() {
        let old = links(&[("r", "X")]);
        let new = links(&[("r", "Y")]);
        let edits = diff_links(&old, &new);
        assert_eq!(edits[0].op, EditOp::Remove);
        assert_eq!(edits[1].op, EditOp::Add);
    }
}
