//! Structured view of a parsed page and of a link edit.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Whether an edit adds (`+`) or removes (`-`) a link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EditOp {
    /// A link was added.
    Add,
    /// A link was removed.
    Remove,
}

impl EditOp {
    /// The opposite operation; applying an action followed by its inverse
    /// leaves the page unchanged.
    pub fn inverse(self) -> Self {
        match self {
            Self::Add => Self::Remove,
            Self::Remove => Self::Add,
        }
    }

    /// The `+` / `-` sigil used in the paper's figures.
    pub fn sigil(self) -> char {
        match self {
            Self::Add => '+',
            Self::Remove => '-',
        }
    }
}

impl fmt::Debug for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Add => "Add",
            Self::Remove => "Remove",
        })
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sigil())
    }
}

/// The structured outgoing links of one page snapshot.
///
/// Each link is a `(relation, target)` pair; a page never records the same
/// pair twice (set semantics, matching the Wikipedia graph where parallel
/// identical edges cannot exist).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageLinks {
    /// The infobox template name (e.g. `football biography`), if present.
    pub infobox_kind: Option<String>,
    /// The structured `(relation, target)` link pairs, ordered.
    pub links: BTreeSet<(String, String)>,
    /// Redirect target if the page is a `#REDIRECT [[...]]` stub; redirect
    /// pages carry no structured links of their own.
    #[serde(default)]
    pub redirect: Option<String>,
}

impl PageLinks {
    /// Creates an empty link set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a link, returning whether it was new.
    pub fn insert(&mut self, relation: &str, target: &str) -> bool {
        self.links.insert((relation.to_owned(), target.to_owned()))
    }

    /// Whether the page links to `target` via `relation`.
    pub fn contains(&self, relation: &str, target: &str) -> bool {
        self.links
            .contains(&(relation.to_owned(), target.to_owned()))
    }

    /// Number of structured links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the page has no structured links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// One link edit derived by diffing two consecutive snapshots of a page.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkEdit {
    /// Add or remove.
    pub op: EditOp,
    /// The relation label (infobox field / section / table caption).
    pub relation: String,
    /// The linked page title.
    pub target: String,
}

impl LinkEdit {
    /// Convenience constructor.
    pub fn new(op: EditOp, relation: &str, target: &str) -> Self {
        Self {
            op,
            relation: relation.to_owned(),
            target: target.to_owned(),
        }
    }

    /// The inverse edit (same link, opposite operation).
    pub fn inverse(&self) -> Self {
        Self {
            op: self.op.inverse(),
            relation: self.relation.clone(),
            target: self.target.clone(),
        }
    }
}

impl fmt::Display for LinkEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}=[[{}]]", self.op, self.relation, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_inverse_is_involutive() {
        assert_eq!(EditOp::Add.inverse(), EditOp::Remove);
        assert_eq!(EditOp::Remove.inverse().inverse(), EditOp::Remove);
    }

    #[test]
    fn sigils() {
        assert_eq!(EditOp::Add.to_string(), "+");
        assert_eq!(EditOp::Remove.to_string(), "-");
    }

    #[test]
    fn page_links_set_semantics() {
        let mut p = PageLinks::new();
        assert!(p.insert("squad", "Neymar"));
        assert!(!p.insert("squad", "Neymar"), "duplicate insert is a no-op");
        assert!(p.contains("squad", "Neymar"));
        assert!(!p.contains("squad", "Mbappe"));
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn link_edit_inverse_and_display() {
        let e = LinkEdit::new(EditOp::Add, "current_club", "PSG F.C.");
        let inv = e.inverse();
        assert_eq!(inv.op, EditOp::Remove);
        assert_eq!(inv.relation, e.relation);
        assert_eq!(inv.inverse(), e);
        assert_eq!(e.to_string(), "+ current_club=[[PSG F.C.]]");
    }
}
