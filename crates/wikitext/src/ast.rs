//! Structured view of a parsed page and of a link edit.
//!
//! Two parallel representations coexist:
//!
//! * [`PageLinks`] / [`LinkEdit`] — owned `(String, String)` pairs, the
//!   original pipeline and the frozen reference the differential tests
//!   compare against;
//! * [`SymLinks`] / [`SymEdit`] — the same data as dense
//!   [`wiclean_types::Sym`] pairs from a page-local
//!   [`wiclean_types::SymTable`], used by the interned/incremental
//!   extraction path so diffing is integer-set difference.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use wiclean_types::{Sym, SymTable};

/// Whether an edit adds (`+`) or removes (`-`) a link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EditOp {
    /// A link was added.
    Add,
    /// A link was removed.
    Remove,
}

impl EditOp {
    /// The opposite operation; applying an action followed by its inverse
    /// leaves the page unchanged.
    pub fn inverse(self) -> Self {
        match self {
            Self::Add => Self::Remove,
            Self::Remove => Self::Add,
        }
    }

    /// The `+` / `-` sigil used in the paper's figures.
    pub fn sigil(self) -> char {
        match self {
            Self::Add => '+',
            Self::Remove => '-',
        }
    }
}

impl fmt::Debug for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Add => "Add",
            Self::Remove => "Remove",
        })
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sigil())
    }
}

/// The structured outgoing links of one page snapshot.
///
/// Each link is a `(relation, target)` pair; a page never records the same
/// pair twice (set semantics, matching the Wikipedia graph where parallel
/// identical edges cannot exist).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageLinks {
    /// The infobox template name (e.g. `football biography`), if present.
    pub infobox_kind: Option<String>,
    /// The structured `(relation, target)` link pairs, ordered.
    pub links: BTreeSet<(String, String)>,
    /// Redirect target if the page is a `#REDIRECT [[...]]` stub; redirect
    /// pages carry no structured links of their own.
    #[serde(default)]
    pub redirect: Option<String>,
}

/// Borrowed view of a `(relation, target)` link key. Lets the
/// `BTreeSet<(String, String)>` link set be queried and mutated with
/// `(&str, &str)` pairs — no owned-`String` key is built on lookups.
trait LinkKey {
    fn rel(&self) -> &str;
    fn target(&self) -> &str;
}

impl LinkKey for (String, String) {
    fn rel(&self) -> &str {
        &self.0
    }
    fn target(&self) -> &str {
        &self.1
    }
}

impl LinkKey for (&str, &str) {
    fn rel(&self) -> &str {
        self.0
    }
    fn target(&self) -> &str {
        self.1
    }
}

impl<'a> Borrow<dyn LinkKey + 'a> for (String, String) {
    fn borrow(&self) -> &(dyn LinkKey + 'a) {
        self
    }
}

impl PartialEq for dyn LinkKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.rel() == other.rel() && self.target() == other.target()
    }
}

impl Eq for dyn LinkKey + '_ {}

impl PartialOrd for dyn LinkKey + '_ {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for dyn LinkKey + '_ {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.rel(), self.target()).cmp(&(other.rel(), other.target()))
    }
}

impl PageLinks {
    /// Creates an empty link set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a link, returning whether it was new.
    pub fn insert(&mut self, relation: &str, target: &str) -> bool {
        self.links.insert((relation.to_owned(), target.to_owned()))
    }

    /// Whether the page links to `target` via `relation`.
    pub fn contains(&self, relation: &str, target: &str) -> bool {
        self.links
            .contains(&(relation, target) as &(dyn LinkKey + '_))
    }

    /// Removes a link, returning whether it was present.
    pub fn remove(&mut self, relation: &str, target: &str) -> bool {
        self.links
            .remove(&(relation, target) as &(dyn LinkKey + '_))
    }

    /// Number of structured links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the page has no structured links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// The structured outgoing links of one page snapshot, interned: the
/// [`SymLinks`]/[`PageLinks`] pair is related by resolving every symbol
/// through the page-local [`SymTable`] that produced it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymLinks {
    /// The infobox template name, if present.
    pub infobox_kind: Option<Sym>,
    /// The structured `(relation, target)` pairs. Ordered by *symbol
    /// index* (insertion order), not lexicographically — deterministic
    /// edit order is restored by [`crate::diff::diff_sym_links`].
    pub links: BTreeSet<(Sym, Sym)>,
    /// Redirect target for `#REDIRECT [[...]]` stubs.
    pub redirect: Option<Sym>,
}

impl SymLinks {
    /// Creates an empty link set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a link, returning whether it was new.
    pub fn insert(&mut self, relation: Sym, target: Sym) -> bool {
        self.links.insert((relation, target))
    }

    /// Whether the page links to `target` via `relation`.
    pub fn contains(&self, relation: Sym, target: Sym) -> bool {
        self.links.contains(&(relation, target))
    }

    /// Number of structured links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the page has no structured links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Resolves back to the owned-string representation (differential
    /// tests and the frozen-path comparison).
    pub fn resolve(&self, syms: &SymTable) -> PageLinks {
        let mut out = PageLinks::new();
        out.infobox_kind = self.infobox_kind.map(|s| syms.resolve(s).to_owned());
        out.redirect = self.redirect.map(|s| syms.resolve(s).to_owned());
        for &(rel, target) in &self.links {
            out.insert(syms.resolve(rel), syms.resolve(target));
        }
        out
    }
}

/// One link edit derived by diffing two consecutive snapshots of a page.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkEdit {
    /// Add or remove.
    pub op: EditOp,
    /// The relation label (infobox field / section / table caption).
    pub relation: String,
    /// The linked page title.
    pub target: String,
}

impl LinkEdit {
    /// Convenience constructor.
    pub fn new(op: EditOp, relation: &str, target: &str) -> Self {
        Self {
            op,
            relation: relation.to_owned(),
            target: target.to_owned(),
        }
    }

    /// The inverse edit (same link, opposite operation).
    pub fn inverse(&self) -> Self {
        Self {
            op: self.op.inverse(),
            relation: self.relation.clone(),
            target: self.target.clone(),
        }
    }
}

impl fmt::Display for LinkEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}=[[{}]]", self.op, self.relation, self.target)
    }
}

/// One link edit in interned form: 9 bytes of payload instead of two
/// heap-allocated strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymEdit {
    /// Add or remove.
    pub op: EditOp,
    /// The relation label symbol.
    pub relation: Sym,
    /// The linked page title symbol.
    pub target: Sym,
}

impl SymEdit {
    /// Convenience constructor.
    pub fn new(op: EditOp, relation: Sym, target: Sym) -> Self {
        Self {
            op,
            relation,
            target,
        }
    }

    /// The inverse edit (same link, opposite operation).
    pub fn inverse(self) -> Self {
        Self {
            op: self.op.inverse(),
            ..self
        }
    }

    /// Resolves to the owned-string representation.
    pub fn resolve(self, syms: &SymTable) -> LinkEdit {
        LinkEdit::new(
            self.op,
            syms.resolve(self.relation),
            syms.resolve(self.target),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_inverse_is_involutive() {
        assert_eq!(EditOp::Add.inverse(), EditOp::Remove);
        assert_eq!(EditOp::Remove.inverse().inverse(), EditOp::Remove);
    }

    #[test]
    fn sigils() {
        assert_eq!(EditOp::Add.to_string(), "+");
        assert_eq!(EditOp::Remove.to_string(), "-");
    }

    #[test]
    fn page_links_set_semantics() {
        let mut p = PageLinks::new();
        assert!(p.insert("squad", "Neymar"));
        assert!(!p.insert("squad", "Neymar"), "duplicate insert is a no-op");
        assert!(p.contains("squad", "Neymar"));
        assert!(!p.contains("squad", "Mbappe"));
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn remove_with_borrowed_key() {
        let mut p = PageLinks::new();
        p.insert("squad", "Neymar");
        assert!(p.remove("squad", "Neymar"));
        assert!(!p.remove("squad", "Neymar"), "second remove is a no-op");
        assert!(p.is_empty());
    }

    #[test]
    fn sym_links_mirror_page_links() {
        let mut syms = SymTable::new();
        let (r, a, b) = (syms.intern("squad"), syms.intern("A"), syms.intern("B"));
        let mut s = SymLinks::new();
        assert!(s.insert(r, a));
        assert!(!s.insert(r, a));
        assert!(s.insert(r, b));
        assert!(s.contains(r, a));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());

        let resolved = s.resolve(&syms);
        assert!(resolved.contains("squad", "A"));
        assert!(resolved.contains("squad", "B"));
        assert_eq!(resolved.len(), 2);
    }

    #[test]
    fn sym_edit_inverse_and_resolve() {
        let mut syms = SymTable::new();
        let e = SymEdit::new(EditOp::Add, syms.intern("squad"), syms.intern("Neymar"));
        assert_eq!(e.inverse().op, EditOp::Remove);
        assert_eq!(e.inverse().inverse(), e);
        assert_eq!(
            e.resolve(&syms),
            LinkEdit::new(EditOp::Add, "squad", "Neymar")
        );
    }

    #[test]
    fn link_edit_inverse_and_display() {
        let e = LinkEdit::new(EditOp::Add, "current_club", "PSG F.C.");
        let inv = e.inverse();
        assert_eq!(inv.op, EditOp::Remove);
        assert_eq!(inv.relation, e.relation);
        assert_eq!(inv.inverse(), e);
        assert_eq!(e.to_string(), "+ current_club=[[PSG F.C.]]");
    }
}
