//! A miniature wikitext substrate for WiClean.
//!
//! The paper had to *crawl and parse* Wikipedia pages because Wikipedia had
//! no convincing API for its revision logs — preprocessing revision
//! histories dominates the running time in every experiment (Figure 4's
//! stacked bars). To reproduce that code path rather than stub it, WiClean
//! stores every revision as a full wikitext page snapshot and re-derives
//! link edits by parsing and diffing consecutive snapshots, exactly like a
//! crawler over `action=history` exports would.
//!
//! The dialect implemented here covers the *structured* parts of a page the
//! paper mines (infoboxes and tables):
//!
//! * `{{Infobox <type>}}` templates with `| field = value` parameters whose
//!   values may contain one or more `[[links]]`;
//! * section headings (`== squad ==`) followed by `*` bullet lists of links
//!   (how list-valued relations such as a club's squad are laid out);
//! * wikitables (`{| ... |}`) with a `|+ relation` caption, an alternative
//!   layout for list-valued relations;
//! * piped links `[[Target|display text]]`, HTML comments, and free prose
//!   with embedded links (prose links are *not* structured data and are
//!   deliberately excluded from extraction, mirroring the paper's focus).
//!
//! [`parse::parse_page`] extracts a [`ast::PageLinks`] from a snapshot, and
//! [`diff::diff_revisions`] turns two consecutive snapshots into the set of
//! link [`ast::LinkEdit`]s between them.

pub mod ast;
pub mod diff;
pub mod incr;
pub mod parse;
pub mod render;

pub use ast::{EditOp, LinkEdit, PageLinks, SymEdit, SymLinks};
pub use diff::{diff_revisions, diff_sym_links};
pub use incr::{IncrementalParser, StepOutcome, StepPath};
pub use parse::{parse_page, parse_page_checked, parse_page_interned, ParseIssues};
pub use render::{render_page, PageSpec, RelationLayout};
