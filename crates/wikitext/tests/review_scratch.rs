use wiclean_types::SymTable;
use wiclean_wikitext::diff::diff_links;
use wiclean_wikitext::{parse_page_checked, IncrementalParser, PageLinks};

fn check(history: &[&str]) {
    let mut syms = SymTable::new();
    let mut incr = IncrementalParser::new();
    let mut prev = PageLinks::new();
    for (i, text) in history.iter().enumerate() {
        let (frozen_page, frozen_issues) = parse_page_checked(text);
        let frozen_edits = diff_links(&prev, &frozen_page);
        let out = incr.advance(text, &mut syms);
        let got: Vec<_> = out.edits.iter().map(|e| e.resolve(&syms)).collect();
        assert_eq!(got, frozen_edits, "edits diverge at rev {i}");
        assert_eq!(out.issues, frozen_issues, "issues diverge at rev {i}");
        prev = frozen_page;
    }
}

#[test]
fn swar_newline_vt_adjacency() {
    // '\n' immediately followed by 0x0B inside an 8-byte chunk
    let r1 = "aaaaaa\n\u{b}bbbbbb\ncccccc\n== s ==\n* [[A]]\n";
    let r2 = "aaaaaa\n\u{b}bbbbbb\ncccccc\n== s ==\n* [[B]]\n";
    check(&[r1, r2]);
}

#[test]
fn redirect_synthesized_by_comment_stripping() {
    check(&[
        "== s ==\n* [[A]]\n",
        "#RED<!--x-->IRECT [[T]]\n{{Infobox a\n| f = [[B]]\n}}\n",
    ]);
}
