//! Property-based tests for the wikitext substrate.

use proptest::prelude::*;
use std::collections::BTreeSet;
use wiclean_wikitext::render::render_links;
use wiclean_wikitext::{diff::apply_edits, diff::diff_links, parse_page, PageLinks};

/// Names that are safe as page titles / relation labels in our dialect:
/// no wikitext metacharacters, no leading/trailing whitespace.
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9 _.]{0,18}[A-Za-z0-9]".prop_map(|s| s.trim().to_owned())
}

fn links_strategy() -> impl Strategy<Value = PageLinks> {
    proptest::collection::btree_set((name_strategy(), name_strategy()), 0..12).prop_map(|set| {
        let mut p = PageLinks::new();
        p.links = set.into_iter().collect::<BTreeSet<(String, String)>>();
        p
    })
}

proptest! {
    /// render → parse recovers exactly the structured links.
    #[test]
    fn render_parse_round_trip(links in links_strategy()) {
        let text = render_links("Test Page", "thing", &links);
        let parsed = parse_page(&text);
        prop_assert_eq!(parsed.links, links.links);
    }

    /// Diffing a page against itself yields no edits.
    #[test]
    fn self_diff_is_empty(links in links_strategy()) {
        prop_assert!(diff_links(&links, &links).is_empty());
    }

    /// Applying the diff of (old → new) to old yields new.
    #[test]
    fn diff_apply_identity(old in links_strategy(), new in links_strategy()) {
        let edits = diff_links(&old, &new);
        let mut state = old.clone();
        apply_edits(&mut state, &edits);
        prop_assert_eq!(state.links, new.links);
    }

    /// The diff is minimal: |edits| = |symmetric difference|.
    #[test]
    fn diff_is_minimal(old in links_strategy(), new in links_strategy()) {
        let edits = diff_links(&old, &new);
        let sym: usize = old.links.symmetric_difference(&new.links).count();
        prop_assert_eq!(edits.len(), sym);
    }

    /// Reversing the diff direction inverts every edit.
    #[test]
    fn reverse_diff_is_inverse(old in links_strategy(), new in links_strategy()) {
        let fwd: BTreeSet<_> = diff_links(&old, &new).into_iter().collect();
        let bwd: BTreeSet<_> = diff_links(&new, &old)
            .into_iter()
            .map(|e| e.inverse())
            .collect();
        prop_assert_eq!(fwd, bwd);
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn parse_total_on_arbitrary_text(text in ".{0,400}") {
        let _ = parse_page(&text);
    }

    /// Parsing is idempotent w.r.t. re-rendering: render(parse(render(x)))
    /// equals render(x) modulo structured links.
    #[test]
    fn reparse_stability(links in links_strategy()) {
        let text = render_links("Page", "thing", &links);
        let once = parse_page(&text);
        let text2 = render_links("Page", "thing", &once);
        let twice = parse_page(&text2);
        prop_assert_eq!(once.links, twice.links);
    }
}
