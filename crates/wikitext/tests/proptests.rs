//! Property-based tests for the wikitext substrate.

use proptest::prelude::*;
use std::collections::BTreeSet;
use wiclean_types::SymTable;
use wiclean_wikitext::render::render_links;
use wiclean_wikitext::{
    diff::apply_edits, diff::diff_links, parse_page, parse_page_checked, parse_page_interned,
    IncrementalParser, PageLinks,
};

/// Names that are safe as page titles / relation labels in our dialect:
/// no wikitext metacharacters, no leading/trailing whitespace.
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9 _.]{0,18}[A-Za-z0-9]".prop_map(|s| s.trim().to_owned())
}

fn links_strategy() -> impl Strategy<Value = PageLinks> {
    proptest::collection::btree_set((name_strategy(), name_strategy()), 0..12).prop_map(|set| {
        let mut p = PageLinks::new();
        p.links = set.into_iter().collect::<BTreeSet<(String, String)>>();
        p
    })
}

/// Adversarial-but-representable names: unicode letters and digits mixed
/// with punctuation our dialect can carry inside `[[...]]` and labels —
/// everything except wikitext metacharacters (`[ ] | = { } < >`), the `:`
/// of namespace prefixes, and leading/trailing whitespace (the link
/// scanner trims those; a separate property covers padding).
fn adversarial_name() -> impl Strategy<Value = String> {
    "[\\pL\\pN][\\pL\\pN .,'()\\-_]{0,14}[\\pL\\pN]".prop_map(|s| s)
}

fn adversarial_links_strategy() -> impl Strategy<Value = PageLinks> {
    proptest::collection::btree_set((adversarial_name(), adversarial_name()), 1..8).prop_map(
        |set| {
            let mut p = PageLinks::new();
            p.links = set.into_iter().collect::<BTreeSet<(String, String)>>();
            p
        },
    )
}

/// One revision of a random page history: mostly well-formed rendered
/// pages (so the splice path engages), with redirect stubs, arbitrary
/// garbage, and mid-byte truncations mixed in.
fn revision_text_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        6 => links_strategy().prop_map(|l| render_links("Test Page", "thing", &l)),
        1 => name_strategy().prop_map(|t| format!("#REDIRECT [[{t}]]\n")),
        1 => ".{0,200}",
        2 => (links_strategy(), 0usize..400).prop_map(|(l, cut)| {
            let text = render_links("Test Page", "thing", &l);
            let mut cut = cut.min(text.len());
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_owned()
        }),
    ]
}

/// Asserts the incremental parser tracks the frozen parse+diff oracle at
/// every revision of `history`.
fn assert_incremental_matches_frozen(history: &[String]) -> Result<(), TestCaseError> {
    let mut syms = SymTable::new();
    let mut incr = IncrementalParser::new();
    let mut prev = PageLinks::new();
    for (i, text) in history.iter().enumerate() {
        let (frozen_page, frozen_issues) = parse_page_checked(text);
        let frozen_edits = diff_links(&prev, &frozen_page);

        let out = incr.advance(text, &mut syms);
        let got_edits: Vec<_> = out.edits.iter().map(|e| e.resolve(&syms)).collect();
        prop_assert_eq!(got_edits, frozen_edits, "edits diverge at rev {}", i);
        prop_assert_eq!(out.issues, frozen_issues, "issues diverge at rev {}", i);
        prop_assert_eq!(
            incr.current_links().resolve(&syms),
            frozen_page.clone(),
            "state diverges at rev {}",
            i
        );
        prev = frozen_page;
    }
    Ok(())
}

proptest! {
    /// render → parse recovers exactly the structured links.
    #[test]
    fn render_parse_round_trip(links in links_strategy()) {
        let text = render_links("Test Page", "thing", &links);
        let parsed = parse_page(&text);
        prop_assert_eq!(parsed.links, links.links);
    }

    /// Diffing a page against itself yields no edits.
    #[test]
    fn self_diff_is_empty(links in links_strategy()) {
        prop_assert!(diff_links(&links, &links).is_empty());
    }

    /// Applying the diff of (old → new) to old yields new.
    #[test]
    fn diff_apply_identity(old in links_strategy(), new in links_strategy()) {
        let edits = diff_links(&old, &new);
        let mut state = old.clone();
        apply_edits(&mut state, &edits);
        prop_assert_eq!(state.links, new.links);
    }

    /// The diff is minimal: |edits| = |symmetric difference|.
    #[test]
    fn diff_is_minimal(old in links_strategy(), new in links_strategy()) {
        let edits = diff_links(&old, &new);
        let sym: usize = old.links.symmetric_difference(&new.links).count();
        prop_assert_eq!(edits.len(), sym);
    }

    /// Reversing the diff direction inverts every edit.
    #[test]
    fn reverse_diff_is_inverse(old in links_strategy(), new in links_strategy()) {
        let fwd: BTreeSet<_> = diff_links(&old, &new).into_iter().collect();
        let bwd: BTreeSet<_> = diff_links(&new, &old)
            .into_iter()
            .map(|e| e.inverse())
            .collect();
        prop_assert_eq!(fwd, bwd);
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn parse_total_on_arbitrary_text(text in ".{0,400}") {
        let _ = parse_page(&text);
    }

    /// Parsing is idempotent w.r.t. re-rendering: render(parse(render(x)))
    /// equals render(x) modulo structured links.
    #[test]
    fn reparse_stability(links in links_strategy()) {
        let text = render_links("Page", "thing", &links);
        let once = parse_page(&text);
        let text2 = render_links("Page", "thing", &once);
        let twice = parse_page(&text2);
        prop_assert_eq!(once.links, twice.links);
    }

    /// The interned parser agrees with the frozen parser on arbitrary
    /// input — links, infobox kind, redirect, and issue counts.
    #[test]
    fn interned_parse_matches_frozen(text in ".{0,400}") {
        let (frozen, frozen_issues) = parse_page_checked(&text);
        let mut syms = SymTable::new();
        let (interned, issues) = parse_page_interned(&text, &mut syms);
        prop_assert_eq!(interned.resolve(&syms), frozen);
        prop_assert_eq!(issues, frozen_issues);
    }

    /// parse(render(links)) == links over adversarial titles (unicode,
    /// punctuation, internal whitespace) — for the frozen, interned, and
    /// incremental parsers alike.
    #[test]
    fn adversarial_round_trip_all_parsers(links in adversarial_links_strategy()) {
        let text = render_links("Tëst Pagé", "thing", &links);

        let parsed = parse_page(&text);
        prop_assert_eq!(&parsed.links, &links.links, "frozen parser");

        let mut syms = SymTable::new();
        let (interned, _) = parse_page_interned(&text, &mut syms);
        prop_assert_eq!(interned.resolve(&syms).links, links.links.clone(), "interned parser");

        let mut inc_syms = SymTable::new();
        let mut incr = IncrementalParser::new();
        incr.advance(&text, &mut inc_syms);
        prop_assert_eq!(
            incr.current_links().resolve(&inc_syms).links,
            links.links,
            "incremental parser"
        );
    }

    /// Titles padded with leading/trailing whitespace inside `[[ ... ]]`
    /// parse back trimmed, identically across parsers.
    #[test]
    fn padded_titles_parse_trimmed(
        title in adversarial_name(),
        pad_l in " {0,3}",
        pad_r in " {0,3}",
    ) {
        let text = format!("== squad ==\n* [[{pad_l}{title}{pad_r}]]\n");
        let parsed = parse_page(&text);
        prop_assert!(parsed.contains("squad", &title));

        let mut syms = SymTable::new();
        let (interned, _) = parse_page_interned(&text, &mut syms);
        prop_assert_eq!(interned.resolve(&syms), parsed);
    }

    /// The tentpole differential: over random histories — well-formed,
    /// truncated, garbled, and redirect revisions interleaved — the
    /// incremental parser's per-revision edits, issues, and link state are
    /// byte-identical to full-reparse-and-diff at every step.
    #[test]
    fn incremental_matches_frozen_over_histories(
        history in proptest::collection::vec(revision_text_strategy(), 1..8)
    ) {
        assert_incremental_matches_frozen(&history)?;
    }

    /// Same differential over *small-edit* histories: a base page whose
    /// revisions each change one relation's targets, so the splice path
    /// (not the rebuild path) is what's being exercised.
    #[test]
    fn incremental_matches_frozen_under_small_edits(
        base in links_strategy(),
        edits in proptest::collection::vec((name_strategy(), name_strategy()), 1..6)
    ) {
        let mut state = base;
        let mut history = vec![render_links("Test Page", "thing", &state)];
        for (rel, target) in edits {
            if !state.insert(&rel, &target) {
                state.remove(&rel, &target);
            }
            history.push(render_links("Test Page", "thing", &state));
        }
        assert_incremental_matches_frozen(&history)?;
    }
}
