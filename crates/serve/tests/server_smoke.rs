//! End-to-end server behavior: liveness, hostile input, panic-proofing,
//! admin reload (including rejection paths), stats consistency, and wire
//! shutdown.

mod common;

use common::soccer_world;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use wiclean_serve::{
    serve, IndexLimits, PatternIndex, PatternSet, ReloadFn, ServeConfig, SuggestClient,
};

fn build(fx: &common::Fixture, conf: f64, limits: IndexLimits) -> Result<PatternIndex, String> {
    let set = PatternSet::single_window(fx.player_ty, fx.window, &[(fx.pair_working(), conf)]);
    PatternIndex::build(&fx.store, &fx.universe, &fx.config(), &set, limits)
        .map_err(|e| e.to_string())
}

#[test]
fn serves_suggestions_and_survives_hostile_input() {
    let fx = soccer_world();
    let index = build(&fx, 0.8, IndexLimits::default()).unwrap();
    let mut handle = serve(
        ServeConfig::default(),
        Arc::new(fx.universe.clone()),
        index,
        None,
    )
    .unwrap();
    let mut client = SuggestClient::connect(handle.addr()).unwrap();

    // Liveness.
    let pong = client.send(r#"{"op":"ping"}"#).unwrap();
    assert_eq!(pong.get("ack").and_then(|a| a.as_str()), Some("pong"));

    // A real suggestion, with and without a narrowing signature.
    let entity = fx.universe.entity_name(fx.partial_player);
    let v = client.suggest(entity, None).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
    let n = v
        .get("suggestions")
        .and_then(|s| s.as_array())
        .unwrap()
        .len();
    assert!(n > 0, "partial player has a suggestion");
    let v = client
        .suggest(entity, Some(("add", "current_club")))
        .unwrap();
    assert_eq!(
        v.get("suggestions")
            .and_then(|s| s.as_array())
            .unwrap()
            .len(),
        n,
        "matching signature keeps the suggestions"
    );
    // A signature the pattern set has no action for filters everything.
    let v = client
        .suggest(entity, Some(("remove", "current_club")))
        .unwrap();
    assert_eq!(
        v.get("suggestions")
            .and_then(|s| s.as_array())
            .unwrap()
            .len(),
        0
    );
    // An unknown entity is an empty answer, not an error.
    let v = client.suggest("No Such Page", None).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
    assert_eq!(
        v.get("suggestions")
            .and_then(|s| s.as_array())
            .unwrap()
            .len(),
        0
    );

    // Hostile input: garbage bytes, wrong shapes, unknown relations — each
    // gets an error response on the same live connection.
    for bad in [
        "garbage",
        r#"{"op":42}"#,
        r#"{"op":"suggest"}"#,
        r#"{"op":"nope"}"#,
        r#"{"op":"suggest","entity":"E","sig":{"edit":"add","rel":"no_such_rel"}}"#,
    ] {
        let v = client.send(bad).unwrap();
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false), "{bad}");
        assert!(v.get("error").and_then(|e| e.as_str()).is_some());
    }
    // ...and the connection still serves afterwards.
    let v = client.suggest(entity, None).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));

    let errors = handle.stats().errors.load(Ordering::Relaxed);
    assert_eq!(errors, 5, "each hostile line counted once");
    handle.shutdown();
}

#[test]
fn panics_become_error_responses_not_dead_workers() {
    let fx = soccer_world();
    let index = build(&fx, 0.8, IndexLimits::default()).unwrap();
    let mut handle = serve(
        ServeConfig {
            enable_debug_ops: true,
            max_connections: 1, // the sole handler thread must survive
            ..ServeConfig::default()
        },
        Arc::new(fx.universe.clone()),
        index,
        None,
    )
    .unwrap();
    let mut client = SuggestClient::connect(handle.addr()).unwrap();
    let v = client.send(r#"{"op":"panic"}"#).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    assert!(v
        .get("error")
        .and_then(|e| e.as_str())
        .unwrap()
        .contains("panicked"));
    // The same connection's handler thread keeps serving.
    let v = client
        .suggest(fx.universe.entity_name(fx.partial_player), None)
        .unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
    assert_eq!(handle.stats().panics_caught.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn debug_ops_rejected_unless_enabled() {
    let fx = soccer_world();
    let index = build(&fx, 0.8, IndexLimits::default()).unwrap();
    let mut handle = serve(
        ServeConfig::default(),
        Arc::new(fx.universe.clone()),
        index,
        None,
    )
    .unwrap();
    let mut client = SuggestClient::connect(handle.addr()).unwrap();
    let v = client.send(r#"{"op":"panic"}"#).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    assert_eq!(handle.stats().panics_caught.load(Ordering::Relaxed), 0);
    handle.shutdown();
}

#[test]
fn reload_swaps_and_rejections_keep_previous_index() {
    let fx = soccer_world();
    let index = build(&fx, 0.8, IndexLimits::default()).unwrap();
    // The reload closure: spec "v2" → a rebuilt index with new confidence;
    // spec "too-big" → an index build that exceeds a 1-entity interner
    // limit, i.e. the InternerFull path surfaced through reload; anything
    // else → a loader error.
    let fx2 = soccer_world();
    let reload: ReloadFn = Box::new(move |spec| match spec {
        Some("v2") => build(&fx2, 0.5, IndexLimits::default()),
        Some("too-big") => build(
            &fx2,
            0.5,
            IndexLimits {
                max_entities: 1,
                ..IndexLimits::default()
            },
        ),
        other => Err(format!("unknown spec {other:?}")),
    });
    let mut handle = serve(
        ServeConfig::default(),
        Arc::new(fx.universe.clone()),
        index,
        Some(reload),
    )
    .unwrap();
    let mut client = SuggestClient::connect(handle.addr()).unwrap();
    let entity = fx.universe.entity_name(fx.partial_player);

    let before = client.suggest(entity, None).unwrap();
    assert_eq!(before.get("epoch").and_then(|e| e.as_u64()), Some(1));

    // A good reload hot-swaps: epoch bumps, answers change.
    let v = client.reload(Some("v2")).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{v:?}");
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(2));
    let after = client.suggest(entity, None).unwrap();
    assert_eq!(after.get("epoch").and_then(|e| e.as_u64()), Some(2));
    assert_ne!(
        before.get("suggestions"),
        after.get("suggestions"),
        "new generation answers differently"
    );

    // An oversized pattern set is *rejected*: the error names the interner
    // capacity and epoch 2 keeps serving.
    let v = client.reload(Some("too-big")).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    assert!(v
        .get("error")
        .and_then(|e| e.as_str())
        .unwrap()
        .contains("interner full"));
    // A loader failure is also a rejection.
    let v = client.reload(None).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    let still = client.suggest(entity, None).unwrap();
    assert_eq!(still.get("epoch").and_then(|e| e.as_u64()), Some(2));
    assert_eq!(still.get("suggestions"), after.get("suggestions"));

    assert_eq!(handle.stats().swaps.load(Ordering::Relaxed), 1);
    assert_eq!(handle.stats().reloads_rejected.load(Ordering::Relaxed), 2);
    handle.shutdown();
}

#[test]
fn reload_without_loader_is_rejected() {
    let fx = soccer_world();
    let index = build(&fx, 0.8, IndexLimits::default()).unwrap();
    let mut handle = serve(
        ServeConfig::default(),
        Arc::new(fx.universe.clone()),
        index,
        None,
    )
    .unwrap();
    let mut client = SuggestClient::connect(handle.addr()).unwrap();
    let v = client.reload(None).unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    assert!(v
        .get("error")
        .and_then(|e| e.as_str())
        .unwrap()
        .contains("not configured"));
    handle.shutdown();
}

#[test]
fn stats_report_counters_and_latency_percentiles() {
    let fx = soccer_world();
    let index = build(&fx, 0.8, IndexLimits::default()).unwrap();
    let mut handle = serve(
        ServeConfig::default(),
        Arc::new(fx.universe.clone()),
        index,
        None,
    )
    .unwrap();
    let mut client = SuggestClient::connect(handle.addr()).unwrap();
    let entity = fx.universe.entity_name(fx.partial_player);
    for _ in 0..10 {
        client.suggest(entity, None).unwrap();
    }
    client.send("not json").unwrap();
    let v = client.stats().unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
    let serve_stats = v.get("serve").expect("serve section");
    assert_eq!(
        serve_stats.get("suggest_requests").and_then(|x| x.as_u64()),
        Some(10)
    );
    assert_eq!(serve_stats.get("errors").and_then(|x| x.as_u64()), Some(1));
    assert!(
        serve_stats
            .get("suggest_p99_us")
            .and_then(|x| x.as_f64())
            .is_some(),
        "latency histogram populated"
    );
    let index_stats = v.get("index").expect("index section");
    assert_eq!(
        index_stats.get("patterns").and_then(|x| x.as_u64()),
        Some(1)
    );
    assert!(
        index_stats
            .get("suggestions")
            .and_then(|x| x.as_u64())
            .unwrap()
            > 0
    );
    handle.shutdown();
}

#[test]
fn wire_shutdown_stops_the_server() {
    let fx = soccer_world();
    let index = build(&fx, 0.8, IndexLimits::default()).unwrap();
    let mut handle = serve(
        ServeConfig::default(),
        Arc::new(fx.universe.clone()),
        index,
        None,
    )
    .unwrap();
    let mut client = SuggestClient::connect(handle.addr()).unwrap();
    let v = client.shutdown().unwrap();
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
    // The server winds down on its own; wait() must return.
    handle.wait();
}

#[test]
fn oversized_pattern_set_is_a_typed_build_error() {
    let fx = soccer_world();
    let err = build(
        &fx,
        0.8,
        IndexLimits {
            max_entities: 1,
            ..IndexLimits::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("interner full"), "{err}");
    let err = build(
        &fx,
        0.8,
        IndexLimits {
            max_patterns: 0,
            ..IndexLimits::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("interner full"), "{err}");
}
