//! Shared fixture for the serve integration tests.
//!
//! Mirrors the core crate's scripted soccer fixture (which is private to
//! its unit tests): five players and four clubs, four coordinated
//! transfers inside the window, and a fifth player whose transfer is
//! partial — the club page never reciprocated — giving Algorithm 3 a
//! flagged suggestion to serve.

use wiclean_core::abstract_action::AbstractAction;
use wiclean_core::config::MinerConfig;
use wiclean_core::pattern::WorkingPattern;
use wiclean_core::var::Var;
use wiclean_revstore::RevisionStore;
use wiclean_types::{EntityId, TypeId, Universe, Window};
use wiclean_wikitext::render::render_links;
use wiclean_wikitext::{EditOp, PageLinks};

/// The assembled world.
pub struct Fixture {
    pub universe: Universe,
    pub store: RevisionStore,
    pub window: Window,
    pub player_ty: TypeId,
    #[allow(dead_code)]
    pub club_ty: TypeId,
    pub players: Vec<EntityId>,
    #[allow(dead_code)]
    pub clubs: Vec<EntityId>,
    /// The player whose transfer is partial.
    pub partial_player: EntityId,
}

impl Fixture {
    pub fn config(&self) -> MinerConfig {
        MinerConfig {
            tau: 0.8,
            tau_rel: 0.5,
            max_pattern_actions: 4,
            max_abstraction_height: 1,
            max_vars_per_type: 2,
            ..MinerConfig::default()
        }
    }

    /// The planted transfer pattern in working form.
    pub fn pair_working(&self) -> WorkingPattern {
        let cc = self.universe.lookup_relation("current_club").unwrap();
        let squad = self.universe.lookup_relation("squad").unwrap();
        let p = Var::new(self.player_ty, 0);
        let c = Var::new(self.club_ty, 0);
        WorkingPattern::from_actions(vec![
            AbstractAction::new(EditOp::Add, p, cc, c),
            AbstractAction::new(EditOp::Add, c, squad, p),
        ])
    }

    /// A second, single-action pattern (player adds a club link) so swap
    /// tests have a distinguishable pattern set.
    #[allow(dead_code)] // each test binary uses its own subset
    pub fn single_working(&self) -> WorkingPattern {
        let cc = self.universe.lookup_relation("current_club").unwrap();
        let p = Var::new(self.player_ty, 0);
        let c = Var::new(self.club_ty, 0);
        WorkingPattern::from_actions(vec![AbstractAction::new(EditOp::Add, p, cc, c)])
    }

    /// Every entity name in the world (serve lookups are by name).
    #[allow(dead_code)]
    pub fn all_names(&self) -> Vec<String> {
        self.players
            .iter()
            .chain(self.clubs.iter())
            .map(|&e| self.universe.entity_name(e).to_string())
            .collect()
    }
}

fn snap(
    store: &mut RevisionStore,
    u: &Universe,
    e: EntityId,
    time: u64,
    links: &PageLinks,
    kind: &str,
) {
    let text = render_links(u.entity_name(e), kind, links);
    store.record(e, time, text);
}

/// Builds the world described in the module docs.
pub fn soccer_world() -> Fixture {
    let mut u = Universe::new("Thing");
    let root = u.taxonomy().root();
    let agent = u.taxonomy_mut().add("Agent", root).unwrap();
    let person = u.taxonomy_mut().add("Person", agent).unwrap();
    let athlete = u.taxonomy_mut().add("Athlete", person).unwrap();
    let player_ty = u.taxonomy_mut().add("SoccerPlayer", athlete).unwrap();
    let org = u.taxonomy_mut().add("Organisation", agent).unwrap();
    let team = u.taxonomy_mut().add("SportsTeam", org).unwrap();
    let club_ty = u.taxonomy_mut().add("SoccerClub", team).unwrap();

    u.relation("current_club");
    u.relation("squad");

    let players: Vec<EntityId> = (0..5)
        .map(|i| u.add_entity(&format!("Player {i}"), player_ty).unwrap())
        .collect();
    let clubs: Vec<EntityId> = (0..4)
        .map(|i| u.add_entity(&format!("Club {i}"), club_ty).unwrap())
        .collect();

    let mut store = RevisionStore::new();
    let window = Window::new(10, 1000);

    let mut player_state: Vec<PageLinks> = (0..5).map(|_| PageLinks::new()).collect();
    let mut club_state: Vec<PageLinks> = (0..4).map(|_| PageLinks::new()).collect();
    for (i, &p) in players.iter().enumerate() {
        snap(&mut store, &u, p, 1, &player_state[i], "football biography");
    }
    for (i, &c) in clubs.iter().enumerate() {
        snap(&mut store, &u, c, 1, &club_state[i], "football club");
    }

    let mut t = 20;
    for i in 0..4 {
        let club_ix = i % 4;
        let club_name = u.entity_name(clubs[club_ix]).to_owned();
        let player_name = u.entity_name(players[i]).to_owned();
        player_state[i].insert("current_club", &club_name);
        snap(
            &mut store,
            &u,
            players[i],
            t,
            &player_state[i],
            "football biography",
        );
        club_state[club_ix].insert("squad", &player_name);
        snap(
            &mut store,
            &u,
            clubs[club_ix],
            t + 3,
            &club_state[club_ix],
            "football club",
        );
        t += 10;
    }

    // The fifth transfer is partial: only the player page edited.
    let club_name = u.entity_name(clubs[3]).to_owned();
    player_state[4].insert("current_club", &club_name);
    snap(
        &mut store,
        &u,
        players[4],
        t,
        &player_state[4],
        "football biography",
    );

    Fixture {
        partial_player: players[4],
        universe: u,
        store,
        window,
        player_ty,
        club_ty,
        players,
        clubs,
    }
}
