//! Differential tests: the served suggestion path must agree, suggestion
//! for suggestion and in order, with the batch Algorithm-3 path
//! (`wiclean_core::assist::suggest_completions`) — including across a
//! mid-stream hot swap, where every wire response is attributable to
//! exactly one index epoch and none are dropped.

mod common;

use common::soccer_world;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use wiclean_core::assist::suggest_completions;
use wiclean_core::config::StreamPolicy;
use wiclean_core::pattern::WorkingPattern;
use wiclean_core::stream::{wc_result_from_sealed, StreamConfig, StreamMiner};
use wiclean_revstore::FeedEvent;
use wiclean_serve::{serve, IndexLimits, PatternIndex, PatternSet, ServeConfig, SuggestClient};
use wiclean_types::{EntityId, Window};

/// The batch answer: rendered suggestion strings, in output order.
fn batch_answers(
    fx: &common::Fixture,
    patterns: &[(WorkingPattern, f64)],
    entity: EntityId,
) -> Vec<String> {
    suggest_completions(
        &fx.store,
        &fx.universe,
        &fx.config(),
        patterns,
        fx.player_ty,
        entity,
        &fx.window,
    )
    .iter()
    .map(|s| s.display(&fx.universe))
    .collect()
}

/// The served answer (in-process index lookup): rendered strings, in
/// output order.
fn served_answers(index: &PatternIndex, fx: &common::Fixture, entity: EntityId) -> Vec<String> {
    index
        .suggest_by_name(fx.universe.entity_name(entity), None)
        .iter()
        .map(|s| s.text.clone())
        .collect()
}

fn build_index(fx: &common::Fixture, patterns: &[(WorkingPattern, f64)]) -> PatternIndex {
    let set = PatternSet::single_window(fx.player_ty, fx.window, patterns);
    PatternIndex::build(
        &fx.store,
        &fx.universe,
        &fx.config(),
        &set,
        IndexLimits::default(),
    )
    .expect("fixture set fits default limits")
}

#[test]
fn index_matches_batch_for_every_entity() {
    let fx = soccer_world();
    let patterns = vec![(fx.pair_working(), 0.8), (fx.single_working(), 0.6)];
    let index = build_index(&fx, &patterns);
    for &e in fx.players.iter().chain(fx.clubs.iter()) {
        assert_eq!(
            served_answers(&index, &fx, e),
            batch_answers(&fx, &patterns, e),
            "entity {}",
            fx.universe.entity_name(e)
        );
    }
    // The fixture's partial player actually has a suggestion to serve.
    assert!(!served_answers(&index, &fx, fx.partial_player).is_empty());
}

#[test]
fn confidence_ordering_matches_batch_ties_and_all() {
    let fx = soccer_world();
    // Reversed confidences flip the ranking; equal confidences exercise
    // the stable tie-break (batch: pattern order).
    for confs in [[0.2, 0.9], [0.9, 0.2], [0.5, 0.5]] {
        let patterns = vec![
            (fx.pair_working(), confs[0]),
            (fx.single_working(), confs[1]),
        ];
        let index = build_index(&fx, &patterns);
        for &e in &fx.players {
            assert_eq!(
                served_answers(&index, &fx, e),
                batch_answers(&fx, &patterns, e),
                "confs {confs:?}, entity {}",
                fx.universe.entity_name(e)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any pattern subset with any confidences: served == batch for every
    /// entity in the world.
    #[test]
    fn served_equals_batch(
        use_pair in any::<bool>(),
        use_single in any::<bool>(),
        c1 in 0.0f64..1.0,
        c2 in 0.0f64..1.0,
    ) {
        let fx = soccer_world();
        let mut patterns: Vec<(WorkingPattern, f64)> = Vec::new();
        if use_pair {
            patterns.push((fx.pair_working(), c1));
        }
        if use_single {
            patterns.push((fx.single_working(), c2));
        }
        let index = build_index(&fx, &patterns);
        for &e in fx.players.iter().chain(fx.clubs.iter()) {
            prop_assert_eq!(
                served_answers(&index, &fx, e),
                batch_answers(&fx, &patterns, e)
            );
        }
    }
}

/// The tentpole guarantee over the wire: a hot swap mid-stream drops
/// nothing, and every response matches the batch answer for the epoch
/// that served it.
#[test]
fn hot_swap_mid_stream_drops_nothing_and_stays_correct() {
    let fx = soccer_world();
    // Two generations of the same pattern, distinguishable by confidence
    // (the rendered text embeds it).
    let set_a = vec![(fx.pair_working(), 0.8)];
    let set_b = vec![(fx.pair_working(), 0.5)];
    let expect_a = batch_answers(&fx, &set_a, fx.partial_player);
    let expect_b = batch_answers(&fx, &set_b, fx.partial_player);
    assert_ne!(expect_a, expect_b, "generations must be distinguishable");

    let index_a = build_index(&fx, &set_a);
    let universe = Arc::new(fx.universe.clone());
    let mut handle = serve(ServeConfig::default(), universe, index_a, None).expect("server starts");
    let addr = handle.addr();
    let entity = fx.universe.entity_name(fx.partial_player).to_string();

    const TOTAL: usize = 400;
    const SWAP_AT: usize = TOTAL / 2;
    let mut client = SuggestClient::connect(addr).expect("client connects");
    let mut seen_epochs = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        if i == SWAP_AT {
            // Swap between requests on a live connection with more
            // traffic to come: post-swap requests must see the new
            // generation, nothing gets dropped.
            handle.swap_index(build_index(&fx, &set_b));
        }
        let v = client.suggest(&entity, None).expect("response arrives");
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{v:?}");
        let epoch = v.get("epoch").and_then(|e| e.as_u64()).expect("epoch");
        let got: Vec<String> = v
            .get("suggestions")
            .and_then(|s| s.as_array())
            .expect("suggestions array")
            .iter()
            .map(|s| s.get("text").and_then(|t| t.as_str()).unwrap().to_string())
            .collect();
        let expected = match epoch {
            1 => &expect_a,
            2 => &expect_b,
            other => panic!("unexpected epoch {other}"),
        };
        assert_eq!(&got, expected, "request {i} (epoch {epoch})");
        seen_epochs.push(epoch);
    }
    // Zero dropped: all TOTAL requests answered. Both generations actually
    // served, and the epoch sequence is monotone (no flap back to the old
    // index).
    assert_eq!(seen_epochs.len(), TOTAL);
    assert!(seen_epochs.contains(&1) && seen_epochs.contains(&2));
    assert!(seen_epochs.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(
        handle
            .stats()
            .swaps
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    handle.shutdown();

    // Same swap, concurrent clients: every in-flight request completes
    // with an answer valid for *some* generation.
    let index_a = build_index(&fx, &set_a);
    let universe = Arc::new(fx.universe.clone());
    let mut handle = serve(ServeConfig::default(), universe, index_a, None).expect("server starts");
    let addr = handle.addr();
    let answered: Vec<(u64, Vec<String>)> = std::thread::scope(|s| {
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let entity = entity.clone();
                s.spawn(move || {
                    let mut client = SuggestClient::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    for _ in 0..100 {
                        let v = client.suggest(&entity, None).expect("response");
                        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
                        let epoch = v.get("epoch").and_then(|e| e.as_u64()).unwrap();
                        let texts: Vec<String> = v
                            .get("suggestions")
                            .and_then(|x| x.as_array())
                            .unwrap()
                            .iter()
                            .map(|x| x.get("text").and_then(|t| t.as_str()).unwrap().to_string())
                            .collect();
                        out.push((epoch, texts));
                    }
                    out
                })
            })
            .collect();
        // Swap while the clients hammer away.
        std::thread::sleep(std::time::Duration::from_millis(5));
        handle.swap_index(build_index(&fx, &set_b));
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("client thread"))
            .collect()
    });
    assert_eq!(answered.len(), 200, "zero dropped responses");
    for (epoch, texts) in &answered {
        let expected = match epoch {
            1 => &expect_a,
            2 => &expect_b,
            other => panic!("unexpected epoch {other}"),
        };
        assert_eq!(texts, expected);
    }
    handle.shutdown();
}

/// The streaming PR's end-to-end guarantee: a `StreamMiner` consuming a
/// live feed seals windows mid-stream, each seal publishes a refreshed
/// index via hot swap, and a client hammering the connection throughout
/// gets an answer to *every* request — attributable to exactly one epoch
/// and equal to that epoch's index's own answers. The final epoch, mined
/// entirely by the stream, must actually carry the planted transfer
/// pattern and flag the partial player.
#[test]
fn stream_sealed_windows_drive_epoch_swaps_with_zero_drops() {
    let fx = soccer_world();

    // A chronological feed from the fixture store, plus a trailing quiet
    // event (the partial player's latest text re-saved — an empty diff)
    // far enough out that the watermark passes the pattern-bearing window
    // [10, 110) *mid-stream*, so at least one swap happens while events
    // are still arriving, not only at flush.
    let mut events: Vec<FeedEvent> = Vec::new();
    let mut entities: Vec<EntityId> = fx.store.entities().collect();
    entities.sort_by_key(|e| e.as_u32());
    for e in entities {
        for r in fx.store.peek(e).expect("fixture history").revisions() {
            events.push(FeedEvent {
                entity: e,
                time: r.time,
                text: r.text.clone(),
            });
        }
    }
    events.sort_by_key(|e| (e.time, e.entity.as_u32()));
    let quiet = {
        let last = events.last().expect("fixture has events").clone();
        FeedEvent {
            entity: last.entity,
            time: 200,
            text: last.text,
        }
    };
    events.push(quiet);

    const WIDTH: u64 = 100;
    let config = StreamConfig {
        width: WIDTH,
        timeline_start: fx.window.start,
        miner: fx.config(),
        policy: StreamPolicy {
            grace: 1,
            refresh_revisions: 2,
        },
        use_action_cache: true,
    };

    // Serve from an empty index first: the stream has mined nothing yet.
    let empty = PatternSet::single_window(fx.player_ty, Window::new(0, 0), &[]);
    let index0 = PatternIndex::build(
        &fx.store,
        &fx.universe,
        &fx.config(),
        &empty,
        IndexLimits::default(),
    )
    .expect("empty set fits default limits");
    let universe = Arc::new(fx.universe.clone());
    let mut handle = serve(ServeConfig::default(), universe, index0, None).expect("server starts");
    let addr = handle.addr();
    let entity_name = fx.universe.entity_name(fx.partial_player).to_string();

    // Epoch → the publishing side's own answers for the partial player.
    let mut expected_by_epoch: HashMap<u64, Vec<String>> = HashMap::new();
    expected_by_epoch.insert(1, Vec::new());

    let stop = Arc::new(AtomicBool::new(false));
    let answered_so_far = Arc::new(AtomicUsize::new(0));
    let answered: Vec<(u64, Vec<String>)> = std::thread::scope(|s| {
        let hammer = {
            let stop = Arc::clone(&stop);
            let answered_so_far = Arc::clone(&answered_so_far);
            let entity = entity_name.clone();
            s.spawn(move || {
                let mut client = SuggestClient::connect(addr).expect("client connects");
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let v = client.suggest(&entity, None).expect("response arrives");
                    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{v:?}");
                    let epoch = v.get("epoch").and_then(|e| e.as_u64()).expect("epoch");
                    let texts: Vec<String> = v
                        .get("suggestions")
                        .and_then(|x| x.as_array())
                        .expect("suggestions array")
                        .iter()
                        .map(|x| x.get("text").and_then(|t| t.as_str()).unwrap().to_string())
                        .collect();
                    out.push((epoch, texts));
                    answered_so_far.fetch_add(1, Ordering::Relaxed);
                }
                out
            })
        };

        // Drive the stream on this thread; every seal publishes a fresh
        // index built from *all* sealed windows over the stream's own
        // store.
        let mut sm = StreamMiner::new(&fx.universe, fx.player_ty, config);
        let mut publish = |sm: &StreamMiner| {
            let wc = wc_result_from_sealed(
                sm.sealed(),
                fx.player_ty,
                WIDTH,
                fx.config().tau,
                sm.late_revisions(),
            );
            let set = PatternSet::from_wc_result(&wc);
            let index = PatternIndex::build(
                sm.store(),
                &fx.universe,
                &fx.config(),
                &set,
                IndexLimits::default(),
            )
            .expect("streamed set fits default limits");
            let expected: Vec<String> = index
                .suggest_by_name(&entity_name, None)
                .iter()
                .map(|s| s.text.clone())
                .collect();
            let epoch = handle.swap_index(index);
            expected_by_epoch.insert(epoch, expected);
        };

        let mut mid_stream_swaps = 0usize;
        for event in &events {
            if sm.ingest(event) > 0 {
                publish(&sm);
                mid_stream_swaps += 1;
            }
        }
        assert!(
            mid_stream_swaps >= 1,
            "the quiet event's watermark must seal (and publish) mid-stream"
        );
        if sm.flush() > 0 {
            publish(&sm);
        }
        assert_eq!(sm.late_revisions(), 0, "nothing arrived late in this feed");

        // The stream can outrun the client's first round-trip (release
        // builds mine this fixture in well under a connect + request):
        // keep serving until a few requests have landed so the zero-drop
        // claim below is exercised against real traffic.
        while answered_so_far.load(Ordering::Relaxed) < 3 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        hammer.join().expect("client thread")
    });

    // Zero dropped: every request the client issued got an ok response,
    // each attributable to a published epoch and matching that epoch's
    // own answers; epochs never flap backwards on one connection.
    assert!(!answered.is_empty(), "client got at least one answer");
    for (i, (epoch, texts)) in answered.iter().enumerate() {
        let expected = expected_by_epoch
            .get(epoch)
            .unwrap_or_else(|| panic!("request {i}: unpublished epoch {epoch}"));
        assert_eq!(texts, expected, "request {i} (epoch {epoch})");
    }
    assert!(
        answered.windows(2).all(|w| w[0].0 <= w[1].0),
        "epochs monotone"
    );

    // The stream actually mined: ≥ 2 swaps (mid-stream seal + flush), and
    // the final generation flags the partial player with a suggestion.
    let swaps = handle.stats().swaps.load(Ordering::Relaxed);
    assert!(
        swaps >= 2,
        "expected mid-stream and flush swaps, got {swaps}"
    );
    let last_epoch = *expected_by_epoch.keys().max().expect("published epochs");
    assert!(
        !expected_by_epoch[&last_epoch].is_empty(),
        "streamed mining must rediscover the transfer pattern and flag the partial player"
    );
    handle.shutdown();
}
