//! Differential tests: the served suggestion path must agree, suggestion
//! for suggestion and in order, with the batch Algorithm-3 path
//! (`wiclean_core::assist::suggest_completions`) — including across a
//! mid-stream hot swap, where every wire response is attributable to
//! exactly one index epoch and none are dropped.

mod common;

use common::soccer_world;
use proptest::prelude::*;
use std::sync::Arc;
use wiclean_core::assist::suggest_completions;
use wiclean_core::pattern::WorkingPattern;
use wiclean_serve::{serve, IndexLimits, PatternIndex, PatternSet, ServeConfig, SuggestClient};
use wiclean_types::EntityId;

/// The batch answer: rendered suggestion strings, in output order.
fn batch_answers(
    fx: &common::Fixture,
    patterns: &[(WorkingPattern, f64)],
    entity: EntityId,
) -> Vec<String> {
    suggest_completions(
        &fx.store,
        &fx.universe,
        &fx.config(),
        patterns,
        fx.player_ty,
        entity,
        &fx.window,
    )
    .iter()
    .map(|s| s.display(&fx.universe))
    .collect()
}

/// The served answer (in-process index lookup): rendered strings, in
/// output order.
fn served_answers(index: &PatternIndex, fx: &common::Fixture, entity: EntityId) -> Vec<String> {
    index
        .suggest_by_name(fx.universe.entity_name(entity), None)
        .iter()
        .map(|s| s.text.clone())
        .collect()
}

fn build_index(fx: &common::Fixture, patterns: &[(WorkingPattern, f64)]) -> PatternIndex {
    let set = PatternSet::single_window(fx.player_ty, fx.window, patterns);
    PatternIndex::build(
        &fx.store,
        &fx.universe,
        &fx.config(),
        &set,
        IndexLimits::default(),
    )
    .expect("fixture set fits default limits")
}

#[test]
fn index_matches_batch_for_every_entity() {
    let fx = soccer_world();
    let patterns = vec![(fx.pair_working(), 0.8), (fx.single_working(), 0.6)];
    let index = build_index(&fx, &patterns);
    for &e in fx.players.iter().chain(fx.clubs.iter()) {
        assert_eq!(
            served_answers(&index, &fx, e),
            batch_answers(&fx, &patterns, e),
            "entity {}",
            fx.universe.entity_name(e)
        );
    }
    // The fixture's partial player actually has a suggestion to serve.
    assert!(!served_answers(&index, &fx, fx.partial_player).is_empty());
}

#[test]
fn confidence_ordering_matches_batch_ties_and_all() {
    let fx = soccer_world();
    // Reversed confidences flip the ranking; equal confidences exercise
    // the stable tie-break (batch: pattern order).
    for confs in [[0.2, 0.9], [0.9, 0.2], [0.5, 0.5]] {
        let patterns = vec![
            (fx.pair_working(), confs[0]),
            (fx.single_working(), confs[1]),
        ];
        let index = build_index(&fx, &patterns);
        for &e in &fx.players {
            assert_eq!(
                served_answers(&index, &fx, e),
                batch_answers(&fx, &patterns, e),
                "confs {confs:?}, entity {}",
                fx.universe.entity_name(e)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any pattern subset with any confidences: served == batch for every
    /// entity in the world.
    #[test]
    fn served_equals_batch(
        use_pair in any::<bool>(),
        use_single in any::<bool>(),
        c1 in 0.0f64..1.0,
        c2 in 0.0f64..1.0,
    ) {
        let fx = soccer_world();
        let mut patterns: Vec<(WorkingPattern, f64)> = Vec::new();
        if use_pair {
            patterns.push((fx.pair_working(), c1));
        }
        if use_single {
            patterns.push((fx.single_working(), c2));
        }
        let index = build_index(&fx, &patterns);
        for &e in fx.players.iter().chain(fx.clubs.iter()) {
            prop_assert_eq!(
                served_answers(&index, &fx, e),
                batch_answers(&fx, &patterns, e)
            );
        }
    }
}

/// The tentpole guarantee over the wire: a hot swap mid-stream drops
/// nothing, and every response matches the batch answer for the epoch
/// that served it.
#[test]
fn hot_swap_mid_stream_drops_nothing_and_stays_correct() {
    let fx = soccer_world();
    // Two generations of the same pattern, distinguishable by confidence
    // (the rendered text embeds it).
    let set_a = vec![(fx.pair_working(), 0.8)];
    let set_b = vec![(fx.pair_working(), 0.5)];
    let expect_a = batch_answers(&fx, &set_a, fx.partial_player);
    let expect_b = batch_answers(&fx, &set_b, fx.partial_player);
    assert_ne!(expect_a, expect_b, "generations must be distinguishable");

    let index_a = build_index(&fx, &set_a);
    let universe = Arc::new(fx.universe.clone());
    let mut handle = serve(ServeConfig::default(), universe, index_a, None).expect("server starts");
    let addr = handle.addr();
    let entity = fx.universe.entity_name(fx.partial_player).to_string();

    const TOTAL: usize = 400;
    const SWAP_AT: usize = TOTAL / 2;
    let mut client = SuggestClient::connect(addr).expect("client connects");
    let mut seen_epochs = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        if i == SWAP_AT {
            // Swap between requests on a live connection with more
            // traffic to come: post-swap requests must see the new
            // generation, nothing gets dropped.
            handle.swap_index(build_index(&fx, &set_b));
        }
        let v = client.suggest(&entity, None).expect("response arrives");
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{v:?}");
        let epoch = v.get("epoch").and_then(|e| e.as_u64()).expect("epoch");
        let got: Vec<String> = v
            .get("suggestions")
            .and_then(|s| s.as_array())
            .expect("suggestions array")
            .iter()
            .map(|s| s.get("text").and_then(|t| t.as_str()).unwrap().to_string())
            .collect();
        let expected = match epoch {
            1 => &expect_a,
            2 => &expect_b,
            other => panic!("unexpected epoch {other}"),
        };
        assert_eq!(&got, expected, "request {i} (epoch {epoch})");
        seen_epochs.push(epoch);
    }
    // Zero dropped: all TOTAL requests answered. Both generations actually
    // served, and the epoch sequence is monotone (no flap back to the old
    // index).
    assert_eq!(seen_epochs.len(), TOTAL);
    assert!(seen_epochs.contains(&1) && seen_epochs.contains(&2));
    assert!(seen_epochs.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(
        handle
            .stats()
            .swaps
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    handle.shutdown();

    // Same swap, concurrent clients: every in-flight request completes
    // with an answer valid for *some* generation.
    let index_a = build_index(&fx, &set_a);
    let universe = Arc::new(fx.universe.clone());
    let mut handle = serve(ServeConfig::default(), universe, index_a, None).expect("server starts");
    let addr = handle.addr();
    let answered: Vec<(u64, Vec<String>)> = std::thread::scope(|s| {
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let entity = entity.clone();
                s.spawn(move || {
                    let mut client = SuggestClient::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    for _ in 0..100 {
                        let v = client.suggest(&entity, None).expect("response");
                        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
                        let epoch = v.get("epoch").and_then(|e| e.as_u64()).unwrap();
                        let texts: Vec<String> = v
                            .get("suggestions")
                            .and_then(|x| x.as_array())
                            .unwrap()
                            .iter()
                            .map(|x| x.get("text").and_then(|t| t.as_str()).unwrap().to_string())
                            .collect();
                        out.push((epoch, texts));
                    }
                    out
                })
            })
            .collect();
        // Swap while the clients hammer away.
        std::thread::sleep(std::time::Duration::from_millis(5));
        handle.swap_index(build_index(&fx, &set_b));
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("client thread"))
            .collect()
    });
    assert_eq!(answered.len(), 200, "zero dropped responses");
    for (epoch, texts) in &answered {
        let expected = match epoch {
            1 => &expect_a,
            2 => &expect_b,
            other => panic!("unexpected epoch {other}"),
        };
        assert_eq!(texts, expected);
    }
    handle.shutdown();
}
