//! The suggestion server: a hand-rolled TCP accept loop.
//!
//! The container has no async runtime, so the server is plain `std::net`:
//! an accept thread spawns one handler thread per connection (bounded by
//! [`ServeConfig::max_connections`]), each speaking the newline-delimited
//! JSON protocol of [`crate::protocol`]. Connections are long-lived —
//! editor plug-ins keep one open — which is exactly why a fixed pool
//! multiplexing *connections* would be wrong: an idle connection would
//! pin a worker and starve queued ones (a bug the serve smoke harness
//! caught in an earlier pool-based design). Handler threads poll the stop
//! flag through bounded reads, so shutdown never waits on an idle client.
//! Three properties the tests pin down:
//!
//! * **Sub-ms suggestion path** — a `suggest` request is a symbol lookup,
//!   a candidate gather, and a stable sort of a short list against the
//!   precomputed [`PatternIndex`]; the per-request latency (measured
//!   server-side around exactly that work) feeds the stats histogram.
//! * **Hot swap without dropping requests** — handlers pin the index via
//!   [`EpochPtr::load_with_epoch`]; a concurrent reload publishes a new
//!   generation without invalidating pinned ones, and every response
//!   reports the epoch that answered it.
//! * **Panic-proofing** — each request runs under `catch_unwind`; a panic
//!   becomes an error response and a `panics_caught` tick, never a dead
//!   worker. Reloads that fail (including [`WicleanError::InternerFull`]
//!   surfaced as a build error) are rejected while the previous index
//!   stays live.

use crate::epoch::EpochPtr;
use crate::index::{ActionSig, PatternIndex};
use crate::protocol::{
    error_line, parse_request, AckResponse, ReloadResponse, Request, StatsResponse,
    SuggestResponse, SuggestionOut,
};
use crate::stats::ServeStats;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wiclean_types::Universe;

/// Rebuilds a [`PatternIndex`] on demand for the `reload` op. The argument
/// is the request's optional `spec` string; the closure owns whatever it
/// needs (store, universe, miner config) to produce a fresh index. Errors
/// are human-readable one-liners; the server keeps the previous index.
pub type ReloadFn = Box<dyn Fn(Option<&str>) -> Result<PatternIndex, String> + Send + Sync>;

/// Server construction options.
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Concurrent-connection cap; further accepts wait until a handler
    /// thread finishes.
    pub max_connections: usize,
    /// Enables the `panic` op (panic-proofing harness only).
    pub enable_debug_ops: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            enable_debug_ops: false,
        }
    }
}

/// A running server. Dropping the handle stops it (see
/// [`ServeHandle::shutdown`]).
pub struct ServeHandle {
    addr: SocketAddr,
    epoch: Arc<EpochPtr<PatternIndex>>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
}

struct Shared {
    addr: SocketAddr,
    epoch: Arc<EpochPtr<PatternIndex>>,
    stats: Arc<ServeStats>,
    universe: Arc<Universe>,
    reload: Option<ReloadFn>,
    stop: Arc<AtomicBool>,
    enable_debug_ops: bool,
}

/// Starts a server over `index`. `reload` powers the `reload` op (absent →
/// the op is rejected). Returns once the listener is bound.
pub fn serve(
    config: ServeConfig,
    universe: Arc<Universe>,
    index: PatternIndex,
    reload: Option<ReloadFn>,
) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let epoch = Arc::new(EpochPtr::new(index));
    let stats = Arc::new(ServeStats::new());
    let stop = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        addr,
        epoch: Arc::clone(&epoch),
        stats: Arc::clone(&stats),
        universe,
        reload,
        stop: Arc::clone(&stop),
        enable_debug_ops: config.enable_debug_ops,
    });

    let conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let max_connections = config.max_connections.max(1);
    let accept_conns = Arc::clone(&conns);
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.stop.load(Ordering::Acquire) {
                return;
            }
            let Ok(stream) = stream else { continue };
            // One-line responses must not sit in Nagle's buffer waiting
            // for a delayed ACK (a 40 ms round-trip tax otherwise).
            stream.set_nodelay(true).ok();
            // Reap finished handlers; if still at the cap, wait for one to
            // finish rather than queueing the connection behind long-lived
            // ones it could never overtake.
            loop {
                let mut conns = accept_conns.lock();
                conns.retain(|h| !h.is_finished());
                if conns.len() < max_connections {
                    let shared = Arc::clone(&accept_shared);
                    conns.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                    }));
                    break;
                }
                drop(conns);
                if accept_shared.stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    });

    Ok(ServeHandle {
        addr,
        epoch,
        stats,
        stop,
        accept_thread: Some(accept_thread),
        conns,
    })
}

impl ServeHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The current index generation.
    pub fn epoch(&self) -> u64 {
        self.epoch.epoch()
    }

    /// Hot-swaps `index` in from the host process (the admin `reload` op
    /// does the same through the wire). Returns the new epoch.
    pub fn swap_index(&self, index: PatternIndex) -> u64 {
        let e = self.epoch.swap(index);
        self.stats.swaps.fetch_add(1, Ordering::Relaxed);
        e
    }

    /// Blocks until the server stops (e.g. a wire `shutdown` request),
    /// joining all threads.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        loop {
            let Some(t) = self.conns.lock().pop() else {
                return;
            };
            let _ = t.join();
        }
    }

    /// Stops the server and joins all threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.wait();
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // Bounded reads so an idle connection re-checks the stop flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let response = handle_request_guarded(trimmed, shared);
                if writer
                    .write_all(response.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .is_err()
                {
                    return;
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Runs one request under `catch_unwind`: a handler panic becomes an error
/// response, never a dead worker thread.
fn handle_request_guarded(line: &str, shared: &Shared) -> String {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    match catch_unwind(AssertUnwindSafe(|| handle_request(line, shared))) {
        Ok(response) => response,
        Err(_) => {
            shared.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            error_line(shared.epoch.epoch(), "internal error: handler panicked")
        }
    }
}

fn handle_request(line: &str, shared: &Shared) -> String {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            return error_line(shared.epoch.epoch(), &e);
        }
    };
    match request {
        Request::Suggest { entity, sig } => {
            shared
                .stats
                .suggest_requests
                .fetch_add(1, Ordering::Relaxed);
            // Resolve the wire signature before the timed section: name →
            // id resolution is request parsing, not suggestion lookup.
            let sig = match sig {
                None => None,
                Some(ws) => match shared.universe.lookup_relation(&ws.rel) {
                    Some(rel) => Some(ActionSig { op: ws.op, rel }),
                    None => {
                        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                        return error_line(
                            shared.epoch.epoch(),
                            &format!("unknown relation {:?}", ws.rel),
                        );
                    }
                },
            };
            // The timed suggestion path: pin the index generation, look up,
            // rank. This is the figure the bench reports as server-side
            // latency.
            let t0 = Instant::now();
            let (index, epoch) = shared.epoch.load_with_epoch();
            let found = index.suggest_by_name(&entity, sig);
            let suggestions: Vec<SuggestionOut> = found
                .iter()
                .map(|s| SuggestionOut {
                    text: s.text.clone(),
                    pattern: s.pattern_text.clone(),
                    confidence: s.confidence,
                })
                .collect();
            let latency_ns = t0.elapsed().as_nanos() as u64;
            shared.stats.record_latency_ns(latency_ns);
            shared
                .stats
                .suggestions_returned
                .fetch_add(suggestions.len() as u64, Ordering::Relaxed);
            serde_json::to_string(&SuggestResponse {
                ok: true,
                epoch,
                suggestions,
                latency_ns,
            })
            .expect("suggest response serializes")
        }
        Request::Stats => {
            let (index, epoch) = shared.epoch.load_with_epoch();
            serde_json::to_string(&StatsResponse {
                ok: true,
                epoch,
                serve: shared.stats.snapshot(epoch),
                index: index.stats().clone(),
            })
            .expect("stats response serializes")
        }
        Request::Reload { spec } => match &shared.reload {
            None => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .reloads_rejected
                    .fetch_add(1, Ordering::Relaxed);
                error_line(shared.epoch.epoch(), "reload not configured")
            }
            Some(reload) => match reload(spec.as_deref()) {
                Ok(index) => {
                    let patterns = index.stats().patterns;
                    let suggestions = index.stats().suggestions;
                    let epoch = shared.epoch.swap(index);
                    shared.stats.swaps.fetch_add(1, Ordering::Relaxed);
                    serde_json::to_string(&ReloadResponse {
                        ok: true,
                        epoch,
                        patterns,
                        suggestions,
                    })
                    .expect("reload response serializes")
                }
                Err(e) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .reloads_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    error_line(shared.epoch.epoch(), &format!("reload rejected: {e}"))
                }
            },
        },
        Request::Ping => serde_json::to_string(&AckResponse {
            ok: true,
            epoch: shared.epoch.epoch(),
            ack: "pong".to_string(),
        })
        .expect("ack serializes"),
        Request::Shutdown => {
            shared.stop.store(true, Ordering::Release);
            // Unblock the accept loop so the server actually winds down.
            let _ = TcpStream::connect(shared.addr);
            serde_json::to_string(&AckResponse {
                ok: true,
                epoch: shared.epoch.epoch(),
                ack: "shutting down".to_string(),
            })
            .expect("ack serializes")
        }
        Request::Panic => {
            if shared.enable_debug_ops {
                panic!("debug op: deliberate panic");
            }
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            error_line(shared.epoch.epoch(), "debug ops disabled")
        }
    }
}
