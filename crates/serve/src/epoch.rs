//! Hot-swap primitive: an epoch-stamped atomic `Arc` pointer.
//!
//! The server never mutates a live [`crate::PatternIndex`]. A reload builds
//! a complete replacement off to the side and publishes it here with
//! [`EpochPtr::swap`]; requests entering before the swap finish against the
//! `Arc` they cloned (the old epoch stays alive until its last in-flight
//! reader drops), requests entering after see the new one. No request is
//! ever dropped or served a half-updated index.
//!
//! The implementation is the classic arc-swap shape reduced to what the
//! shimmed `parking_lot` offers: a `RwLock<Arc<T>>` whose critical sections
//! are a single `Arc::clone` (load) or pointer store (swap), plus a
//! monotonically increasing epoch counter so responses can report which
//! index generation answered them.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An atomically swappable `Arc<T>` with a generation counter.
pub struct EpochPtr<T> {
    current: RwLock<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochPtr<T> {
    /// Wraps `value` as epoch 1.
    pub fn new(value: T) -> Self {
        Self {
            current: RwLock::new(Arc::new(value)),
            epoch: AtomicU64::new(1),
        }
    }

    /// Clones the current `Arc`, pinning that generation for the caller:
    /// a concurrent [`EpochPtr::swap`] cannot free it while the clone
    /// lives. The critical section is one refcount increment.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read())
    }

    /// Publishes `value` as the new generation and returns its epoch
    /// number. In-flight loads of the previous generation stay valid.
    /// The pointer store and the epoch bump happen under the same write
    /// lock, so [`EpochPtr::load_with_epoch`] can never pair a value with
    /// the wrong generation number.
    pub fn swap(&self, value: T) -> u64 {
        let next = Arc::new(value);
        let mut slot = self.current.write();
        *slot = next;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The current generation number (starts at 1, +1 per swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Loads the value together with the generation it belongs to.
    pub fn load_with_epoch(&self) -> (Arc<T>, u64) {
        let slot = self.current.read();
        let value = Arc::clone(&slot);
        let epoch = self.epoch.load(Ordering::Acquire);
        (value, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn swap_bumps_epoch_and_old_loads_stay_valid() {
        let p = EpochPtr::new(String::from("alpha"));
        assert_eq!(p.epoch(), 1);
        let pinned = p.load();
        assert_eq!(p.swap(String::from("beta")), 2);
        // The pre-swap clone still reads the old generation...
        assert_eq!(pinned.as_str(), "alpha");
        // ...while new loads see the new one.
        assert_eq!(p.load().as_str(), "beta");
        assert_eq!(p.epoch(), 2);
    }

    #[test]
    fn concurrent_loads_never_observe_torn_state() {
        let p = Arc::new(EpochPtr::new(0u64));
        thread::scope(|s| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let p = Arc::clone(&p);
                    s.spawn(move || {
                        for _ in 0..2_000 {
                            let (v, e) = p.load_with_epoch();
                            // Generation k holds value k-1.
                            assert_eq!(*v + 1, e);
                        }
                    })
                })
                .collect();
            let w = {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for v in 1..200u64 {
                        p.swap(v);
                    }
                })
            };
            for r in readers {
                r.join().unwrap();
            }
            w.join().unwrap();
        });
        assert_eq!(p.epoch(), 200);
        assert_eq!(*p.load(), 199);
    }
}
