//! Wire protocol: newline-delimited JSON over TCP.
//!
//! One request per line, one response line back. Requests are parsed
//! defensively from [`serde_json::Value`] — the server must survive any
//! bytes a client sends — while responses are derive-serialized structs.
//! Every response carries `ok` and the `epoch` of the index generation
//! that answered it, which is what the hot-swap differential test keys on.
//!
//! Request shapes:
//!
//! ```json
//! {"op":"suggest","entity":"Wayne Rooney"}
//! {"op":"suggest","entity":"Wayne Rooney","sig":{"edit":"add","rel":"plays_for"}}
//! {"op":"stats"}
//! {"op":"reload"}            // re-run the configured loader
//! {"op":"reload","spec":"…"} // loader-defined argument
//! {"op":"ping"}
//! {"op":"shutdown"}
//! {"op":"panic"}             // debug builds of the harness only
//! ```

use crate::index::IndexStats;
use crate::stats::StatsSnapshot;
use serde::Serialize;
use serde_json::Value;
use wiclean_wikitext::EditOp;

/// The edit signature as it appears on the wire (names, not ids — clients
/// don't know the universe's id space).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSig {
    /// `"add"`/`"+"` or `"remove"`/`"-"`.
    pub op: EditOp,
    /// Relation name, resolved against the universe by the server.
    pub rel: String,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Suggest completions for the named entity's in-flight edit.
    Suggest {
        /// Entity name (catalog name).
        entity: String,
        /// Optional in-flight edit signature to narrow candidates.
        sig: Option<WireSig>,
    },
    /// Report serving counters and index stats.
    Stats,
    /// Rebuild the pattern index and hot-swap it in.
    Reload {
        /// Loader-defined argument (e.g. a pattern-set spec).
        spec: Option<String>,
    },
    /// Liveness probe.
    Ping,
    /// Stop the server.
    Shutdown,
    /// Deliberately panic inside the handler (panic-proofing tests only).
    Panic,
}

/// Parses one request line. Errors are strings the server echoes back in
/// an error response — they must never contain client-controlled newlines.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("bad json: {e}"))?;
    let op = v
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or_else(|| "missing op".to_string())?;
    match op {
        "suggest" => {
            let entity = v
                .get("entity")
                .and_then(|e| e.as_str())
                .ok_or_else(|| "suggest: missing entity".to_string())?
                .to_string();
            let sig = match v.get("sig") {
                None | Some(Value::Null) => None,
                Some(sig) => {
                    let edit = sig
                        .get("edit")
                        .and_then(|e| e.as_str())
                        .ok_or_else(|| "sig: missing edit".to_string())?;
                    let op = match edit {
                        "add" | "+" => EditOp::Add,
                        "remove" | "-" => EditOp::Remove,
                        other => return Err(format!("sig: unknown edit {other:?}")),
                    };
                    let rel = sig
                        .get("rel")
                        .and_then(|r| r.as_str())
                        .ok_or_else(|| "sig: missing rel".to_string())?
                        .to_string();
                    Some(WireSig { op, rel })
                }
            };
            Ok(Request::Suggest { entity, sig })
        }
        "stats" => Ok(Request::Stats),
        "reload" => Ok(Request::Reload {
            spec: v
                .get("spec")
                .and_then(|s| s.as_str())
                .map(|s| s.to_string()),
        }),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "panic" => Ok(Request::Panic),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// One suggestion on the wire.
#[derive(Debug, Clone, Serialize)]
pub struct SuggestionOut {
    /// The rendered suggestion text (identical to the batch
    /// `Suggestion::display` output).
    pub text: String,
    /// The owning pattern's display form.
    pub pattern: String,
    /// The owning pattern's confidence.
    pub confidence: f64,
}

/// Response to `suggest`.
#[derive(Debug, Clone, Serialize)]
pub struct SuggestResponse {
    /// Always `true` on this type.
    pub ok: bool,
    /// Index generation that answered.
    pub epoch: u64,
    /// Suggestions, most confident first.
    pub suggestions: Vec<SuggestionOut>,
    /// Server-side suggestion-path latency for this request, nanoseconds.
    pub latency_ns: u64,
}

/// Response to `stats`.
#[derive(Debug, Clone, Serialize)]
pub struct StatsResponse {
    /// Always `true` on this type.
    pub ok: bool,
    /// Index generation currently serving.
    pub epoch: u64,
    /// Serving counters and latency percentiles.
    pub serve: StatsSnapshot,
    /// Build-time stats of the current index.
    pub index: IndexStats,
}

/// Response to a successful `reload`.
#[derive(Debug, Clone, Serialize)]
pub struct ReloadResponse {
    /// Always `true` on this type.
    pub ok: bool,
    /// The new index generation.
    pub epoch: u64,
    /// Patterns in the new index.
    pub patterns: usize,
    /// Precomputed suggestions in the new index.
    pub suggestions: usize,
}

/// Response to `ping` / `shutdown`.
#[derive(Debug, Clone, Serialize)]
pub struct AckResponse {
    /// Always `true` on this type.
    pub ok: bool,
    /// Index generation currently serving.
    pub epoch: u64,
    /// What is being acknowledged (`"pong"` / `"shutting down"`).
    pub ack: String,
}

/// Any failure: parse errors, handler errors, caught panics, rejected
/// reloads. The server stays up; the previous index stays live.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorResponse {
    /// Always `false` on this type.
    pub ok: bool,
    /// Index generation currently serving.
    pub epoch: u64,
    /// Human-readable cause (single line).
    pub error: String,
}

/// Serializes an error response line (newlines in `error` are flattened so
/// the framing survives hostile input).
pub fn error_line(epoch: u64, error: &str) -> String {
    let flat: String = error
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    serde_json::to_string(&ErrorResponse {
        ok: false,
        epoch,
        error: flat,
    })
    .expect("error response serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_suggest_with_and_without_sig() {
        assert_eq!(
            parse_request(r#"{"op":"suggest","entity":"Wayne Rooney"}"#).unwrap(),
            Request::Suggest {
                entity: "Wayne Rooney".into(),
                sig: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"suggest","entity":"E","sig":{"edit":"+","rel":"plays_for"}}"#)
                .unwrap(),
            Request::Suggest {
                entity: "E".into(),
                sig: Some(WireSig {
                    op: EditOp::Add,
                    rel: "plays_for".into()
                })
            }
        );
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        assert!(parse_request("not json").unwrap_err().contains("bad json"));
        assert!(parse_request(r#"{"entity":"x"}"#)
            .unwrap_err()
            .contains("missing op"));
        assert!(parse_request(r#"{"op":"suggest"}"#)
            .unwrap_err()
            .contains("missing entity"));
        assert!(parse_request(r#"{"op":"frobnicate"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(
            parse_request(r#"{"op":"suggest","entity":"E","sig":{"edit":"x","rel":"r"}}"#)
                .unwrap_err()
                .contains("unknown edit")
        );
    }

    #[test]
    fn error_line_flattens_newlines() {
        let line = error_line(3, "boom\nline2\r");
        assert!(!line.contains('\n'));
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
        assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(3));
        assert_eq!(v.get("error").and_then(|e| e.as_str()), Some("boom line2 "));
    }
}
