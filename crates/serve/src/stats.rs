//! Serving counters and the suggestion-path latency histogram.
//!
//! Mirrors the batch pipeline's `MineStats` idiom — cheap relaxed atomics
//! on the hot path, a derived serializable snapshot at reporting time —
//! but adds a fixed 64-bucket log2 nanosecond histogram so percentiles
//! come out without recording individual samples. Bucket `i` covers
//! latencies in `[2^i, 2^(i+1))` ns; p99 at sub-millisecond scale needs no
//! more resolution than that, and recording is one `fetch_add`.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// Lock-free counters shared by every worker thread of a server.
pub struct ServeStats {
    /// Requests accepted (all ops).
    pub requests: AtomicU64,
    /// `suggest` requests specifically.
    pub suggest_requests: AtomicU64,
    /// Suggestions returned across all `suggest` responses.
    pub suggestions_returned: AtomicU64,
    /// Malformed or failed requests answered with an error response.
    pub errors: AtomicU64,
    /// Handler panics converted into error responses.
    pub panics_caught: AtomicU64,
    /// Successful index hot-swaps.
    pub swaps: AtomicU64,
    /// Reloads rejected (build failure or oversized set); previous index
    /// kept.
    pub reloads_rejected: AtomicU64,
    /// Log2-bucketed suggestion-path latency, nanoseconds.
    latency: [AtomicU64; BUCKETS],
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            suggest_requests: AtomicU64::new(0),
            suggestions_returned: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one suggestion-path latency sample.
    pub fn record_latency_ns(&self, ns: u64) {
        let bucket = (64 - ns.max(1).leading_zeros() - 1) as usize;
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Latency at quantile `q` (0.0–1.0) in nanoseconds: the upper bound of
    /// the bucket containing the q-th sample. `None` before any sample.
    pub fn latency_quantile_ns(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i (conservative).
                return Some(if i >= 63 { u64::MAX } else { 2u64 << i });
            }
        }
        Some(u64::MAX)
    }

    /// A serializable point-in-time snapshot, plus derived percentiles.
    pub fn snapshot(&self, epoch: u64) -> StatsSnapshot {
        let to_us = |ns: Option<u64>| ns.map(|n| n as f64 / 1e3);
        StatsSnapshot {
            epoch,
            requests: self.requests.load(Ordering::Relaxed),
            suggest_requests: self.suggest_requests.load(Ordering::Relaxed),
            suggestions_returned: self.suggestions_returned.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            reloads_rejected: self.reloads_rejected.load(Ordering::Relaxed),
            suggest_p50_us: to_us(self.latency_quantile_ns(0.50)),
            suggest_p90_us: to_us(self.latency_quantile_ns(0.90)),
            suggest_p99_us: to_us(self.latency_quantile_ns(0.99)),
        }
    }
}

/// What `/stats` reports: raw counters plus derived latency percentiles
/// (microseconds, log2-bucket upper bounds) and the current index epoch.
#[derive(Debug, Clone, Serialize)]
pub struct StatsSnapshot {
    /// Current index generation.
    pub epoch: u64,
    /// Requests accepted (all ops).
    pub requests: u64,
    /// `suggest` requests.
    pub suggest_requests: u64,
    /// Suggestions returned in total.
    pub suggestions_returned: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Handler panics converted to error responses.
    pub panics_caught: u64,
    /// Successful hot-swaps.
    pub swaps: u64,
    /// Rejected reloads (previous index kept).
    pub reloads_rejected: u64,
    /// Suggestion-path p50, microseconds.
    pub suggest_p50_us: Option<f64>,
    /// Suggestion-path p90, microseconds.
    pub suggest_p90_us: Option<f64>,
    /// Suggestion-path p99, microseconds.
    pub suggest_p99_us: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_log2_buckets() {
        let s = ServeStats::new();
        assert_eq!(s.latency_quantile_ns(0.99), None);
        // 99 fast samples (~1µs) and one slow (~1ms).
        for _ in 0..99 {
            s.record_latency_ns(1_000);
        }
        s.record_latency_ns(1_000_000);
        // p50 lands in the 1µs bucket: upper bound 2^10 = 1024ns.
        assert_eq!(s.latency_quantile_ns(0.50), Some(1024));
        // p99 still in the fast bucket (99/100 samples).
        assert_eq!(s.latency_quantile_ns(0.99), Some(1024));
        // p100 reaches the slow bucket: 2^20 = 1048576ns upper bound.
        assert_eq!(s.latency_quantile_ns(1.0), Some(1 << 20));
    }

    #[test]
    fn snapshot_serializes_with_epoch() {
        let s = ServeStats::new();
        s.requests.fetch_add(3, Ordering::Relaxed);
        s.record_latency_ns(500);
        let snap = s.snapshot(7);
        let json = serde_json::to_string(&snap).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("epoch").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(v.get("requests").and_then(|x| x.as_u64()), Some(3));
        assert!(v.get("suggest_p99_us").and_then(|x| x.as_f64()).is_some());
    }
}
