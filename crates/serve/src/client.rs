//! A minimal blocking client for the suggestion server.
//!
//! One TCP connection, one JSON line per request, one line back. Used by
//! the `wiclean suggest` one-shot mode, the load-generator bench, and the
//! differential tests; real editor plug-ins would speak the same protocol.

use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client. Requests are answered in order on the connection.
pub struct SuggestClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl SuggestClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // Don't hang forever on a wedged server.
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line and returns the raw response line.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one request line and parses the response as JSON.
    pub fn send(&mut self, line: &str) -> std::io::Result<Value> {
        let response = self.send_line(line)?;
        serde_json::from_str(&response).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response json: {e}"),
            )
        })
    }

    /// Convenience: a `suggest` request for `entity`, optionally narrowed
    /// by an in-flight edit signature (`edit` is `"add"`/`"remove"`).
    pub fn suggest(&mut self, entity: &str, sig: Option<(&str, &str)>) -> std::io::Result<Value> {
        let request = match sig {
            None => format!(r#"{{"op":"suggest","entity":{}}}"#, json_str(entity)),
            Some((edit, rel)) => format!(
                r#"{{"op":"suggest","entity":{},"sig":{{"edit":{},"rel":{}}}}}"#,
                json_str(entity),
                json_str(edit),
                json_str(rel)
            ),
        };
        self.send(&request)
    }

    /// Convenience: a `stats` request.
    pub fn stats(&mut self) -> std::io::Result<Value> {
        self.send(r#"{"op":"stats"}"#)
    }

    /// Convenience: a `reload` request.
    pub fn reload(&mut self, spec: Option<&str>) -> std::io::Result<Value> {
        let request = match spec {
            None => r#"{"op":"reload"}"#.to_string(),
            Some(s) => format!(r#"{{"op":"reload","spec":{}}}"#, json_str(s)),
        };
        self.send(&request)
    }

    /// Convenience: a `shutdown` request.
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.send(r#"{"op":"shutdown"}"#)
    }
}

/// JSON-escapes a string literal (entity names may hold quotes or
/// backslashes; everything the catalog allows must round-trip).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::json_str;

    #[test]
    fn json_str_escapes_control_and_quote_chars() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("n\nl"), "\"n\\nl\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
