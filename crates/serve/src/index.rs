//! The read-optimized immutable pattern index behind the suggestion server.
//!
//! Algorithm 3 (`wiclean_core::partial`) is a chain of full outer joins over
//! freshly fetched revision histories — milliseconds to seconds per pattern,
//! fine for a batch driver, hopeless at interactive latency. The index moves
//! all of that work to *build time*: every pattern's partial-update report is
//! computed once when a mined pattern set is loaded, each flagged partial is
//! rendered into a [`StoredSuggestion`], and two integer-keyed maps are laid
//! over the result so a request touches only hash lookups over dense ids:
//!
//! * **entity → suggestions** — involved-entity names intern into a
//!   [`SymTable`] (one string hash per request, dense `u32` slots after
//!   that); each slot holds the ids of the suggestions that involve the
//!   entity, in pattern-then-partial order.
//! * **(seed type, action signature) → candidate patterns** — a request
//!   carrying the in-flight edit's signature (`op` + relation) narrows to
//!   the patterns containing a matching abstract action in O(1) before the
//!   entity filter runs.
//!
//! Canonical patterns intern through the existing
//! [`wiclean_core::PatternInterner`], so pattern identity is a `Copy` id
//! here too. The index is immutable after build — the server swaps whole
//! indexes atomically (see [`crate::epoch`]) instead of mutating one.
//!
//! Build is **fallible by design**: interners are capacity-limited via
//! [`IndexLimits`], and an oversized pattern set surfaces as
//! [`WicleanError::InternerFull`] — the serving layer rejects the load and
//! keeps the previous epoch, rather than aborting a resident process.

use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;
use wiclean_core::config::MinerConfig;
use wiclean_core::partial::detect_partial_updates;
use wiclean_core::pattern::WorkingPattern;
use wiclean_core::windows::WcResult;
use wiclean_core::PatternInterner;
use wiclean_revstore::FetchSource;
use wiclean_types::{EntityId, RelId, SymTable, TypeId, Universe, WicleanError, Window};
use wiclean_wikitext::EditOp;

/// The signature of one in-flight edit: the operation plus the relation it
/// touches. Requests use it to narrow candidate patterns before the entity
/// filter; patterns index under the distinct signatures of their actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActionSig {
    /// Add or remove.
    pub op: EditOp,
    /// The relation the edit touches.
    pub rel: RelId,
}

/// One mined pattern queued for serving.
#[derive(Debug, Clone)]
pub struct ServedPattern {
    /// Construction-order form (drives Algorithm 3 at build time).
    pub working: WorkingPattern,
    /// The confidence shown to users (the pattern's mined frequency).
    pub confidence: f64,
    /// The window the pattern was discovered in; partial detection runs
    /// against it at build time.
    pub window: Window,
}

/// A pattern set: the unit the server loads, and hot-swaps, as a whole.
#[derive(Debug, Clone)]
pub struct PatternSet {
    /// The seed type all patterns were mined for.
    pub seed: TypeId,
    /// The patterns, in serving order (ties in confidence resolve to this
    /// order, matching the batch suggestion path).
    pub patterns: Vec<ServedPattern>,
}

impl PatternSet {
    /// Builds a pattern set from an Algorithm 2 run: every discovered
    /// pattern, at its discovery window, with its mined frequency as the
    /// confidence.
    pub fn from_wc_result(result: &WcResult) -> Self {
        Self {
            seed: result.seed,
            patterns: result
                .discovered
                .iter()
                .map(|d| ServedPattern {
                    working: d.working.clone(),
                    confidence: d.frequency,
                    window: d.window,
                })
                .collect(),
        }
    }

    /// Builds a pattern set over one shared window — the exact shape
    /// [`wiclean_core::assist::suggest_completions`] takes, used by the
    /// differential tests.
    pub fn single_window(seed: TypeId, window: Window, patterns: &[(WorkingPattern, f64)]) -> Self {
        Self {
            seed,
            patterns: patterns
                .iter()
                .map(|(wp, freq)| ServedPattern {
                    working: wp.clone(),
                    confidence: *freq,
                    window,
                })
                .collect(),
        }
    }
}

/// Capacity limits guarding an index build. Defaults are the full `u32` id
/// space; tests and deployments with memory budgets tighten them.
#[derive(Debug, Clone, Copy)]
pub struct IndexLimits {
    /// Maximum distinct canonical patterns.
    pub max_patterns: u32,
    /// Maximum distinct entities involved in suggestions.
    pub max_entities: u32,
}

impl Default for IndexLimits {
    fn default() -> Self {
        Self {
            max_patterns: u32::MAX,
            max_entities: u32::MAX,
        }
    }
}

/// One fully precomputed suggestion: everything a response needs, rendered
/// at build time so the request path does no formatting.
#[derive(Debug, Clone)]
pub struct StoredSuggestion {
    /// Ordinal of the owning pattern in the pattern set.
    pub pattern_ix: u32,
    /// `pattern.display(universe)` of the owning pattern.
    pub pattern_text: String,
    /// The suggestion text shown to the editor — identical to
    /// [`wiclean_core::assist::Suggestion::display`] output.
    pub text: String,
    /// The owning pattern's confidence.
    pub confidence: f64,
}

/// Build-time counters reported through the `/stats` endpoint.
#[derive(Debug, Clone, Default, Serialize)]
pub struct IndexStats {
    /// Patterns in the loaded set.
    pub patterns: usize,
    /// Precomputed suggestions (flagged partial realizations).
    pub suggestions: usize,
    /// Distinct entities with at least one suggestion.
    pub entities: usize,
    /// Complete realizations observed while building (evidence volume).
    pub complete_realizations: usize,
    /// Wall-clock spent building, milliseconds.
    pub build_ms: f64,
}

/// An indexed pattern: interned identity plus its signature set.
#[derive(Debug)]
struct IndexedPattern {
    /// Distinct action signatures of the canonical form.
    sigs: Vec<ActionSig>,
}

/// The immutable, read-optimized suggestion index. See the module docs for
/// the layout; all request-path lookups are O(1) hash probes over dense
/// integer keys plus a short in-bucket scan.
pub struct PatternIndex {
    seed: TypeId,
    patterns: Vec<IndexedPattern>,
    suggestions: Vec<StoredSuggestion>,
    /// Involved-entity names → dense slots (one string hash per request).
    names: SymTable,
    /// Slot → suggestion ids in ascending (pattern-then-partial) order.
    by_slot: Vec<Vec<u32>>,
    /// EntityId → slot, for integer-keyed (in-process) callers.
    by_entity: HashMap<EntityId, u32>,
    /// (seed, signature) → pattern ordinals containing a matching action.
    by_sig: HashMap<(TypeId, ActionSig), Vec<u32>>,
    stats: IndexStats,
}

impl PatternIndex {
    /// Builds an index from a mined pattern set by running Algorithm 3 once
    /// per pattern against `source` and precomputing every suggestion.
    ///
    /// Fails with [`WicleanError::InternerFull`] when the set exceeds
    /// `limits` — the caller (the serving layer) keeps its previous index.
    pub fn build(
        source: &dyn FetchSource,
        universe: &Universe,
        config: &MinerConfig,
        set: &PatternSet,
        limits: IndexLimits,
    ) -> Result<PatternIndex, WicleanError> {
        let t0 = Instant::now();
        let interner = PatternInterner::with_limit(limits.max_patterns);
        let mut names = SymTable::with_limit(limits.max_entities);
        let mut patterns = Vec::with_capacity(set.patterns.len());
        let mut suggestions: Vec<StoredSuggestion> = Vec::new();
        let mut by_slot: Vec<Vec<u32>> = Vec::new();
        let mut by_entity: HashMap<EntityId, u32> = HashMap::new();
        let mut by_sig: HashMap<(TypeId, ActionSig), Vec<u32>> = HashMap::new();
        let mut complete_realizations = 0usize;

        for (pix, served) in set.patterns.iter().enumerate() {
            let pix = pix as u32;
            let (_id, canonical) = interner.try_intern_working(&served.working)?;
            let mut sigs: Vec<ActionSig> = Vec::new();
            for a in canonical.actions() {
                let sig = ActionSig {
                    op: a.op,
                    rel: a.rel,
                };
                if !sigs.contains(&sig) {
                    sigs.push(sig);
                    by_sig.entry((set.seed, sig)).or_default().push(pix);
                }
            }

            let report = detect_partial_updates(
                source,
                universe,
                config,
                &served.working,
                set.seed,
                &served.window,
                0,
            );
            complete_realizations += report.complete_count;
            let pattern_text = report.pattern.display(universe);
            for partial in &report.partials {
                let sid = suggestions.len() as u32;
                suggestions.push(StoredSuggestion {
                    pattern_ix: pix,
                    pattern_text: pattern_text.clone(),
                    text: format!(
                        "{} (confidence {:.0}%)",
                        partial.display(universe),
                        served.confidence * 100.0
                    ),
                    confidence: served.confidence,
                });
                // Distinct involved entities, in assignment order.
                let mut involved: Vec<EntityId> = Vec::new();
                for (_, e) in &partial.assignment {
                    if let Some(e) = e {
                        if !involved.contains(e) {
                            involved.push(*e);
                        }
                    }
                }
                for e in involved {
                    let sym = names.try_intern(universe.entity_name(e))?;
                    if sym.as_usize() == by_slot.len() {
                        by_slot.push(Vec::new());
                        by_entity.insert(e, sym.as_u32());
                    }
                    by_slot[sym.as_usize()].push(sid);
                }
            }
            patterns.push(IndexedPattern { sigs });
        }

        let stats = IndexStats {
            patterns: patterns.len(),
            suggestions: suggestions.len(),
            entities: by_slot.len(),
            complete_realizations,
            build_ms: t0.elapsed().as_secs_f64() * 1e3,
        };
        Ok(PatternIndex {
            seed: set.seed,
            patterns,
            suggestions,
            names,
            by_slot,
            by_entity,
            by_sig,
            stats,
        })
    }

    /// The seed type the index serves.
    pub fn seed(&self) -> TypeId {
        self.seed
    }

    /// Build-time counters.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// O(1) candidate lookup: ordinals of the patterns containing an action
    /// with `sig`, for this index's seed type.
    pub fn candidates(&self, seed: TypeId, sig: ActionSig) -> &[u32] {
        self.by_sig.get(&(seed, sig)).map_or(&[], |v| v.as_slice())
    }

    /// The suggestions for the entity named `name`, most confident first
    /// (ties keep pattern-then-partial order — exactly the batch
    /// [`wiclean_core::assist::suggest_completions`] ordering). With `sig`,
    /// only suggestions from candidate patterns matching the in-flight
    /// edit's signature are returned.
    pub fn suggest_by_name(&self, name: &str, sig: Option<ActionSig>) -> Vec<&StoredSuggestion> {
        match self.names.get(name) {
            Some(sym) => self.collect(&self.by_slot[sym.as_usize()], sig),
            None => Vec::new(),
        }
    }

    /// Integer-keyed variant of [`PatternIndex::suggest_by_name`].
    pub fn suggest(&self, entity: EntityId, sig: Option<ActionSig>) -> Vec<&StoredSuggestion> {
        match self.by_entity.get(&entity) {
            Some(&slot) => self.collect(&self.by_slot[slot as usize], sig),
            None => Vec::new(),
        }
    }

    fn collect(&self, sids: &[u32], sig: Option<ActionSig>) -> Vec<&StoredSuggestion> {
        let mut out: Vec<&StoredSuggestion> = sids
            .iter()
            .map(|&sid| &self.suggestions[sid as usize])
            .filter(|s| match sig {
                None => true,
                Some(sig) => self.patterns[s.pattern_ix as usize].sigs.contains(&sig),
            })
            .collect();
        // Stable: ties keep ascending suggestion-id order.
        out.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        out
    }

    /// Total precomputed suggestions (all entities).
    pub fn len(&self) -> usize {
        self.suggestions.len()
    }

    /// Whether the index holds no suggestions.
    pub fn is_empty(&self) -> bool {
        self.suggestions.is_empty()
    }
}

impl std::fmt::Debug for PatternIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatternIndex")
            .field("seed", &self.seed)
            .field("patterns", &self.patterns.len())
            .field("suggestions", &self.suggestions.len())
            .field("entities", &self.by_slot.len())
            .finish()
    }
}
