//! WiClean online edit assistance: the suggestion server.
//!
//! The paper frames WiClean's online mode as a plug-in that watches a
//! user's in-flight edit and proposes the rest of a mined update pattern
//! ("users making changes are prompted with suggestions to augment their
//! edits", §5). The batch path ([`wiclean_core::assist`]) answers that
//! query by re-running Algorithm 3 per request — correct, but join-bound
//! and far from interactive. This crate is the serving half:
//!
//! * [`index`] — the immutable, read-optimized [`index::PatternIndex`]:
//!   every pattern's partial-update report precomputed at load time,
//!   suggestions fully rendered, keyed by involved entity and by
//!   (seed type, action signature) through integer-id maps.
//! * [`epoch`] — [`epoch::EpochPtr`], the arc-swap-style pointer that
//!   hot-swaps whole indexes without dropping in-flight requests.
//! * [`server`] — the dependency-light TCP server (no async runtime in
//!   this container): accept thread, worker pool, per-request
//!   `catch_unwind`, newline-delimited JSON.
//! * [`protocol`] / [`client`] — the wire format and a blocking client.
//! * [`stats`] — relaxed-atomic serving counters and the log2 latency
//!   histogram behind the `stats` op.
//!
//! The differential test in `tests/differential.rs` pins the contract:
//! served suggestions equal the batch `suggest_completions` output for
//! the same pattern set and entity — including across a mid-stream hot
//! swap, where every response is attributable to exactly one epoch.

#![warn(missing_docs)]

pub mod client;
pub mod epoch;
pub mod index;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::SuggestClient;
pub use epoch::EpochPtr;
pub use index::{ActionSig, IndexLimits, IndexStats, PatternIndex, PatternSet, ServedPattern};
pub use server::{serve, ReloadFn, ServeConfig, ServeHandle};
pub use stats::{ServeStats, StatsSnapshot};
