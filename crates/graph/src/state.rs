//! The Wikipedia link-state graph `G(V, E)`.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use wiclean_revstore::Action;
use wiclean_types::{EntityId, RelId};
use wiclean_wikitext::EditOp;

/// Errors from strict action application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// Adding an edge that is already present.
    EdgeExists(EntityId, RelId, EntityId),
    /// Removing an edge that is absent.
    EdgeMissing(EntityId, RelId, EntityId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EdgeExists(u, l, v) => write!(f, "edge ({u}, {l}, {v}) already exists"),
            Self::EdgeMissing(u, l, v) => write!(f, "edge ({u}, {l}, {v}) is missing"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Link state of the encyclopedia: a set of labeled directed edges between
/// entities. Node metadata (names, types) lives in the
/// [`wiclean_types::Universe`]; the graph stores only structure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WikiGraph {
    out: HashMap<EntityId, BTreeSet<(RelId, EntityId)>>,
    edge_count: usize,
}

impl WikiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the edge `u --l--> v` is present.
    pub fn has_edge(&self, u: EntityId, l: RelId, v: EntityId) -> bool {
        self.out.get(&u).is_some_and(|set| set.contains(&(l, v)))
    }

    /// Inserts an edge, returning whether it was new.
    pub fn insert_edge(&mut self, u: EntityId, l: RelId, v: EntityId) -> bool {
        let fresh = self.out.entry(u).or_default().insert((l, v));
        if fresh {
            self.edge_count += 1;
        }
        fresh
    }

    /// Removes an edge, returning whether it was present.
    pub fn remove_edge(&mut self, u: EntityId, l: RelId, v: EntityId) -> bool {
        let removed = self.out.get_mut(&u).is_some_and(|set| set.remove(&(l, v)));
        if removed {
            self.edge_count -= 1;
        }
        removed
    }

    /// Applies one action strictly: adding a present edge or removing an
    /// absent one is an error.
    pub fn apply(&mut self, a: &Action) -> Result<(), GraphError> {
        match a.op {
            EditOp::Add => {
                if !self.insert_edge(a.source, a.rel, a.target) {
                    return Err(GraphError::EdgeExists(a.source, a.rel, a.target));
                }
            }
            EditOp::Remove => {
                if !self.remove_edge(a.source, a.rel, a.target) {
                    return Err(GraphError::EdgeMissing(a.source, a.rel, a.target));
                }
            }
        }
        Ok(())
    }

    /// Applies one action tolerantly, returning whether it changed the
    /// graph. Wikipedia's real logs occasionally contain redundant edits;
    /// tolerant application models MediaWiki's idempotent page saves.
    pub fn apply_tolerant(&mut self, a: &Action) -> bool {
        match a.op {
            EditOp::Add => self.insert_edge(a.source, a.rel, a.target),
            EditOp::Remove => self.remove_edge(a.source, a.rel, a.target),
        }
    }

    /// Applies a whole action set in timestamp order (strict). This is the
    /// paper's notion of "applying the actions on `G` in the order of their
    /// timestamps".
    pub fn apply_all(&mut self, actions: &[Action]) -> Result<(), GraphError> {
        let mut order: Vec<&Action> = actions.iter().collect();
        order.sort_by_key(|a| a.time);
        for a in order {
            self.apply(a)?;
        }
        Ok(())
    }

    /// The outgoing links of `u`.
    pub fn out_edges(&self, u: EntityId) -> impl Iterator<Item = (RelId, EntityId)> + '_ {
        self.out.get(&u).into_iter().flatten().copied()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of entities with at least one outgoing edge.
    pub fn source_count(&self) -> usize {
        self.out.values().filter(|s| !s.is_empty()).count()
    }

    /// Iterates every edge as `(u, l, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (EntityId, RelId, EntityId)> + '_ {
        self.out
            .iter()
            .flat_map(|(&u, set)| set.iter().map(move |&(l, v)| (u, l, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::from_u32(i)
    }
    fn r(i: u32) -> RelId {
        RelId::from_u32(i)
    }
    fn act(op: EditOp, s: u32, rel: u32, t: u32, time: u64) -> Action {
        Action::new(op, e(s), r(rel), e(t), time)
    }

    #[test]
    fn insert_and_remove() {
        let mut g = WikiGraph::new();
        assert!(g.insert_edge(e(1), r(0), e(2)));
        assert!(!g.insert_edge(e(1), r(0), e(2)), "duplicate insert");
        assert!(g.has_edge(e(1), r(0), e(2)));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(e(1), r(0), e(2)));
        assert!(!g.remove_edge(e(1), r(0), e(2)), "double remove");
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn strict_apply_errors() {
        let mut g = WikiGraph::new();
        g.apply(&act(EditOp::Add, 1, 0, 2, 1)).unwrap();
        assert_eq!(
            g.apply(&act(EditOp::Add, 1, 0, 2, 2)),
            Err(GraphError::EdgeExists(e(1), r(0), e(2)))
        );
        assert_eq!(
            g.apply(&act(EditOp::Remove, 1, 0, 3, 3)),
            Err(GraphError::EdgeMissing(e(1), r(0), e(3)))
        );
    }

    #[test]
    fn tolerant_apply_reports_change() {
        let mut g = WikiGraph::new();
        assert!(g.apply_tolerant(&act(EditOp::Add, 1, 0, 2, 1)));
        assert!(!g.apply_tolerant(&act(EditOp::Add, 1, 0, 2, 2)));
        assert!(g.apply_tolerant(&act(EditOp::Remove, 1, 0, 2, 3)));
        assert!(!g.apply_tolerant(&act(EditOp::Remove, 1, 0, 2, 4)));
    }

    #[test]
    fn apply_all_sorts_by_time() {
        let mut g = WikiGraph::new();
        // Remove at t=2 only valid because add happens at t=1.
        let actions = vec![
            act(EditOp::Remove, 1, 0, 2, 2),
            act(EditOp::Add, 1, 0, 2, 1),
        ];
        g.apply_all(&actions).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn reduced_and_raw_actions_yield_same_graph() {
        // The semantic core of the paper's reduction: equivalence of the
        // reduced set.
        use wiclean_revstore::reduce_actions;
        let mut base = WikiGraph::new();
        base.insert_edge(e(1), r(0), e(9));
        let actions = vec![
            act(EditOp::Remove, 1, 0, 9, 1),
            act(EditOp::Add, 1, 0, 8, 2),
            act(EditOp::Add, 1, 0, 9, 3),
            act(EditOp::Remove, 1, 0, 9, 4),
        ];
        let mut g_raw = base.clone();
        g_raw.apply_all(&actions).unwrap();
        let mut g_red = base.clone();
        g_red.apply_all(&reduce_actions(&actions)).unwrap();
        assert_eq!(g_raw, g_red);
    }

    #[test]
    fn edge_iteration_and_counts() {
        let mut g = WikiGraph::new();
        g.insert_edge(e(1), r(0), e(2));
        g.insert_edge(e(1), r(1), e(3));
        g.insert_edge(e(2), r(0), e(1));
        assert_eq!(g.edges().count(), 3);
        assert_eq!(g.source_count(), 2);
        assert_eq!(g.out_edges(e(1)).count(), 2);
        assert_eq!(g.out_edges(e(9)).count(), 0);
    }
}
