//! Full edits-graph materialization and neighborhood closures.
//!
//! Conventional graph-mining algorithms "assume that a full graph is given
//! as input" (paper §4). For Wikipedia that means fetching, parsing and
//! reducing the revision history of *every* candidate entity in the window
//! before mining starts — the cost the paper shows to be prohibitive and
//! that WiClean's incremental construction avoids. This module implements
//! the expensive path faithfully so the `PM-inc` baselines can be
//! benchmarked against it.

use crate::edits::EditsGraph;
use std::collections::HashSet;
use wiclean_revstore::{extract_actions, reduce_actions, RevisionStore};
use wiclean_types::{EntityId, Universe, Window};
use wiclean_wikitext::parse_page;

/// Materializes the edits graph `g_A` for `window` over the given entity
/// set: fetches each entity's revision history, extracts and reduces its
/// actions, and assembles the union graph.
pub fn materialize_window_graph(
    store: &RevisionStore,
    universe: &Universe,
    entities: impl IntoIterator<Item = EntityId>,
    window: &Window,
) -> EditsGraph {
    let mut g = EditsGraph::new();
    for e in entities {
        let out = extract_actions(store, universe, e, window);
        for a in reduce_actions(&out.actions) {
            g.add_action(&a);
        }
    }
    g
}

/// The entity set the paper's small-data experiment materializes: the seeds
/// plus everything "connected within one link" of the previous layer *and
/// edited in the window*, expanded `hops` times.
///
/// Link structure is taken from each page's latest snapshot before the
/// window closes (the state an editor inspecting the page would see), and
/// "edited in the window" means having at least one revision inside it.
pub fn neighborhood_closure(
    store: &RevisionStore,
    universe: &Universe,
    seeds: &[EntityId],
    window: &Window,
    hops: usize,
) -> Vec<EntityId> {
    let mut selected: HashSet<EntityId> = seeds.iter().copied().collect();
    let mut frontier: Vec<EntityId> = seeds.to_vec();

    for _ in 0..hops {
        let mut next = Vec::new();
        for &e in &frontier {
            let Some(history) = store.fetch(e) else {
                continue;
            };
            let Some(rev) = history.snapshot_at(window.end.saturating_sub(1)) else {
                continue;
            };
            for (_, target_name) in &parse_page(&rev.text).links {
                let Some(target) = universe.entities().lookup(target_name) else {
                    continue;
                };
                if selected.contains(&target) {
                    continue;
                }
                // Only entities edited within the window join the closure.
                let edited = store
                    .peek(target)
                    .is_some_and(|h| !h.revisions_in(window).is_empty());
                if edited {
                    selected.insert(target);
                    next.push(target);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    let mut out: Vec<EntityId> = selected.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiclean_types::TypeId;

    /// Three entities: A links to B, B links to C; B and C edited in the
    /// window, C edited only outside it in the second scenario.
    fn setup(c_edited_in_window: bool) -> (Universe, RevisionStore, Vec<EntityId>) {
        let mut u = Universe::new("Thing");
        let ty = u.taxonomy_mut().add("T", TypeId::from_u32(0)).unwrap();
        u.relation("linked_to");
        u.relation("x");
        let a = u.add_entity("A", ty).unwrap();
        let b = u.add_entity("B", ty).unwrap();
        let c = u.add_entity("C", ty).unwrap();

        let mut s = RevisionStore::new();
        s.record(a, 5, "{{Infobox t\n| linked_to = [[B]]\n}}\n".into());
        s.record(a, 15, "{{Infobox t\n| linked_to = [[B]]\n}}\nedit\n".into());
        s.record(b, 5, "{{Infobox t\n| linked_to = [[C]]\n}}\n".into());
        s.record(
            b,
            20,
            "{{Infobox t\n| linked_to = [[C]]\n| x = [[A]]\n}}\n".into(),
        );
        let c_time = if c_edited_in_window { 25 } else { 500 };
        s.record(c, 5, "{{Infobox t\n}}\n".into());
        s.record(c, c_time, "{{Infobox t\n| linked_to = [[A]]\n}}\n".into());
        (u, s, vec![a, b, c])
    }

    #[test]
    fn materialize_reduces_per_entity() {
        let (u, s, ids) = setup(true);
        let w = Window::new(10, 100);
        let g = materialize_window_graph(&s, &u, ids.clone(), &w);
        // A's t=15 edit changes no links; B adds x=[[A]]; C adds linked_to=[[A]].
        assert_eq!(g.edge_count(), 2);
        assert!(g.contains(ids[1]));
        assert!(g.contains(ids[2]));
    }

    #[test]
    fn closure_expands_only_to_window_edited_neighbors() {
        let (u, s, ids) = setup(true);
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        let w = Window::new(10, 100);
        let one_hop = neighborhood_closure(&s, &u, &[a], &w, 1);
        assert_eq!(one_hop, vec![a, b], "B edited in window, C not adjacent");
        let two_hop = neighborhood_closure(&s, &u, &[a], &w, 2);
        assert_eq!(two_hop, vec![a, b, c]);
    }

    #[test]
    fn closure_skips_unedited_neighbors() {
        let (u, s, ids) = setup(false);
        let (a, _b, _c) = (ids[0], ids[1], ids[2]);
        let w = Window::new(10, 100);
        let two_hop = neighborhood_closure(&s, &u, &[a], &w, 2);
        assert_eq!(two_hop.len(), 2, "C not edited in window, excluded");
    }

    #[test]
    fn closure_with_zero_hops_is_seeds() {
        let (u, s, ids) = setup(true);
        let w = Window::new(10, 100);
        let zero = neighborhood_closure(&s, &u, &[ids[0]], &w, 0);
        assert_eq!(zero, vec![ids[0]]);
    }
}
