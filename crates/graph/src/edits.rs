//! The (concrete) actions graph `g_A`.
//!
//! Given a set of actions `A`, `g_A` has one node per entity occurring in
//! `A` and one edge per action, labeled `[op, l]` (paper §3, "(Abstract)
//! actions graph"). Pattern realizations are isomorphisms into this graph;
//! the `PM-inc` baselines take the *full* window `g_A` as input, which is
//! exactly what the paper shows to be infeasible at scale.

use std::collections::{HashMap, HashSet};
use wiclean_revstore::Action;
use wiclean_types::{EntityId, RelId};
use wiclean_wikitext::EditOp;

/// Graph view of a (reduced) action set.
#[derive(Debug, Clone, Default)]
pub struct EditsGraph {
    nodes: HashSet<EntityId>,
    edges: Vec<(EditOp, EntityId, RelId, EntityId)>,
    out: HashMap<EntityId, Vec<(EditOp, RelId, EntityId)>>,
}

impl EditsGraph {
    /// Creates an empty edits graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds `g_A` from an action set (ops and edges only — timestamps are
    /// irrelevant for reduced sets).
    pub fn from_actions(actions: &[Action]) -> Self {
        let mut g = Self::new();
        for a in actions {
            g.add_action(a);
        }
        g
    }

    /// Adds one action's edge.
    pub fn add_action(&mut self, a: &Action) {
        self.nodes.insert(a.source);
        self.nodes.insert(a.target);
        self.edges.push((a.op, a.source, a.rel, a.target));
        self.out
            .entry(a.source)
            .or_default()
            .push((a.op, a.rel, a.target));
    }

    /// Number of entity nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of action edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether `e` occurs in the graph.
    pub fn contains(&self, e: EntityId) -> bool {
        self.nodes.contains(&e)
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.nodes.iter().copied()
    }

    /// All edges as `(op, u, l, v)`.
    pub fn edges(&self) -> &[(EditOp, EntityId, RelId, EntityId)] {
        &self.edges
    }

    /// Outgoing action edges of `u`.
    pub fn out_edges(&self, u: EntityId) -> impl Iterator<Item = (EditOp, RelId, EntityId)> + '_ {
        self.out.get(&u).into_iter().flatten().copied()
    }

    /// Entities reachable from `start` along action edges (directed),
    /// including `start` itself if present in the graph.
    pub fn reachable_from(&self, start: EntityId) -> HashSet<EntityId> {
        let mut seen = HashSet::new();
        if !self.nodes.contains(&start) {
            return seen;
        }
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(cur) = stack.pop() {
            for (_, _, v) in self.out_edges(cur) {
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Whether every node of the graph is reachable from `start` — the
    /// paper's connectivity condition for a pattern graph, applied here to
    /// concrete graphs in tests.
    pub fn connected_from(&self, start: EntityId) -> bool {
        self.reachable_from(start).len() == self.nodes.len() && self.contains(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::from_u32(i)
    }
    fn act(op: EditOp, s: u32, rel: u32, t: u32) -> Action {
        Action::new(op, e(s), RelId::from_u32(rel), e(t), 0)
    }

    #[test]
    fn builds_nodes_and_edges() {
        let g = EditsGraph::from_actions(&[
            act(EditOp::Add, 1, 0, 2),
            act(EditOp::Remove, 1, 0, 3),
            act(EditOp::Add, 2, 1, 1),
        ]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.contains(e(3)));
        assert!(!g.contains(e(9)));
        assert_eq!(g.out_edges(e(1)).count(), 2);
    }

    #[test]
    fn parallel_edges_with_different_ops_allowed() {
        // g_A is a multigraph: + and − on the same (u,l,v) are distinct
        // edges (e.g. a club both adding and removing players).
        let g =
            EditsGraph::from_actions(&[act(EditOp::Add, 1, 0, 2), act(EditOp::Remove, 1, 0, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn reachability_follows_direction() {
        let g = EditsGraph::from_actions(&[act(EditOp::Add, 1, 0, 2), act(EditOp::Add, 2, 0, 3)]);
        let from1 = g.reachable_from(e(1));
        assert_eq!(from1.len(), 3);
        let from3 = g.reachable_from(e(3));
        assert_eq!(from3.len(), 1, "edges are directed");
        assert!(g.connected_from(e(1)));
        assert!(!g.connected_from(e(3)));
    }

    #[test]
    fn disconnected_components_detected() {
        // Figure 2(b): splitting the player variable disconnects the graph.
        let g = EditsGraph::from_actions(&[act(EditOp::Add, 1, 0, 2), act(EditOp::Add, 3, 0, 4)]);
        assert!(!g.connected_from(e(1)));
        assert_eq!(g.reachable_from(e(1)).len(), 2);
    }

    #[test]
    fn reachable_from_absent_node_is_empty() {
        let g = EditsGraph::from_actions(&[act(EditOp::Add, 1, 0, 2)]);
        assert!(g.reachable_from(e(9)).is_empty());
    }
}
