//! Static-snapshot consistency auditing.
//!
//! The knowledge-base cleaning systems the paper compares against (§2)
//! check *static* integrity constraints over a snapshot — e.g. "if player
//! A links to club B then club B links back to player A". This module
//! implements that baseline style of checking: reconstruct the link-state
//! graph at a point in time and report reciprocity violations.
//!
//! It deliberately lacks what WiClean adds: a violation found here right
//! after the first half of a coordinated edit is indistinguishable from a
//! long-abandoned one — there is no notion of the tolerable time window.
//! The `window_aware` example-level comparison (see the integration tests)
//! shows WiClean flagging the same errors with timing context.

use crate::state::WikiGraph;
use serde::{Deserialize, Serialize};
use wiclean_revstore::RevisionStore;
use wiclean_types::{EntityId, RelId, Timestamp, Universe};
use wiclean_wikitext::parse_page;

/// A declared invariant: every `forward` link should be mirrored by a
/// `backward` link (e.g. `current_club` / `squad`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReciprocalRule {
    /// The forward relation (on the "pointing" page).
    pub forward: RelId,
    /// The expected mirror relation (on the target page).
    pub backward: RelId,
}

/// One violation: a forward link with no mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReciprocityViolation {
    /// Source of the un-mirrored link.
    pub source: EntityId,
    /// The forward relation.
    pub forward: RelId,
    /// Target whose page lacks the mirror link.
    pub target: EntityId,
    /// The missing relation.
    pub backward: RelId,
}

/// Reconstructs the full link-state graph as of `time` by parsing every
/// page's latest snapshot at or before `time`.
pub fn state_graph_at(store: &RevisionStore, universe: &Universe, time: Timestamp) -> WikiGraph {
    let mut graph = WikiGraph::new();
    for entity in store.entities() {
        let Some(history) = store.fetch(entity) else {
            continue;
        };
        let Some(revision) = history.snapshot_at(time) else {
            continue;
        };
        let page = parse_page(&revision.text);
        for (rel_name, target_name) in &page.links {
            let Some(rel) = universe.lookup_relation(rel_name) else {
                continue;
            };
            let Some(target) = universe.entities().lookup(target_name) else {
                continue;
            };
            graph.insert_edge(entity, rel, target);
        }
    }
    graph
}

/// Audits the graph against the reciprocity rules, returning every forward
/// link with no backward mirror.
pub fn audit_reciprocity(graph: &WikiGraph, rules: &[ReciprocalRule]) -> Vec<ReciprocityViolation> {
    let mut out = Vec::new();
    for (source, rel, target) in graph.edges() {
        for rule in rules {
            if rel == rule.forward && !graph.has_edge(target, rule.backward, source) {
                out.push(ReciprocityViolation {
                    source,
                    forward: rule.forward,
                    target,
                    backward: rule.backward,
                });
            }
        }
    }
    out.sort_by_key(|v| (v.source, v.forward.as_u32(), v.target));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiclean_types::TypeId;

    fn setup() -> (Universe, RevisionStore, Vec<EntityId>, RelId, RelId) {
        let mut u = Universe::new("Thing");
        let ty = u.taxonomy_mut().add("T", TypeId::from_u32(0)).unwrap();
        let cc = u.relation("current_club");
        let squad = u.relation("squad");
        let p = u.add_entity("P", ty).unwrap();
        let c = u.add_entity("C", ty).unwrap();
        let d = u.add_entity("D", ty).unwrap();

        let mut s = RevisionStore::new();
        // t=10: P points at C, C mirrors. t=50: P repoints at D, no mirror.
        s.record(p, 10, "{{Infobox t\n| current_club = [[C]]\n}}\n".into());
        s.record(c, 11, "== squad ==\n* [[P]]\n".into());
        s.record(d, 12, "{{Infobox t\n}}\n".into());
        s.record(p, 50, "{{Infobox t\n| current_club = [[D]]\n}}\n".into());
        (u, s, vec![p, c, d], cc, squad)
    }

    #[test]
    fn consistent_snapshot_has_no_violations() {
        let (u, s, ids, cc, squad) = setup();
        let graph = state_graph_at(&s, &u, 20);
        let rules = [ReciprocalRule {
            forward: cc,
            backward: squad,
        }];
        assert!(audit_reciprocity(&graph, &rules).is_empty());
        assert!(graph.has_edge(ids[0], cc, ids[1]));
    }

    #[test]
    fn half_updated_snapshot_is_flagged() {
        let (u, s, ids, cc, squad) = setup();
        let graph = state_graph_at(&s, &u, 100);
        let rules = [ReciprocalRule {
            forward: cc,
            backward: squad,
        }];
        let violations = audit_reciprocity(&graph, &rules);
        assert_eq!(
            violations,
            vec![ReciprocityViolation {
                source: ids[0],
                forward: cc,
                target: ids[2],
                backward: squad,
            }],
            "P points at D but D has no squad mirror"
        );
    }

    #[test]
    fn unrelated_relations_are_ignored() {
        let (u, s, _ids, _cc, squad) = setup();
        let graph = state_graph_at(&s, &u, 100);
        // A rule on a relation nobody violates.
        let rules = [ReciprocalRule {
            forward: squad,
            backward: squad,
        }];
        // C's squad link to P isn't mirrored by P (squad is asymmetric
        // here), so this contrived rule flags it — proving rules are
        // applied per-relation, not globally.
        assert_eq!(audit_reciprocity(&graph, &rules).len(), 1);
    }

    #[test]
    fn snapshot_time_selects_state() {
        let (u, s, ids, cc, _squad) = setup();
        let early = state_graph_at(&s, &u, 5);
        assert_eq!(early.edge_count(), 0, "nothing existed yet");
        let mid = state_graph_at(&s, &u, 20);
        assert!(mid.has_edge(ids[0], cc, ids[1]));
        let late = state_graph_at(&s, &u, 100);
        assert!(late.has_edge(ids[0], cc, ids[2]));
        assert!(!late.has_edge(ids[0], cc, ids[1]));
    }
}
