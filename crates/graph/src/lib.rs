//! Graph models for WiClean.
//!
//! Two graphs appear in the paper:
//!
//! * the **Wikipedia graph** `G(V,E)` — the link *state* at a point in time:
//!   typed entity nodes, labeled edges ([`WikiGraph`]). Action sets are
//!   applied to it, and the paper's action-set equivalence ("yield the same
//!   graph") is stated over it.
//! * the **(abstract) actions graph** `g_A` — the graph *of an action set*:
//!   one node per entity occurring in the actions, one edge per action,
//!   labeled `[op, l]` ([`EditsGraph`]). Connectivity of patterns and the
//!   full-graph-materializing baselines are defined over it.
//!
//! [`materialize`] holds the expensive full-window edits-graph construction
//! (what the `PM-inc` baselines require as input) and the incremental 1-hop
//! neighborhood closure used in the paper's small-data experiment.

pub mod audit;
pub mod edits;
pub mod materialize;
pub mod state;

pub use audit::{audit_reciprocity, state_graph_at, ReciprocalRule, ReciprocityViolation};
pub use edits::EditsGraph;
pub use materialize::{materialize_window_graph, neighborhood_closure};
pub use state::{GraphError, WikiGraph};
