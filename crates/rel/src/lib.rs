//! A small in-memory relational engine — WiClean's query substrate.
//!
//! The paper implements pattern realizations as relational tables and
//! computes pattern extension, frequency, and partial-update detection with
//! "SQL over pandas". This crate is the equivalent substrate in Rust:
//!
//! * [`Table`] — a flat, row-major relation of nullable `EntityId`
//!   values, one column per pattern variable;
//! * [`join::join_glue`] — the hash equijoin with *gluing* semantics used
//!   to extend a pattern's realization table with a new abstract action's
//!   realizations (equi-conditions on glued variables, `≠` constraints
//!   against same-type columns for freshly introduced variables);
//! * [`join::join_glue_nested`] — the identical operator computed by a
//!   conventional main-memory nested loop (the paper's `PM−join` ablation);
//! * [`join::outer_join_glue`] — the **full outer join** of Algorithm 3,
//!   whose null-padded rows are exactly the partial pattern realizations;
//! * selection/projection/distinct helpers ([`Table::rows_with_null`],
//!   [`Table::project`], [`Table::distinct_count`], …).
//!
//! Null semantics follow SQL: a null never equi-matches, and `≠`
//! constraints involving a null are vacuously satisfied (three-valued
//! logic's `UNKNOWN` is acceptable for the retention use-case of
//! Algorithm 3, where null-padded rows must survive subsequent joins).

pub mod join;
pub mod schema;
pub mod table;

pub use join::{join_glue, join_glue_nested, join_glue_sort_merge, outer_join_glue, ColumnGlue};
pub use schema::Schema;
pub use table::{Table, Value};
