//! A small in-memory relational engine — WiClean's query substrate.
//!
//! The paper implements pattern realizations as relational tables and
//! computes pattern extension, frequency, and partial-update detection with
//! "SQL over pandas". This crate is the equivalent substrate in Rust:
//!
//! * [`Table`] — a **column-major** relation of nullable `EntityId` values:
//!   one dense [`Column`] (value vector + validity bitmap) per pattern
//!   variable;
//! * [`join::join_glue`] — the hash equijoin with *gluing* semantics used
//!   to extend a pattern's realization table with a new abstract action's
//!   realizations (equi-conditions on glued variables, `≠` constraints
//!   against same-type columns for freshly introduced variables). Joins are
//!   **late-materialized**: a pair stage emits matching row-index pairs
//!   ([`join::join_glue_pairs`]), and a gather stage builds the output
//!   columns once ([`join::materialize_pairs`]). Candidate pruning counts
//!   support straight off the pair stream ([`join::distinct_left_values`])
//!   without materializing at all;
//! * [`join::join_glue_partitioned`] — the radix-partitioned parallel hash
//!   join; byte-identical output at any [`BatchRunner`] width;
//! * [`plan`] — the adaptive cost-based join planner: sampled cardinality
//!   statistics, a per-(strategy × build side × partition count) cost
//!   model, runtime re-planning with mid-join bailout, and a per-shape
//!   plan cache. Byte-identical output at any plan choice;
//! * [`join::join_glue_nested`] — the identical operator computed by a
//!   conventional main-memory nested loop (the paper's `PM−join` ablation);
//! * [`join::outer_join_glue`] — the **full outer join** of Algorithm 3,
//!   whose null-padded rows are exactly the partial pattern realizations;
//! * selection/projection/distinct helpers ([`Table::rows_with_null`],
//!   [`Table::project`], [`Table::distinct_count`], …);
//! * [`rowstore`] — the retained row-oriented reference engine, used by
//!   the differential property suite and the `fig5_join` benchmark;
//! * [`hash`] — the seed-free multiply-mix hasher backing every internal
//!   map and set (deterministic, so the parallel join's radix partitioning
//!   is stable across runs).
//!
//! Null semantics follow SQL: a null never equi-matches, and `≠`
//! constraints involving a null are vacuously satisfied (three-valued
//! logic's `UNKNOWN` is acceptable for the retention use-case of
//! Algorithm 3, where null-padded rows must survive subsequent joins).

pub mod column;
pub mod hash;
pub mod join;
pub mod plan;
pub mod rowstore;
pub mod schema;
pub mod table;

pub use column::{Column, Value, NULL_IX};
pub use hash::{EntitySet, FastHasher, FastMap, FastSet};
pub use join::{
    distinct_left_values, join_glue, join_glue_nested, join_glue_pairs, join_glue_pairs_delta,
    join_glue_pairs_delta_partitioned, join_glue_pairs_nested, join_glue_pairs_partitioned,
    join_glue_pairs_sort_merge, join_glue_partitioned, join_glue_sort_merge, materialize_pairs,
    outer_join_glue, BatchRunner, ColumnGlue, Pair, SerialRunner,
};
pub use plan::{
    choose_plan, join_glue_pairs_planned, join_stats, BuildSide, JoinPlan, JoinStats, PlanOutcome,
    Planner, PlannerSettings, Strategy,
};
pub use schema::Schema;
pub use table::Table;
