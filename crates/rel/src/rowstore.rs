//! The row-oriented reference engine.
//!
//! This is the pre-columnar implementation of [`Table`]/[`join_glue`]
//! retained verbatim: a flat row-major `Vec<Value>` buffer, fully
//! materialized joins, and `Vec`-keyed dedup. It serves two purposes:
//!
//! * **differential testing** — the property suite checks every columnar
//!   operator against this engine under set semantics;
//! * **benchmarking** — `fig5_join` measures the columnar engine's speedup
//!   against this baseline on the realization-pipeline workload.
//!
//! It is deliberately not optimized; do not use it outside tests/benches.
//!
//! [`Table`]: crate::Table
//! [`join_glue`]: crate::join_glue

use crate::column::Value;
use crate::join::{pack_key, ColumnGlue, JoinKey};
use crate::schema::Schema;
use crate::table::Table;
use std::collections::{HashMap, HashSet};
use wiclean_types::EntityId;

/// A relation stored in one flat, row-major buffer (`width` cells per row).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowTable {
    schema: Schema,
    data: Vec<Value>,
    rows: usize,
}

impl RowTable {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// Creates a table and bulk-loads rows.
    pub fn from_rows<R>(schema: Schema, rows: impl IntoIterator<Item = R>) -> Self
    where
        R: AsRef<[Value]>,
    {
        let mut t = Self::new(schema);
        for r in rows {
            t.push_row(r.as_ref());
        }
        t
    }

    /// Converts a columnar table (transposes every row).
    pub fn from_table(t: &Table) -> Self {
        let mut out = Self::new(t.schema().clone());
        for r in t.rows() {
            out.push_row(&r);
        }
        out.rows = t.len(); // preserve zero-width cardinality
        out
    }

    /// Converts to a columnar table.
    pub fn to_table(&self) -> Table {
        let mut out = Table::new(self.schema.clone());
        for r in self.rows() {
            out.push_row(r);
        }
        out
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.schema.width()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a row; its arity must match the schema.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.schema.width(),
            "row arity does not match schema {}",
            self.schema
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Row `i` as a cell slice.
    pub fn row(&self, i: usize) -> &[Value] {
        let w = self.schema.width();
        &self.data[i * w..(i + 1) * w]
    }

    /// Iterates rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        let w = self.schema.width();
        (0..self.rows).map(move |i| &self.data[i * w..(i + 1) * w])
    }

    /// The distinct non-null values of a column.
    pub fn distinct_values(&self, col: usize) -> HashSet<EntityId> {
        self.rows().filter_map(|r| r[col]).collect()
    }

    /// Projection onto the given columns (row-at-a-time copy).
    pub fn project(&self, cols: &[usize]) -> RowTable {
        let schema = Schema::new(cols.iter().map(|&c| self.schema.name(c).to_owned()));
        let mut out = RowTable::new(schema);
        let mut row = Vec::with_capacity(cols.len());
        for r in self.rows() {
            row.clear();
            row.extend(cols.iter().map(|&c| r[c]));
            out.push_row(&row);
        }
        out.rows = self.rows; // zero-width projections keep COUNT(*)
        out
    }

    /// Removes duplicate rows via a `Vec`-keyed seen-set (allocates one key
    /// per input row — the behavior the columnar dedup replaced).
    pub fn dedup(&mut self) {
        let w = self.schema.width();
        if w == 0 {
            self.rows = self.rows.min(1);
            return;
        }
        if self.data.is_empty() {
            return;
        }
        let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(self.len());
        let mut out = Vec::with_capacity(self.data.len());
        for r in self.data.chunks_exact(w) {
            if seen.insert(r.to_vec()) {
                out.extend_from_slice(r);
            }
        }
        self.data = out;
        self.rows = self.data.len() / w;
    }

    /// Sorted copy of the rows (null sorts first).
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = self.rows().map(|r| r.to_vec()).collect();
        rows.sort();
        rows
    }
}

/// Whether the (left row, right row) pair satisfies all glue conditions.
fn pair_matches(l: &[Value], r: &[Value], glue: &[ColumnGlue]) -> bool {
    for (j, g) in glue.iter().enumerate() {
        match g {
            ColumnGlue::Glued(i) => match (l[*i], r[j]) {
                (Some(a), Some(b)) if a == b => {}
                _ => return false,
            },
            ColumnGlue::New { distinct_from, .. } => {
                if let Some(b) = r[j] {
                    for i in distinct_from {
                        if l[*i] == Some(b) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Assembles the combined output row for a matched pair.
fn combined_row(l: &[Value], r: &[Value], glue: &[ColumnGlue], out: &mut Vec<Value>) {
    out.clear();
    out.extend_from_slice(l);
    for (j, g) in glue.iter().enumerate() {
        if matches!(g, ColumnGlue::New { .. }) {
            out.push(r[j]);
        }
    }
}

fn output_schema(left: &RowTable, glue: &[ColumnGlue]) -> Schema {
    let mut schema = left.schema().clone();
    for g in glue {
        if let ColumnGlue::New { name, .. } = g {
            schema.push(name.clone());
        }
    }
    schema
}

fn right_key(r: &[Value], glue: &[ColumnGlue]) -> Option<JoinKey> {
    pack_key(
        glue.iter()
            .enumerate()
            .filter(|(_, g)| matches!(g, ColumnGlue::Glued(_)))
            .map(|(j, _)| r[j]),
    )
}

fn left_key(l: &[Value], glue: &[ColumnGlue]) -> Option<JoinKey> {
    pack_key(glue.iter().filter_map(|g| match g {
        ColumnGlue::Glued(i) => Some(l[*i]),
        ColumnGlue::New { .. } => None,
    }))
}

/// Row-at-a-time hash join with gluing semantics (fully materialized).
pub fn join_glue_rows(left: &RowTable, right: &RowTable, glue: &[ColumnGlue]) -> RowTable {
    let mut out = RowTable::new(output_schema(left, glue));

    let mut index: HashMap<JoinKey, Vec<usize>> = HashMap::new();
    for (ri, r) in right.rows().enumerate() {
        if let Some(key) = right_key(r, glue) {
            index.entry(key).or_default().push(ri);
        }
    }

    let mut row = Vec::with_capacity(out.width());
    for l in left.rows() {
        let Some(key) = left_key(l, glue) else {
            continue;
        };
        let Some(candidates) = index.get(&key) else {
            continue;
        };
        for &ri in candidates {
            let r = right.row(ri);
            if pair_matches(l, r, glue) {
                combined_row(l, r, glue, &mut row);
                out.push_row(&row);
            }
        }
    }
    out
}

/// Row-at-a-time sort–merge join (per-group key clone, as in the seed).
pub fn join_glue_sort_merge_rows(
    left: &RowTable,
    right: &RowTable,
    glue: &[ColumnGlue],
) -> RowTable {
    let mut out = RowTable::new(output_schema(left, glue));

    let mut lkeys: Vec<(JoinKey, usize)> = left
        .rows()
        .enumerate()
        .filter_map(|(i, r)| left_key(r, glue).map(|k| (k, i)))
        .collect();
    let mut rkeys: Vec<(JoinKey, usize)> = right
        .rows()
        .enumerate()
        .filter_map(|(i, r)| right_key(r, glue).map(|k| (k, i)))
        .collect();
    lkeys.sort();
    rkeys.sort();

    let mut row = Vec::with_capacity(out.width());
    let (mut li, mut ri) = (0usize, 0usize);
    while li < lkeys.len() && ri < rkeys.len() {
        match lkeys[li].0.cmp(&rkeys[ri].0) {
            std::cmp::Ordering::Less => li += 1,
            std::cmp::Ordering::Greater => ri += 1,
            std::cmp::Ordering::Equal => {
                let key = lkeys[li].0.clone();
                let lhi = lkeys[li..].partition_point(|(k, _)| *k == key) + li;
                let rhi = rkeys[ri..].partition_point(|(k, _)| *k == key) + ri;
                for &(_, l_ix) in &lkeys[li..lhi] {
                    let l = left.row(l_ix);
                    for &(_, r_ix) in &rkeys[ri..rhi] {
                        let r = right.row(r_ix);
                        if pair_matches(l, r, glue) {
                            combined_row(l, r, glue, &mut row);
                            out.push_row(&row);
                        }
                    }
                }
                li = lhi;
                ri = rhi;
            }
        }
    }
    out
}

/// Row-at-a-time nested-loop join over the cross product.
pub fn join_glue_nested_rows(left: &RowTable, right: &RowTable, glue: &[ColumnGlue]) -> RowTable {
    let mut out = RowTable::new(output_schema(left, glue));
    let mut row = Vec::with_capacity(out.width());
    for l in left.rows() {
        for r in right.rows() {
            if pair_matches(l, r, glue) {
                combined_row(l, r, glue, &mut row);
                out.push_row(&row);
            }
        }
    }
    out
}

/// Row-at-a-time full outer join with gluing semantics.
pub fn outer_join_glue_rows(left: &RowTable, right: &RowTable, glue: &[ColumnGlue]) -> RowTable {
    let mut out = RowTable::new(output_schema(left, glue));

    let mut index: HashMap<JoinKey, Vec<usize>> = HashMap::new();
    for (ri, r) in right.rows().enumerate() {
        if let Some(key) = right_key(r, glue) {
            index.entry(key).or_default().push(ri);
        }
    }

    let mut right_matched = vec![false; right.len()];
    let mut row = Vec::with_capacity(out.width());

    for l in left.rows() {
        let mut l_matched = false;
        if let Some(key) = left_key(l, glue) {
            if let Some(candidates) = index.get(&key) {
                for &ri in candidates {
                    let r = right.row(ri);
                    if pair_matches(l, r, glue) {
                        combined_row(l, r, glue, &mut row);
                        out.push_row(&row);
                        l_matched = true;
                        right_matched[ri] = true;
                    }
                }
            }
        }
        if !l_matched {
            combined_row(l, &vec![None; right.width()], glue, &mut row);
            out.push_row(&row);
        }
    }

    for (ri, r) in right.rows().enumerate() {
        if right_matched[ri] {
            continue;
        }
        row.clear();
        row.resize(left.width(), None);
        for (j, g) in glue.iter().enumerate() {
            if let ColumnGlue::Glued(i) = g {
                row[*i] = r[j];
            }
        }
        for (j, g) in glue.iter().enumerate() {
            if matches!(g, ColumnGlue::New { .. }) {
                row.push(r[j]);
            }
        }
        out.push_row(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Value {
        Some(EntityId::from_u32(i))
    }

    #[test]
    fn round_trips_through_columnar() {
        let t = Table::from_rows(
            Schema::new(["a", "b"]),
            [vec![v(1), None], vec![v(2), v(3)]],
        );
        let rt = RowTable::from_table(&t);
        assert_eq!(rt.to_table(), t);
    }

    #[test]
    fn reference_join_matches_columnar_on_fixture() {
        let left = Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![v(1), v(10)], vec![v(2), v(20)], vec![v(3), v(10)]],
        );
        let right = Table::from_rows(
            Schema::new(["player", "new_team"]),
            [vec![v(1), v(11)], vec![v(2), v(20)], vec![v(9), v(30)]],
        );
        let glue = [
            ColumnGlue::Glued(0),
            ColumnGlue::New {
                name: "new_team".into(),
                distinct_from: vec![1],
            },
        ];
        let col = crate::join::join_glue(&left, &right, &glue);
        let row = join_glue_rows(
            &RowTable::from_table(&left),
            &RowTable::from_table(&right),
            &glue,
        );
        assert_eq!(col.sorted_rows(), row.sorted_rows());
        // The reference reproduces not just the set but the row order.
        assert_eq!(col.rows().collect::<Vec<_>>().len(), row.len());
    }
}
