//! Columnar storage: one value vector plus a validity bitmap per column.
//!
//! The realization engine is scan- and join-bound: every candidate pattern
//! extension probes one column's values, post-filters a handful of other
//! columns, and finally gathers whole columns into the output relation.
//! A column-major layout makes each of those steps a dense sweep over a
//! `Vec<EntityId>` (4 bytes per cell) instead of strided access into
//! row-major `Option<EntityId>` cells (8 bytes each), and it makes
//! projection a column clone instead of a row-by-row copy.
//!
//! Null representation: a validity bitmap (bit set ⇔ cell holds a value)
//! over a dense value vector. Null cells store [`NULL_SENTINEL`] in the
//! value vector, so two columns with equal value vectors and equal bitmaps
//! are equal cell-for-cell and the derived `PartialEq`/`Hash` are sound.

use wiclean_types::EntityId;

/// A cell: an entity id, or SQL `NULL` (only produced by outer joins).
pub type Value = Option<EntityId>;

/// Row index meaning "no row" in gather index lists (pads with null).
pub const NULL_IX: u32 = u32::MAX;

/// The value stored under an invalid (null) bit. Never observable through
/// the public API; it exists so derived equality/hashing stay consistent.
const NULL_SENTINEL: EntityId = EntityId::from_u32(0);

/// A 64-bit finalizer (MurmurHash3 fmix64). Deterministic across runs and
/// platforms — the join partitioner and the dedup bucketing both rely on
/// stable hashes for reproducible work splits.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// A packed validity bitmap (bit set = cell is non-null).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    #[inline]
    fn push(&mut self, set: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if set {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }
}

/// One column of a relation: dense values plus a validity bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Column {
    values: Vec<EntityId>,
    valid: Bitmap,
    nulls: usize,
}

impl Column {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty column with room for `cap` cells.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            values: Vec::with_capacity(cap),
            valid: Bitmap {
                words: Vec::with_capacity(cap / 64 + 1),
                len: 0,
            },
            nulls: 0,
        }
    }

    /// An all-valid column over the given values.
    pub fn from_values(values: Vec<EntityId>) -> Self {
        let mut valid = Bitmap::default();
        for _ in 0..values.len() {
            valid.push(true);
        }
        Self {
            values,
            valid,
            nulls: 0,
        }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of null cells.
    #[inline]
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// Whether any cell is null.
    #[inline]
    pub fn has_nulls(&self) -> bool {
        self.nulls > 0
    }

    /// Appends a cell.
    #[inline]
    pub fn push(&mut self, v: Value) {
        match v {
            Some(e) => {
                self.values.push(e);
                self.valid.push(true);
            }
            None => {
                self.values.push(NULL_SENTINEL);
                self.valid.push(false);
                self.nulls += 1;
            }
        }
    }

    /// Cell `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        if self.valid.get(i) {
            Some(self.values[i])
        } else {
            None
        }
    }

    /// Whether cell `i` is non-null.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.valid.get(i)
    }

    /// The raw value vector. Cells whose validity bit is clear hold a
    /// sentinel — pair with [`Column::is_valid`] when the column has nulls
    /// (check [`Column::has_nulls`] once to skip the bit test on the
    /// common all-valid scan).
    #[inline]
    pub fn values(&self) -> &[EntityId] {
        &self.values
    }

    /// The value of cell `i`, meaningful only when [`Column::is_valid`].
    #[inline]
    pub fn value_unchecked(&self, i: usize) -> EntityId {
        self.values[i]
    }

    /// Gathers `idx` into a new column; [`NULL_IX`] entries become null
    /// cells (outer-join padding).
    pub fn gather(&self, idx: &[u32]) -> Column {
        let mut out = Column::with_capacity(idx.len());
        if self.has_nulls() {
            for &i in idx {
                if i == NULL_IX {
                    out.push(None);
                } else {
                    out.push(self.get(i as usize));
                }
            }
        } else {
            // All-valid source: skip the per-cell bit test.
            for &i in idx {
                if i == NULL_IX {
                    out.push(None);
                } else {
                    out.push(Some(self.values[i as usize]));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Value {
        Some(EntityId::from_u32(i))
    }

    #[test]
    fn push_get_round_trip() {
        let mut c = Column::new();
        c.push(v(3));
        c.push(None);
        c.push(v(0));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), v(3));
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), v(0), "entity 0 is distinct from null");
        assert_eq!(c.null_count(), 1);
        assert!(c.has_nulls());
    }

    #[test]
    fn equality_ignores_nothing_but_cells() {
        let mut a = Column::new();
        let mut b = Column::new();
        a.push(None);
        b.push(v(0));
        // Null and entity-0 store the same raw value but differ by bitmap.
        assert_ne!(a, b);
    }

    #[test]
    fn gather_with_null_sentinel() {
        let mut c = Column::new();
        for i in 0..70 {
            c.push(v(i));
        }
        let g = c.gather(&[69, NULL_IX, 0]);
        assert_eq!(g.get(0), v(69));
        assert_eq!(g.get(1), None);
        assert_eq!(g.get(2), v(0));
        assert_eq!(g.null_count(), 1);
    }

    #[test]
    fn bitmap_crosses_word_boundaries() {
        let mut c = Column::new();
        for i in 0..130 {
            c.push(if i % 3 == 0 { None } else { v(i) });
        }
        for i in 0..130u32 {
            if i % 3 == 0 {
                assert_eq!(c.get(i as usize), None);
            } else {
                assert_eq!(c.get(i as usize), v(i));
            }
        }
    }
}
