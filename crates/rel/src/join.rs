//! Join operators with *gluing* semantics, late-materialized.
//!
//! Extending a pattern `p` with an abstract action `a` (paper §4.2) joins
//! `realizations[p]` (the left relation, one column per pattern variable)
//! with `realizations[a]` (the right relation, one column per action
//! endpoint). Each right column is either
//!
//! * **glued** onto an existing left column — an equijoin condition on the
//!   corresponding attributes, or
//! * **new** — it extends the output schema, under *inequality* conditions
//!   against the same-type left columns (the paper requires distinct
//!   variables to realize as distinct entities).
//!
//! Every strategy runs in two stages. The *pair* stage
//! ([`join_glue_pairs`], [`join_glue_pairs_sort_merge`],
//! [`join_glue_pairs_nested`], [`join_glue_pairs_partitioned`]) produces
//! the stream of matching `(left row, right row)` index pairs with the
//! `≠`-post-filter applied on column slices; the *materialize* stage
//! ([`materialize_pairs`]) gathers the output columns once at the end.
//! Candidate pruning consumes the pair stream directly
//! ([`distinct_left_values`]) and skips materialization entirely for
//! patterns that fail the frequency threshold.
//!
//! The table-in/table-out operators ([`join_glue`], [`join_glue_nested`],
//! [`join_glue_sort_merge`], [`join_glue_partitioned`],
//! [`outer_join_glue`]) are thin compositions of the two stages and keep
//! the exact output row order of the row-oriented seed implementation
//! (retained in [`crate::rowstore`] for differential testing).

use crate::column::{mix64, Value, NULL_IX};
use crate::hash::{EntitySet, FastMap};
use crate::schema::Schema;
use crate::table::Table;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use wiclean_types::EntityId;

/// How one right-hand column participates in a glue join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnGlue {
    /// Equi-joined onto the left column at this index.
    Glued(usize),
    /// Introduces a new output column.
    New {
        /// Output column name (the fresh pattern variable).
        name: String,
        /// Left columns this value must differ from (same-type variables).
        /// Comparisons against nulls are vacuously satisfied.
        distinct_from: Vec<usize>,
    },
}

/// A matched (left row, right row) index pair.
pub type Pair = (u32, u32);

/// Executes index batches on worker threads. Implemented by
/// `core::pool::MiningPool`; defined here so `rel` can parallelize without
/// depending on `core`. `run_batch` must invoke `f(i)` exactly once for
/// every `i < n` (on any thread) and return after all invocations finish.
pub trait BatchRunner: Sync {
    /// Runs `f(0..n)`, blocking until all invocations complete.
    fn run_batch(&self, n: usize, f: &(dyn Fn(usize) + Sync));
    /// Worker count (1 = serial).
    fn width(&self) -> usize;
}

/// A [`BatchRunner`] that runs everything on the caller.
pub struct SerialRunner;

impl BatchRunner for SerialRunner {
    fn run_batch(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        for i in 0..n {
            f(i);
        }
    }
    fn width(&self) -> usize {
        1
    }
}

/// A pair-stage run exceeded its output budget: the partial work was
/// discarded and the payload is the (approximate) pair count observed at
/// the abort — at least one past the budget, an underestimate of the true
/// output cardinality. See [`crate::plan`] for the re-planning loop that
/// consumes this.
pub(crate) type Overflow = usize;

fn output_schema(left: &Table, glue: &[ColumnGlue]) -> Schema {
    let mut schema = left.schema().clone();
    for g in glue {
        if let ColumnGlue::New { name, .. } = g {
            schema.push(name.clone());
        }
    }
    schema
}

pub(crate) fn validate(left: &Table, right: &Table, glue: &[ColumnGlue]) {
    assert_eq!(
        glue.len(),
        right.width(),
        "glue spec arity must match right table width"
    );
    for g in glue {
        match g {
            ColumnGlue::Glued(i) => assert!(*i < left.width(), "glued column out of range"),
            ColumnGlue::New { distinct_from, .. } => {
                for i in distinct_from {
                    assert!(*i < left.width(), "distinct_from column out of range");
                }
            }
        }
    }
}

/// The glue spec resolved to column indices: equi-join pairs in glue
/// order, and new output columns with their `≠` constraint targets.
pub(crate) struct GluePlan {
    /// (left column, right column) per `Glued` entry, in glue order.
    pub(crate) glued: Vec<(usize, usize)>,
    /// (right column, distinct-from left columns) per `New` entry, in
    /// glue order.
    new_cols: Vec<(usize, Vec<usize>)>,
}

impl GluePlan {
    pub(crate) fn new(glue: &[ColumnGlue]) -> Self {
        let mut glued = Vec::new();
        let mut new_cols = Vec::new();
        for (j, g) in glue.iter().enumerate() {
            match g {
                ColumnGlue::Glued(i) => glued.push((*i, j)),
                ColumnGlue::New { distinct_from, .. } => {
                    new_cols.push((j, distinct_from.clone()));
                }
            }
        }
        Self { glued, new_cols }
    }

    /// The glued-key columns of left row `li`, or `None` if any is null.
    pub(crate) fn left_key(&self, left: &Table, li: usize) -> Option<JoinKey> {
        pack_key(self.glued.iter().map(|&(lc, _)| left.col(lc).get(li)))
    }

    /// The glued-key columns of right row `ri`, or `None` if any is null.
    pub(crate) fn right_key(&self, right: &Table, ri: usize) -> Option<JoinKey> {
        pack_key(self.glued.iter().map(|&(_, rc)| right.col(rc).get(ri)))
    }

    /// The `≠` post-filter on a key-matched pair. SQL three-valued logic:
    /// `≠` against a null is vacuously satisfied.
    pub(crate) fn neq_ok(&self, left: &Table, li: usize, right: &Table, ri: usize) -> bool {
        for (rc, distinct_from) in &self.new_cols {
            let rcol = right.col(*rc);
            if !rcol.is_valid(ri) {
                continue;
            }
            let b = rcol.value_unchecked(ri);
            for &lc in distinct_from {
                let lcol = left.col(lc);
                if lcol.is_valid(li) && lcol.value_unchecked(li) == b {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the pair satisfies all glue conditions (equi + `≠`); used
    /// by the nested-loop strategy, which has no key index. A null never
    /// equi-matches.
    pub(crate) fn pair_matches(&self, left: &Table, li: usize, right: &Table, ri: usize) -> bool {
        for &(lc, rc) in &self.glued {
            let (l, r) = (left.col(lc), right.col(rc));
            if !l.is_valid(li) || !r.is_valid(ri) || l.value_unchecked(li) != r.value_unchecked(ri)
            {
                return false;
            }
        }
        self.neq_ok(left, li, right, ri)
    }
}

/// A row's glued-key columns, packed.
///
/// Glue arity ≤ 2 — by far the common case (patterns glue one or two
/// variables per extension) — packs into a single `u64`, avoiding a heap
/// allocation per row on the build and probe sides of every join. Wider keys
/// fall back to a `Vec`. Both sides of a join derive their key from the same
/// glue spec, so arities always agree and `Eq`/`Ord`/`Hash` are consistent:
/// the packed ordering equals the lexicographic `Vec<EntityId>` ordering.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum JoinKey {
    Small(u64),
    Big(Vec<EntityId>),
}

/// Packs glued-column values into a [`JoinKey`]; `None` if any is null (a
/// null key never equi-matches).
pub(crate) fn pack_key(vals: impl Iterator<Item = Value>) -> Option<JoinKey> {
    let (mut a, mut b) = (0u64, 0u64);
    let mut big: Vec<EntityId> = Vec::new();
    let mut n = 0usize;
    for v in vals {
        let v = v?;
        match n {
            0 => a = u64::from(v.as_u32()),
            1 => b = u64::from(v.as_u32()),
            2 => {
                big = vec![
                    EntityId::from_u32(a as u32),
                    EntityId::from_u32(b as u32),
                    v,
                ];
            }
            _ => big.push(v),
        }
        n += 1;
    }
    Some(match n {
        0 => JoinKey::Small(0),
        1 => JoinKey::Small(a),
        2 => JoinKey::Small((a << 32) | b),
        _ => JoinKey::Big(big),
    })
}

/// Deterministic hash of a key, used to assign radix partitions. Must not
/// depend on process state (`RandomState` would) — partition assignment
/// feeds the parallel join whose output is required to be byte-identical
/// across runs and thread counts.
pub(crate) fn key_hash(k: &JoinKey) -> u64 {
    match k {
        JoinKey::Small(x) => mix64(x ^ 0x9e37_79b9_7f4a_7c15),
        JoinKey::Big(v) => {
            let mut h = 0x9e37_79b9_7f4a_7c15u64;
            for e in v {
                h = mix64(h ^ u64::from(e.as_u32()));
            }
            h
        }
    }
}

/// Hash equijoin pair stage: builds a hash index over the right relation
/// keyed by its glued columns, probes with the left relation in row order,
/// and applies the `≠` post-filter. Pairs come out in (left row, right
/// build order) order — the canonical order every strategy reproduces.
pub fn join_glue_pairs(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Vec<Pair> {
    validate(left, right, glue);
    let plan = GluePlan::new(glue);
    hash_pairs(left, right, &plan)
}

pub(crate) fn hash_pairs(left: &Table, right: &Table, plan: &GluePlan) -> Vec<Pair> {
    match hash_pairs_capped(left, right, plan, None) {
        Ok(pairs) => pairs,
        Err(_) => unreachable!("uncapped join cannot overflow"),
    }
}

/// [`hash_pairs`] with an output budget: aborts mid-probe (partial work
/// discarded) once the pair count exceeds `cap`. `Ok` results are
/// byte-identical to the uncapped run.
pub(crate) fn hash_pairs_capped(
    left: &Table,
    right: &Table,
    plan: &GluePlan,
    cap: Option<usize>,
) -> Result<Vec<Pair>, Overflow> {
    let mut index: FastMap<JoinKey, Vec<u32>> = FastMap::default();
    for ri in 0..right.len() {
        if let Some(key) = plan.right_key(right, ri) {
            index.entry(key).or_default().push(ri as u32);
        }
    }
    let cap = cap.unwrap_or(usize::MAX);
    let mut pairs = Vec::new();
    for li in 0..left.len() {
        let Some(key) = plan.left_key(left, li) else {
            continue;
        };
        let Some(candidates) = index.get(&key) else {
            continue;
        };
        for &ri in candidates {
            if plan.neq_ok(left, li, right, ri as usize) {
                pairs.push((li as u32, ri));
            }
        }
        if pairs.len() > cap {
            return Err(pairs.len());
        }
    }
    Ok(pairs)
}

/// Build-side-swapped hash pair stage: indexes the **left** relation and
/// probes with the right — the planner's choice when the left side dwarfs
/// the right, trading the big build for a probe scan. Probing emits pairs
/// in right-major order; per-bucket left candidates are ascending and all
/// `(li, ri)` pairs are distinct, so one final `sort_unstable` restores
/// exactly the canonical (left row, right row) order of
/// [`join_glue_pairs`] — byte-identical output (property-tested in
/// [`crate::plan`]).
pub(crate) fn hash_pairs_build_left(
    left: &Table,
    right: &Table,
    plan: &GluePlan,
    cap: Option<usize>,
) -> Result<Vec<Pair>, Overflow> {
    let mut index: FastMap<JoinKey, Vec<u32>> = FastMap::default();
    for li in 0..left.len() {
        if let Some(key) = plan.left_key(left, li) {
            index.entry(key).or_default().push(li as u32);
        }
    }
    let cap = cap.unwrap_or(usize::MAX);
    let mut pairs = Vec::new();
    for ri in 0..right.len() {
        let Some(key) = plan.right_key(right, ri) else {
            continue;
        };
        let Some(candidates) = index.get(&key) else {
            continue;
        };
        for &li in candidates {
            if plan.neq_ok(left, li as usize, right, ri) {
                pairs.push((li, ri as u32));
            }
        }
        if pairs.len() > cap {
            return Err(pairs.len());
        }
    }
    pairs.sort_unstable();
    Ok(pairs)
}

/// Sort–merge pair stage: both relations are decorated with their glued
/// keys and sorted, and matching key groups are cross-checked. The pair
/// stream is then reordered to the canonical hash-join order so all
/// strategies materialize identical tables.
pub fn join_glue_pairs_sort_merge(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Vec<Pair> {
    validate(left, right, glue);
    let plan = GluePlan::new(glue);
    match sort_merge_pairs_capped(left, right, &plan, None) {
        Ok(pairs) => pairs,
        Err(_) => unreachable!("uncapped join cannot overflow"),
    }
}

pub(crate) fn sort_merge_pairs_capped(
    left: &Table,
    right: &Table,
    plan: &GluePlan,
    cap: Option<usize>,
) -> Result<Vec<Pair>, Overflow> {
    let mut lkeys: Vec<(JoinKey, u32)> = (0..left.len())
        .filter_map(|i| plan.left_key(left, i).map(|k| (k, i as u32)))
        .collect();
    let mut rkeys: Vec<(JoinKey, u32)> = (0..right.len())
        .filter_map(|i| plan.right_key(right, i).map(|k| (k, i as u32)))
        .collect();
    lkeys.sort();
    rkeys.sort();

    let cap = cap.unwrap_or(usize::MAX);
    let mut pairs = Vec::new();
    let (mut li, mut ri) = (0usize, 0usize);
    while li < lkeys.len() && ri < rkeys.len() {
        match lkeys[li].0.cmp(&rkeys[ri].0) {
            std::cmp::Ordering::Less => li += 1,
            std::cmp::Ordering::Greater => ri += 1,
            std::cmp::Ordering::Equal => {
                // Delimit the equal-key groups on both sides (compared by
                // reference — no key clone per group).
                let key = &lkeys[li].0;
                let lhi = lkeys[li..].partition_point(|(k, _)| k == key) + li;
                let rhi = rkeys[ri..].partition_point(|(k, _)| k == key) + ri;
                for &(_, l_ix) in &lkeys[li..lhi] {
                    for &(_, r_ix) in &rkeys[ri..rhi] {
                        if plan.neq_ok(left, l_ix as usize, right, r_ix as usize) {
                            pairs.push((l_ix, r_ix));
                        }
                    }
                }
                if pairs.len() > cap {
                    return Err(pairs.len());
                }
                li = lhi;
                ri = rhi;
            }
        }
    }
    // Canonical order: left row, then right row. Within one key group the
    // right side is already ascending, but left rows sharing a key arrive
    // grouped by the sort, not by row number.
    pairs.sort_unstable();
    Ok(pairs)
}

/// Nested-loop pair stage over the cross product — the paper's `PM−join`
/// baseline. Already emits the canonical (left, right) order.
pub fn join_glue_pairs_nested(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Vec<Pair> {
    validate(left, right, glue);
    let plan = GluePlan::new(glue);
    match nested_pairs_capped(left, right, &plan, None) {
        Ok(pairs) => pairs,
        Err(_) => unreachable!("uncapped join cannot overflow"),
    }
}

pub(crate) fn nested_pairs_capped(
    left: &Table,
    right: &Table,
    plan: &GluePlan,
    cap: Option<usize>,
) -> Result<Vec<Pair>, Overflow> {
    let cap = cap.unwrap_or(usize::MAX);
    let mut pairs = Vec::new();
    for li in 0..left.len() {
        for ri in 0..right.len() {
            if plan.pair_matches(left, li, right, ri) {
                pairs.push((li as u32, ri as u32));
            }
        }
        if pairs.len() > cap {
            return Err(pairs.len());
        }
    }
    Ok(pairs)
}

/// Inputs smaller than this on the probe side are not worth fanning out.
/// With the adaptive planner enabled (the default) these two constants are
/// superseded by its cost model; they remain the fixed-heuristic gate of
/// [`join_glue_pairs_partitioned`] — the planner-off fallback.
pub(crate) const PARALLEL_MIN_LEFT: usize = 4096;
/// Build sides smaller than this are not worth partitioning.
pub(crate) const PARALLEL_MIN_RIGHT: usize = 512;

/// Radix-partitioned parallel hash join pair stage.
///
/// The build side is split into partitions by the high bits of a
/// deterministic key hash; partition indexes are built as one batch on the
/// runner, then contiguous probe-side chunks are probed as a second batch
/// and their pair streams concatenated in chunk order. Partition
/// assignment, per-bucket order, and chunk concatenation are all
/// independent of the worker count, so the result is **byte-identical** to
/// [`join_glue_pairs`] at any `width()` — the same determinism contract
/// the mining pool established. Small inputs fall back to the serial
/// strategy.
pub fn join_glue_pairs_partitioned(
    left: &Table,
    right: &Table,
    glue: &[ColumnGlue],
    runner: &dyn BatchRunner,
) -> Vec<Pair> {
    validate(left, right, glue);
    if runner.width() <= 1 || left.len() < PARALLEL_MIN_LEFT || right.len() < PARALLEL_MIN_RIGHT {
        let plan = GluePlan::new(glue);
        return hash_pairs(left, right, &plan);
    }
    let plan = GluePlan::new(glue);
    partitioned_pairs(left, right, &plan, runner)
}

/// Runs `f` over `0..n` on the runner and collects results in index order.
pub(crate) fn par_map<R: Send>(
    runner: &dyn BatchRunner,
    n: usize,
    f: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    runner.run_batch(n, &|i| {
        let r = f(i);
        *slots[i].lock().unwrap() = Some(r);
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("batch task did not run"))
        .collect()
}

fn partitioned_pairs(
    left: &Table,
    right: &Table,
    plan: &GluePlan,
    runner: &dyn BatchRunner,
) -> Vec<Pair> {
    match partitioned_pairs_capped(
        left,
        right,
        plan,
        runner,
        default_partitions(runner),
        false,
        None,
    ) {
        Ok(pairs) => pairs,
        Err(_) => unreachable!("uncapped join cannot overflow"),
    }
}

/// The fixed-heuristic radix fanout: twice the runner width, a power of
/// two. The adaptive planner may choose any other power of two in `2..=64`.
pub(crate) fn default_partitions(runner: &dyn BatchRunner) -> usize {
    (runner.width() * 2).next_power_of_two().clamp(2, 64)
}

/// Radix-partitioned pair stage with a selectable build side, partition
/// count, and output budget.
///
/// `parts` must be a power of two in `2..=64`. With `build_left = false`
/// (the classic shape) the right side is scattered and indexed and the
/// left side probes in contiguous chunks, so pairs come out in canonical
/// (left row, right row) order directly. With `build_left = true` the
/// roles swap: the left side is indexed and right-side probe chunks emit
/// right-major pairs, and one final `sort_unstable` restores the
/// canonical order — the pair set is identical and pairs are distinct,
/// so the sorted stream is byte-identical to the build-right stream.
///
/// `cap` is the re-planning budget: probe chunks publish their emitted
/// pair counts to a shared counter and cooperatively abort once the
/// total exceeds the cap, returning `Err` with the approximate count
/// observed at abort. The success path is byte-identical to the
/// uncapped run (the counter never alters what is emitted, only whether
/// the join runs to completion).
pub(crate) fn partitioned_pairs_capped(
    left: &Table,
    right: &Table,
    plan: &GluePlan,
    runner: &dyn BatchRunner,
    parts: usize,
    build_left: bool,
    cap: Option<usize>,
) -> Result<Vec<Pair>, Overflow> {
    assert!(
        parts.is_power_of_two() && (2..=64).contains(&parts),
        "partition count must be a power of two in 2..=64"
    );
    let shift = 64 - parts.trailing_zeros();
    let (build, probe) = if build_left {
        (left, right)
    } else {
        (right, left)
    };
    let build_key = |bi: usize| {
        if build_left {
            plan.left_key(build, bi)
        } else {
            plan.right_key(build, bi)
        }
    };

    // Scatter the build side: key + radix partition per row, row order
    // preserved within each partition (so per-bucket candidate lists come
    // out ascending, exactly as the serial build produces them).
    let mut bkeys: Vec<Option<JoinKey>> = Vec::with_capacity(build.len());
    let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); parts];
    for bi in 0..build.len() {
        let key = build_key(bi);
        if let Some(k) = &key {
            part_rows[(key_hash(k) >> shift) as usize].push(bi as u32);
        }
        bkeys.push(key);
    }

    // Build one hash index per partition, as a pool batch.
    let indexes: Vec<FastMap<JoinKey, Vec<u32>>> = par_map(runner, parts, |p| {
        let mut index: FastMap<JoinKey, Vec<u32>> = FastMap::default();
        for &bi in &part_rows[p] {
            let key = bkeys[bi as usize].clone().expect("scattered row has key");
            index.entry(key).or_default().push(bi);
        }
        index
    });

    // Probe contiguous chunks of the probe side in parallel; concatenating
    // the chunk results in chunk order restores the serial probe order.
    // The budget is enforced cooperatively: each chunk publishes its
    // emitted count per probe row and bails once the global total exceeds
    // the cap.
    let cap_val = cap.unwrap_or(usize::MAX);
    let emitted = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let tasks = (runner.width() * 4).clamp(1, probe.len().max(1));
    let chunk = probe.len().div_ceil(tasks).max(1);
    let chunk_pairs: Vec<Vec<Pair>> = par_map(runner, tasks, |t| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(probe.len());
        let mut pairs = Vec::new();
        let mut published = 0usize;
        for pi in lo..hi {
            if cap.is_some() && pi % 64 == 0 && aborted.load(Ordering::Relaxed) {
                return pairs;
            }
            let key = if build_left {
                plan.right_key(probe, pi)
            } else {
                plan.left_key(probe, pi)
            };
            let Some(key) = key else {
                continue;
            };
            let index = &indexes[(key_hash(&key) >> shift) as usize];
            let Some(candidates) = index.get(&key) else {
                continue;
            };
            for &bi in candidates {
                let (li, ri) = if build_left {
                    (bi, pi as u32)
                } else {
                    (pi as u32, bi)
                };
                if plan.neq_ok(left, li as usize, right, ri as usize) {
                    pairs.push((li, ri));
                }
            }
            if cap.is_some() && pairs.len() - published >= 256 {
                let total = emitted.fetch_add(pairs.len() - published, Ordering::Relaxed)
                    + pairs.len()
                    - published;
                published = pairs.len();
                if total > cap_val {
                    aborted.store(true, Ordering::Relaxed);
                    return pairs;
                }
            }
        }
        if cap.is_some() {
            let total = emitted.fetch_add(pairs.len() - published, Ordering::Relaxed) + pairs.len()
                - published;
            if total > cap_val {
                aborted.store(true, Ordering::Relaxed);
            }
        }
        pairs
    });

    let total: usize = chunk_pairs.iter().map(Vec::len).sum();
    if aborted.load(Ordering::Relaxed) || total > cap_val {
        return Err(total.max(emitted.load(Ordering::Relaxed)));
    }
    let mut pairs = Vec::with_capacity(total);
    for mut c in chunk_pairs {
        pairs.append(&mut c);
    }
    if build_left {
        // Right-major emission within each chunk; restore canonical order.
        pairs.sort_unstable();
    }
    Ok(pairs)
}

/// Delta-aware pair stage for append-only growth (the streaming miner).
///
/// Both inputs are **prefix-stable**: `left` rows below `left_old` and
/// `right` rows below `right_old` are exactly the rows a previous join
/// saw, and rows at or beyond those marks have been appended since. Emits
/// exactly the pairs of the full join that touch at least one appended
/// row — `join_glue_pairs(left, right, glue)` minus the pairs of the
/// prefix-only join — in canonical (left row, right row) order. The old
/// pair stream plus this delta is therefore the full pair stream as a
/// set, letting callers extend support sets and materialized tables
/// without re-joining the prefix.
///
/// The deltas are the build sides: part one indexes `Δright` and probes
/// the stable left prefix in row order (canonical order falls out); part
/// two indexes `Δleft` and probes the entire right side, then sorts its
/// small tail back to canonical order. The two parts cover disjoint
/// left-row ranges, so the concatenation is globally ordered.
pub fn join_glue_pairs_delta(
    left: &Table,
    left_old: usize,
    right: &Table,
    right_old: usize,
    glue: &[ColumnGlue],
) -> Vec<Pair> {
    validate(left, right, glue);
    let plan = GluePlan::new(glue);
    delta_pairs(left, left_old, right, right_old, &plan, &SerialRunner)
}

/// [`join_glue_pairs_delta`] with the probe sides chunked across a
/// [`BatchRunner`]; byte-identical to the serial variant at any
/// `width()` (chunk concatenation restores probe order, and part two is
/// sorted regardless).
pub fn join_glue_pairs_delta_partitioned(
    left: &Table,
    left_old: usize,
    right: &Table,
    right_old: usize,
    glue: &[ColumnGlue],
    runner: &dyn BatchRunner,
) -> Vec<Pair> {
    validate(left, right, glue);
    let plan = GluePlan::new(glue);
    delta_pairs(left, left_old, right, right_old, &plan, runner)
}

fn delta_pairs(
    left: &Table,
    left_old: usize,
    right: &Table,
    right_old: usize,
    plan: &GluePlan,
    runner: &dyn BatchRunner,
) -> Vec<Pair> {
    assert!(left_old <= left.len(), "left_old beyond left length");
    assert!(right_old <= right.len(), "right_old beyond right length");

    // Part one: stable left prefix × appended right rows. The delta is
    // the build side; per-bucket row order is ascending (insertion order)
    // and the prefix probes in row order, so pairs come out canonical.
    // An empty build side can't match anything — skip the probe scan
    // entirely (the common one-sided-growth case pays for one part only).
    let mut index: FastMap<JoinKey, Vec<u32>> = FastMap::default();
    for ri in right_old..right.len() {
        if let Some(key) = plan.right_key(right, ri) {
            index.entry(key).or_default().push(ri as u32);
        }
    }
    let mut pairs = if index.is_empty() {
        Vec::new()
    } else {
        probe_left_range(left, 0, left_old, right, plan, &index, runner)
    };

    // Part two: appended left rows × the full right side. Probing by
    // right row emits (right, left) order; the tail is small, so sort it
    // back to canonical and append — its left rows all sit at or past
    // `left_old`, keeping the concatenation globally ordered.
    index.clear();
    for li in left_old..left.len() {
        if let Some(key) = plan.left_key(left, li) {
            index.entry(key).or_default().push(li as u32);
        }
    }
    let mut tail = if index.is_empty() {
        Vec::new()
    } else {
        probe_right_range(left, right, plan, &index, runner)
    };
    tail.sort_unstable();
    pairs.append(&mut tail);
    pairs
}

/// Probes left rows `lo..hi` against an index over right rows, in left
/// row order (chunk-parallel when the range is large).
fn probe_left_range(
    left: &Table,
    lo: usize,
    hi: usize,
    right: &Table,
    plan: &GluePlan,
    index: &FastMap<JoinKey, Vec<u32>>,
    runner: &dyn BatchRunner,
) -> Vec<Pair> {
    if index.is_empty() || lo >= hi {
        return Vec::new();
    }
    let probe_one = |li: usize, pairs: &mut Vec<Pair>| {
        let Some(key) = plan.left_key(left, li) else {
            return;
        };
        let Some(candidates) = index.get(&key) else {
            return;
        };
        for &ri in candidates {
            if plan.neq_ok(left, li, right, ri as usize) {
                pairs.push((li as u32, ri));
            }
        }
    };
    let n = hi - lo;
    if runner.width() <= 1 || n < PARALLEL_MIN_LEFT {
        let mut pairs = Vec::new();
        for li in lo..hi {
            probe_one(li, &mut pairs);
        }
        return pairs;
    }
    let tasks = (runner.width() * 4).min(n);
    let chunk = n.div_ceil(tasks);
    let chunk_pairs = par_map(runner, tasks, |t| {
        let clo = lo + t * chunk;
        let chi = (lo + (t + 1) * chunk).min(hi);
        let mut pairs = Vec::new();
        for li in clo..chi {
            probe_one(li, &mut pairs);
        }
        pairs
    });
    chunk_pairs.concat()
}

/// Probes every right row against an index over left rows, emitting
/// (left, right) pairs in right-major order (chunk-parallel when the
/// right side is large); callers sort the result.
fn probe_right_range(
    left: &Table,
    right: &Table,
    plan: &GluePlan,
    index: &FastMap<JoinKey, Vec<u32>>,
    runner: &dyn BatchRunner,
) -> Vec<Pair> {
    if index.is_empty() || right.is_empty() {
        return Vec::new();
    }
    let probe_one = |ri: usize, pairs: &mut Vec<Pair>| {
        let Some(key) = plan.right_key(right, ri) else {
            return;
        };
        let Some(candidates) = index.get(&key) else {
            return;
        };
        for &li in candidates {
            if plan.neq_ok(left, li as usize, right, ri) {
                pairs.push((li, ri as u32));
            }
        }
    };
    let n = right.len();
    if runner.width() <= 1 || n < PARALLEL_MIN_LEFT {
        let mut pairs = Vec::new();
        for ri in 0..n {
            probe_one(ri, &mut pairs);
        }
        return pairs;
    }
    let tasks = (runner.width() * 4).min(n);
    let chunk = n.div_ceil(tasks);
    let chunk_pairs = par_map(runner, tasks, |t| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        let mut pairs = Vec::new();
        for ri in lo..hi {
            probe_one(ri, &mut pairs);
        }
        pairs
    });
    chunk_pairs.concat()
}

/// Materialize stage: gathers the output columns of a pair stream once —
/// every left column by the left indices, every `New` right column by the
/// right indices.
pub fn materialize_pairs(
    left: &Table,
    right: &Table,
    glue: &[ColumnGlue],
    pairs: &[Pair],
) -> Table {
    validate(left, right, glue);
    let plan = GluePlan::new(glue);
    let lidx: Vec<u32> = pairs.iter().map(|&(li, _)| li).collect();
    let ridx: Vec<u32> = pairs.iter().map(|&(_, ri)| ri).collect();
    let mut cols = Vec::with_capacity(left.width() + plan.new_cols.len());
    for c in 0..left.width() {
        cols.push(left.col(c).gather(&lidx));
    }
    for (rc, _) in &plan.new_cols {
        cols.push(right.col(*rc).gather(&ridx));
    }
    Table::from_parts(output_schema(left, glue), cols, pairs.len())
}

/// Distinct non-null values of `left[col]` over a pair stream — the
/// semi-join side of the frequency fast path: candidate support is counted
/// from the matched pairs without materializing the joined table.
pub fn distinct_left_values(left: &Table, col: usize, pairs: &[Pair]) -> EntitySet {
    let c = left.col(col);
    let mut set = EntitySet::default();
    for &(li, _) in pairs {
        if let Some(v) = c.get(li as usize) {
            set.insert(v);
        }
    }
    set
}

/// Hash equijoin with gluing semantics (pairs + materialize).
///
/// ```
/// use wiclean_rel::{join_glue, ColumnGlue, Schema, Table};
/// use wiclean_types::EntityId;
///
/// let v = |i| Some(EntityId::from_u32(i));
/// let players = Table::from_rows(Schema::new(["player", "old"]), [vec![v(1), v(10)]]);
/// let joins = Table::from_rows(Schema::new(["player", "new"]), [vec![v(1), v(11)]]);
/// let glue = [
///     ColumnGlue::Glued(0), // same player
///     ColumnGlue::New { name: "new".into(), distinct_from: vec![1] }, // new ≠ old
/// ];
/// let out = join_glue(&players, &joins, &glue);
/// assert_eq!(out.sorted_rows(), vec![vec![v(1), v(10), v(11)]]);
/// ```
pub fn join_glue(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Table {
    let pairs = join_glue_pairs(left, right, glue);
    materialize_pairs(left, right, glue, &pairs)
}

/// The same operator computed by sort–merge; semantically identical
/// (property-tested).
pub fn join_glue_sort_merge(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Table {
    let pairs = join_glue_pairs_sort_merge(left, right, glue);
    materialize_pairs(left, right, glue, &pairs)
}

/// The same operator computed by a conventional main-memory nested loop
/// over the cross product — the paper's `PM−join` baseline. Semantically
/// identical to [`join_glue`] (property-tested), asymptotically slower.
pub fn join_glue_nested(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Table {
    let pairs = join_glue_pairs_nested(left, right, glue);
    materialize_pairs(left, right, glue, &pairs)
}

/// The same operator computed by the radix-partitioned parallel hash join;
/// byte-identical to [`join_glue`] at any worker count.
pub fn join_glue_partitioned(
    left: &Table,
    right: &Table,
    glue: &[ColumnGlue],
    runner: &dyn BatchRunner,
) -> Table {
    let pairs = join_glue_pairs_partitioned(left, right, glue, runner);
    materialize_pairs(left, right, glue, &pairs)
}

/// Full outer join with gluing semantics (Algorithm 3).
///
/// Output rows:
/// * matched pairs — as in [`join_glue`];
/// * unmatched **left** rows — retained, new columns padded with nulls
///   (a partial pattern realization missing the new action);
/// * unmatched **right** rows — retained, with glued output columns taking
///   the right values and all remaining left columns null (an action
///   realization with no surrounding pattern).
///
/// Late-materialized like the inner joins: the pair stream uses
/// [`NULL_IX`] for the missing side and the gather stage resolves glued
/// columns from whichever side is present.
pub fn outer_join_glue(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Table {
    validate(left, right, glue);
    let plan = GluePlan::new(glue);

    let mut index: FastMap<JoinKey, Vec<u32>> = FastMap::default();
    for ri in 0..right.len() {
        if let Some(key) = plan.right_key(right, ri) {
            index.entry(key).or_default().push(ri as u32);
        }
    }

    let mut right_matched = vec![false; right.len()];
    let mut pairs: Vec<Pair> = Vec::new();
    for li in 0..left.len() {
        let mut l_matched = false;
        if let Some(key) = plan.left_key(left, li) {
            if let Some(candidates) = index.get(&key) {
                for &ri in candidates {
                    if plan.neq_ok(left, li, right, ri as usize) {
                        pairs.push((li as u32, ri));
                        l_matched = true;
                        right_matched[ri as usize] = true;
                    }
                }
            }
        }
        if !l_matched {
            pairs.push((li as u32, NULL_IX));
        }
    }
    for (ri, matched) in right_matched.iter().enumerate() {
        if !matched {
            pairs.push((NULL_IX, ri as u32));
        }
    }

    // Gather. Left columns take the left value when present; a glued left
    // column falls back to its right counterpart on right-only rows (the
    // last glue entry wins when several right columns glue onto one left
    // column, matching the row-at-a-time reference).
    let lidx: Vec<u32> = pairs.iter().map(|&(li, _)| li).collect();
    let ridx: Vec<u32> = pairs.iter().map(|&(_, ri)| ri).collect();
    let mut cols = Vec::with_capacity(left.width() + plan.new_cols.len());
    for c in 0..left.width() {
        let glued_rc = plan
            .glued
            .iter()
            .rev()
            .find(|&&(lc, _)| lc == c)
            .map(|&(_, rc)| rc);
        match glued_rc {
            None => cols.push(left.col(c).gather(&lidx)),
            Some(rc) => {
                let mut col = crate::column::Column::with_capacity(pairs.len());
                let (lcol, rcol) = (left.col(c), right.col(rc));
                for &(li, ri) in &pairs {
                    if li != NULL_IX {
                        col.push(lcol.get(li as usize));
                    } else {
                        col.push(rcol.get(ri as usize));
                    }
                }
                cols.push(col);
            }
        }
    }
    for (rc, _) in &plan.new_cols {
        cols.push(right.col(*rc).gather(&ridx));
    }
    Table::from_parts(output_schema(left, glue), cols, pairs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Value {
        Some(EntityId::from_u32(i))
    }

    /// realizations[p]: pattern {−(player, club, team)} with columns
    /// [player, old_team].
    fn left_table() -> Table {
        Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![v(1), v(10)], vec![v(2), v(20)], vec![v(3), v(10)]],
        )
    }

    /// realizations[a]: action {+(player, club, team)} with columns
    /// [player, new_team].
    fn right_table() -> Table {
        Table::from_rows(
            Schema::new(["player", "new_team"]),
            [
                vec![v(1), v(11)],
                vec![v(2), v(20)], // same team as old → violates ≠
                vec![v(9), v(30)], // no matching player
            ],
        )
    }

    fn glue() -> Vec<ColumnGlue> {
        vec![
            ColumnGlue::Glued(0),
            ColumnGlue::New {
                name: "new_team".into(),
                distinct_from: vec![1],
            },
        ]
    }

    #[test]
    fn hash_join_glues_and_filters() {
        let out = join_glue(&left_table(), &right_table(), &glue());
        assert_eq!(out.schema().names(), &["player", "old_team", "new_team"]);
        // Player 1: old 10 → new 11 (kept). Player 2: 20 → 20 (≠ fails).
        assert_eq!(out.sorted_rows(), vec![vec![v(1), v(10), v(11)]]);
    }

    #[test]
    fn nested_loop_agrees_with_hash() {
        let h = join_glue(&left_table(), &right_table(), &glue());
        let n = join_glue_nested(&left_table(), &right_table(), &glue());
        assert_eq!(h.sorted_rows(), n.sorted_rows());
    }

    #[test]
    fn sort_merge_agrees_with_hash() {
        let h = join_glue(&left_table(), &right_table(), &glue());
        let m = join_glue_sort_merge(&left_table(), &right_table(), &glue());
        assert_eq!(h.sorted_rows(), m.sorted_rows());
    }

    #[test]
    fn sort_merge_handles_duplicate_keys() {
        let left = Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![v(1), v(10)], vec![v(1), v(20)], vec![v(2), v(30)]],
        );
        let right = Table::from_rows(
            Schema::new(["player", "new_team"]),
            [vec![v(1), v(11)], vec![v(1), v(12)]],
        );
        let h = join_glue(&left, &right, &glue());
        let m = join_glue_sort_merge(&left, &right, &glue());
        assert_eq!(h.sorted_rows(), m.sorted_rows());
        assert_eq!(m.len(), 4, "2 left × 2 right key-1 rows");
    }

    #[test]
    fn sort_merge_skips_null_keys() {
        let left = Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![None, v(10)], vec![v(1), v(10)]],
        );
        let m = join_glue_sort_merge(&left, &right_table(), &glue());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn pair_stages_agree_exactly() {
        // The pair streams (not just the materialized sets) must coincide:
        // the miner's fast path counts support off the raw stream.
        let (l, r, g) = (left_table(), right_table(), glue());
        let h = join_glue_pairs(&l, &r, &g);
        assert_eq!(h, join_glue_pairs_sort_merge(&l, &r, &g));
        assert_eq!(h, join_glue_pairs_nested(&l, &r, &g));
        assert_eq!(h, join_glue_pairs_partitioned(&l, &r, &g, &SerialRunner));
    }

    #[test]
    fn glue_all_columns_is_semijoin_shape() {
        // Gluing both right columns onto left columns keeps only matching
        // left rows, unextended.
        let right = Table::from_rows(
            Schema::new(["p", "t"]),
            [vec![v(1), v(10)], vec![v(2), v(99)]],
        );
        let out = join_glue(
            &left_table(),
            &right,
            &[ColumnGlue::Glued(0), ColumnGlue::Glued(1)],
        );
        assert_eq!(out.schema().width(), 2);
        assert_eq!(out.sorted_rows(), vec![vec![v(1), v(10)]]);
    }

    #[test]
    fn null_left_key_never_matches() {
        let left = Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![None, v(10)], vec![v(1), v(10)]],
        );
        let out = join_glue(&left, &right_table(), &glue());
        assert_eq!(out.len(), 1, "null player cannot equi-match");
    }

    #[test]
    fn neq_against_null_is_vacuous() {
        let left = Table::from_rows(Schema::new(["player", "old_team"]), [vec![v(2), None]]);
        // Right: player 2, new team 20. old_team is null → ≠ passes.
        let out = join_glue(&left, &right_table(), &glue());
        assert_eq!(out.sorted_rows(), vec![vec![v(2), None, v(20)]]);
    }

    #[test]
    fn outer_join_retains_unmatched_left() {
        let out = outer_join_glue(&left_table(), &right_table(), &glue());
        let rows = out.sorted_rows();
        // Matched: (1, 10, 11).
        assert!(rows.contains(&vec![v(1), v(10), v(11)]));
        // Unmatched left: players 2 (≠ failed) and 3 (no right row).
        assert!(rows.contains(&vec![v(2), v(20), None]));
        assert!(rows.contains(&vec![v(3), v(10), None]));
        // Unmatched right: player 9's action, no surrounding pattern, and
        // player 2's action (the ≠-failing pair leaves both sides
        // unmatched, as in SQL).
        assert!(rows.contains(&vec![v(9), None, v(30)]));
        assert!(rows.contains(&vec![v(2), None, v(20)]));
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn outer_join_null_rows_are_detectable() {
        let out = outer_join_glue(&left_table(), &right_table(), &glue());
        let partial = out.rows_with_null();
        assert_eq!(partial.len(), 4);
    }

    #[test]
    fn outer_join_on_empty_right_pads_all_left() {
        let right = Table::new(Schema::new(["player", "new_team"]));
        let out = outer_join_glue(&left_table(), &right, &glue());
        assert_eq!(out.len(), 3);
        assert!(out.rows().all(|r| r[2].is_none()));
    }

    #[test]
    fn outer_join_on_empty_left_pads_all_right() {
        let left = Table::new(Schema::new(["player", "old_team"]));
        let out = outer_join_glue(&left, &right_table(), &glue());
        assert_eq!(out.len(), 3);
        assert!(out.rows().all(|r| r[1].is_none()));
        // Glued column carries the right value.
        assert!(out.rows().all(|r| r[0].is_some()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn glue_arity_checked() {
        join_glue(&left_table(), &right_table(), &[ColumnGlue::Glued(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn glue_bounds_checked() {
        join_glue(
            &left_table(),
            &right_table(),
            &[
                ColumnGlue::Glued(7),
                ColumnGlue::New {
                    name: "x".into(),
                    distinct_from: vec![],
                },
            ],
        );
    }

    #[test]
    fn multiple_matches_fan_out() {
        let left = Table::from_rows(Schema::new(["player", "old_team"]), [vec![v(1), v(10)]]);
        let right = Table::from_rows(
            Schema::new(["player", "new_team"]),
            [vec![v(1), v(11)], vec![v(1), v(12)]],
        );
        let out = join_glue(&left, &right, &glue());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn outer_join_cardinality_survives_empty_projection() {
        // COUNT(*) over a join result must not collapse when projecting away
        // every column (the zero-width Table regression).
        let out = outer_join_glue(&left_table(), &right_table(), &glue());
        let counted = out.project(&[]);
        assert_eq!(counted.width(), 0);
        assert_eq!(counted.len(), out.len());
        assert_eq!(counted.rows().count(), out.len());
    }

    #[test]
    fn distinct_left_values_matches_materialized_support() {
        let (l, r, g) = (left_table(), right_table(), glue());
        let pairs = join_glue_pairs(&l, &r, &g);
        let fast = distinct_left_values(&l, 0, &pairs);
        let mut full = materialize_pairs(&l, &r, &g, &pairs);
        full.dedup();
        assert_eq!(fast, full.distinct_values(0));
    }

    /// A thread-per-task runner for exercising the partitioned join with
    /// real concurrency (core's MiningPool is not visible from here).
    struct TestRunner(usize);

    impl BatchRunner for TestRunner {
        fn width(&self) -> usize {
            self.0
        }
        fn run_batch(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..self.0.min(n).max(1) {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= n {
                            break;
                        }
                        f(i);
                    });
                }
            });
        }
    }

    /// Pseudo-random tables big enough to clear the parallel gate.
    fn big_tables() -> (Table, Table) {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move |m: u32| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % u64::from(m)) as u32
        };
        let mut left = Table::new(Schema::new(["player", "old_team"]));
        for _ in 0..PARALLEL_MIN_LEFT + 500 {
            left.push_row(&[v(next(1500)), v(next(40))]);
        }
        let mut right = Table::new(Schema::new(["player", "new_team"]));
        for _ in 0..PARALLEL_MIN_RIGHT + 700 {
            right.push_row(&[v(next(1500)), v(next(40))]);
        }
        (left, right)
    }

    #[test]
    fn partitioned_join_is_byte_identical_across_widths() {
        let (left, right) = big_tables();
        let g = glue();
        let serial = join_glue_pairs(&left, &right, &g);
        assert!(!serial.is_empty(), "workload must produce matches");
        for width in [2, 3, 8] {
            let par = join_glue_pairs_partitioned(&left, &right, &g, &TestRunner(width));
            assert_eq!(serial, par, "width {width} diverged");
        }
        let t_serial = join_glue(&left, &right, &g);
        let t_par = join_glue_partitioned(&left, &right, &g, &TestRunner(8));
        assert_eq!(t_serial, t_par, "materialized tables must be identical");
    }

    #[test]
    fn partitioned_join_small_input_falls_back() {
        let g = glue();
        let par = join_glue_pairs_partitioned(&left_table(), &right_table(), &g, &TestRunner(8));
        assert_eq!(par, join_glue_pairs(&left_table(), &right_table(), &g));
    }

    /// The full pair stream restricted to pairs touching an appended row
    /// — the delta-join contract, derivable because `join_glue_pairs` is
    /// canonically ordered.
    fn expected_delta(full: &[Pair], left_old: usize, right_old: usize) -> Vec<Pair> {
        full.iter()
            .copied()
            .filter(|&(li, ri)| li as usize >= left_old || ri as usize >= right_old)
            .collect()
    }

    #[test]
    fn delta_join_equals_full_minus_prefix() {
        let (left, right) = big_tables();
        let g = glue();
        let full = join_glue_pairs(&left, &right, &g);
        assert!(!full.is_empty());
        for (left_old, right_old) in [
            (0, 0),
            (left.len(), right.len()),
            (left.len() / 2, right.len() / 2),
            (left.len() - 1, right.len()),
            (left.len(), right.len() - 3),
            (17, right.len() - 17),
        ] {
            let delta = join_glue_pairs_delta(&left, left_old, &right, right_old, &g);
            assert_eq!(
                delta,
                expected_delta(&full, left_old, right_old),
                "prefix ({left_old}, {right_old}) diverged"
            );
        }
    }

    #[test]
    fn delta_join_empty_deltas_emit_nothing() {
        let (l, r, g) = (left_table(), right_table(), glue());
        let delta = join_glue_pairs_delta(&l, l.len(), &r, r.len(), &g);
        assert!(delta.is_empty());
    }

    #[test]
    fn delta_join_zero_prefix_is_full_join() {
        let (l, r, g) = (left_table(), right_table(), glue());
        assert_eq!(
            join_glue_pairs_delta(&l, 0, &r, 0, &g),
            join_glue_pairs(&l, &r, &g)
        );
    }

    #[test]
    fn delta_join_partitioned_is_byte_identical_across_widths() {
        let (left, right) = big_tables();
        let g = glue();
        let (left_old, right_old) = (left.len() / 3, right.len() / 3);
        let serial = join_glue_pairs_delta(&left, left_old, &right, right_old, &g);
        assert!(!serial.is_empty());
        for width in [2, 3, 8] {
            let par = join_glue_pairs_delta_partitioned(
                &left,
                left_old,
                &right,
                right_old,
                &g,
                &TestRunner(width),
            );
            assert_eq!(serial, par, "width {width} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "left_old beyond")]
    fn delta_join_prefix_bounds_checked() {
        let (l, r, g) = (left_table(), right_table(), glue());
        join_glue_pairs_delta(&l, l.len() + 1, &r, 0, &g);
    }
}
