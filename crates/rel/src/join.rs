//! Join operators with *gluing* semantics.
//!
//! Extending a pattern `p` with an abstract action `a` (paper §4.2) joins
//! `realizations[p]` (the left relation, one column per pattern variable)
//! with `realizations[a]` (the right relation, one column per action
//! endpoint). Each right column is either
//!
//! * **glued** onto an existing left column — an equijoin condition on the
//!   corresponding attributes, or
//! * **new** — it extends the output schema, under *inequality* conditions
//!   against the same-type left columns (the paper requires distinct
//!   variables to realize as distinct entities).
//!
//! Three operators share these semantics:
//! [`join_glue`] (hash join — WiClean's optimized path),
//! [`join_glue_nested`] (nested loop — the `PM−join` ablation), and
//! [`outer_join_glue`] (full outer join — Algorithm 3, where unmatched rows
//! are retained null-padded and identify partial pattern realizations).

use crate::schema::Schema;
use crate::table::{Table, Value};
use std::collections::HashMap;
use wiclean_types::EntityId;

/// How one right-hand column participates in a glue join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnGlue {
    /// Equi-joined onto the left column at this index.
    Glued(usize),
    /// Introduces a new output column.
    New {
        /// Output column name (the fresh pattern variable).
        name: String,
        /// Left columns this value must differ from (same-type variables).
        /// Comparisons against nulls are vacuously satisfied.
        distinct_from: Vec<usize>,
    },
}

fn output_schema(left: &Table, glue: &[ColumnGlue]) -> Schema {
    let mut schema = left.schema().clone();
    for g in glue {
        if let ColumnGlue::New { name, .. } = g {
            schema.push(name.clone());
        }
    }
    schema
}

fn validate(left: &Table, right: &Table, glue: &[ColumnGlue]) {
    assert_eq!(
        glue.len(),
        right.width(),
        "glue spec arity must match right table width"
    );
    for g in glue {
        match g {
            ColumnGlue::Glued(i) => assert!(*i < left.width(), "glued column out of range"),
            ColumnGlue::New { distinct_from, .. } => {
                for i in distinct_from {
                    assert!(*i < left.width(), "distinct_from column out of range");
                }
            }
        }
    }
}

/// Whether the (left row, right row) pair satisfies all glue conditions.
/// SQL three-valued logic: null never equi-matches; `≠` against a null is
/// vacuously satisfied.
fn pair_matches(l: &[Value], r: &[Value], glue: &[ColumnGlue]) -> bool {
    for (j, g) in glue.iter().enumerate() {
        match g {
            ColumnGlue::Glued(i) => match (l[*i], r[j]) {
                (Some(a), Some(b)) if a == b => {}
                _ => return false,
            },
            ColumnGlue::New { distinct_from, .. } => {
                if let Some(b) = r[j] {
                    for i in distinct_from {
                        if l[*i] == Some(b) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Assembles the combined output row for a matched pair.
fn combined_row(l: &[Value], r: &[Value], glue: &[ColumnGlue], out: &mut Vec<Value>) {
    out.clear();
    out.extend_from_slice(l);
    for (j, g) in glue.iter().enumerate() {
        if matches!(g, ColumnGlue::New { .. }) {
            out.push(r[j]);
        }
    }
}

/// A row's glued-key columns, packed.
///
/// Glue arity ≤ 2 — by far the common case (patterns glue one or two
/// variables per extension) — packs into a single `u64`, avoiding a heap
/// allocation per row on the build and probe sides of every join. Wider keys
/// fall back to a `Vec`. Both sides of a join derive their key from the same
/// glue spec, so arities always agree and `Eq`/`Ord`/`Hash` are consistent:
/// the packed ordering equals the lexicographic `Vec<EntityId>` ordering.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum JoinKey {
    Small(u64),
    Big(Vec<EntityId>),
}

/// Packs glued-column values into a [`JoinKey`]; `None` if any is null (a
/// null key never equi-matches).
fn pack_key(vals: impl Iterator<Item = Value>) -> Option<JoinKey> {
    let (mut a, mut b) = (0u64, 0u64);
    let mut big: Vec<EntityId> = Vec::new();
    let mut n = 0usize;
    for v in vals {
        let v = v?;
        match n {
            0 => a = u64::from(v.as_u32()),
            1 => b = u64::from(v.as_u32()),
            2 => {
                big = vec![
                    EntityId::from_u32(a as u32),
                    EntityId::from_u32(b as u32),
                    v,
                ];
            }
            _ => big.push(v),
        }
        n += 1;
    }
    Some(match n {
        0 => JoinKey::Small(0),
        1 => JoinKey::Small(a),
        2 => JoinKey::Small((a << 32) | b),
        _ => JoinKey::Big(big),
    })
}

/// The glued-key columns of a right row, or `None` if any is null.
fn right_key(r: &[Value], glue: &[ColumnGlue]) -> Option<JoinKey> {
    pack_key(
        glue.iter()
            .enumerate()
            .filter(|(_, g)| matches!(g, ColumnGlue::Glued(_)))
            .map(|(j, _)| r[j]),
    )
}

/// The glued-key columns of a left row (in glue order), or `None` on null.
fn left_key(l: &[Value], glue: &[ColumnGlue]) -> Option<JoinKey> {
    pack_key(glue.iter().filter_map(|g| match g {
        ColumnGlue::Glued(i) => Some(l[*i]),
        ColumnGlue::New { .. } => None,
    }))
}

/// Hash equijoin with gluing semantics. Builds a hash index over the right
/// relation keyed by its glued columns, probes with the left relation, and
/// post-filters the `distinct_from` inequality conditions.
///
/// ```
/// use wiclean_rel::{join_glue, ColumnGlue, Schema, Table};
/// use wiclean_types::EntityId;
///
/// let v = |i| Some(EntityId::from_u32(i));
/// let players = Table::from_rows(Schema::new(["player", "old"]), [vec![v(1), v(10)]]);
/// let joins = Table::from_rows(Schema::new(["player", "new"]), [vec![v(1), v(11)]]);
/// let glue = [
///     ColumnGlue::Glued(0), // same player
///     ColumnGlue::New { name: "new".into(), distinct_from: vec![1] }, // new ≠ old
/// ];
/// let out = join_glue(&players, &joins, &glue);
/// assert_eq!(out.sorted_rows(), vec![vec![v(1), v(10), v(11)]]);
/// ```
pub fn join_glue(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Table {
    validate(left, right, glue);
    let mut out = Table::new(output_schema(left, glue));

    // Build: right rows grouped by glued key.
    let mut index: HashMap<JoinKey, Vec<usize>> = HashMap::new();
    for (ri, r) in right.rows().enumerate() {
        if let Some(key) = right_key(r, glue) {
            index.entry(key).or_default().push(ri);
        }
    }

    let mut row = Vec::with_capacity(out.width());
    for l in left.rows() {
        let Some(key) = left_key(l, glue) else { continue };
        let Some(candidates) = index.get(&key) else { continue };
        for &ri in candidates {
            let r = right.row(ri);
            if pair_matches(l, r, glue) {
                combined_row(l, r, glue, &mut row);
                out.push_row(&row);
            }
        }
    }
    out
}

/// The same operator computed by sort–merge: both relations are sorted by
/// their glued key and matching key groups are cross-checked. Chosen over
/// the hash join when the inputs are large and a sorted output is useful
/// downstream; semantically identical (property-tested).
pub fn join_glue_sort_merge(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Table {
    validate(left, right, glue);
    let mut out = Table::new(output_schema(left, glue));

    // Decorate row indices with their (non-null) glued keys and sort.
    let mut lkeys: Vec<(JoinKey, usize)> = left
        .rows()
        .enumerate()
        .filter_map(|(i, r)| left_key(r, glue).map(|k| (k, i)))
        .collect();
    let mut rkeys: Vec<(JoinKey, usize)> = right
        .rows()
        .enumerate()
        .filter_map(|(i, r)| right_key(r, glue).map(|k| (k, i)))
        .collect();
    lkeys.sort();
    rkeys.sort();

    let mut row = Vec::with_capacity(out.width());
    let (mut li, mut ri) = (0usize, 0usize);
    while li < lkeys.len() && ri < rkeys.len() {
        match lkeys[li].0.cmp(&rkeys[ri].0) {
            std::cmp::Ordering::Less => li += 1,
            std::cmp::Ordering::Greater => ri += 1,
            std::cmp::Ordering::Equal => {
                // Delimit the equal-key groups on both sides.
                let key = lkeys[li].0.clone();
                let lhi = lkeys[li..].partition_point(|(k, _)| *k == key) + li;
                let rhi = rkeys[ri..].partition_point(|(k, _)| *k == key) + ri;
                for &(_, l_ix) in &lkeys[li..lhi] {
                    let l = left.row(l_ix);
                    for &(_, r_ix) in &rkeys[ri..rhi] {
                        let r = right.row(r_ix);
                        if pair_matches(l, r, glue) {
                            combined_row(l, r, glue, &mut row);
                            out.push_row(&row);
                        }
                    }
                }
                li = lhi;
                ri = rhi;
            }
        }
    }
    out
}

/// The same operator computed by a conventional main-memory nested loop
/// over the cross product — the paper's `PM−join` baseline. Semantically
/// identical to [`join_glue`] (property-tested), asymptotically slower.
pub fn join_glue_nested(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Table {
    validate(left, right, glue);
    let mut out = Table::new(output_schema(left, glue));
    let mut row = Vec::with_capacity(out.width());
    for l in left.rows() {
        for r in right.rows() {
            if pair_matches(l, r, glue) {
                combined_row(l, r, glue, &mut row);
                out.push_row(&row);
            }
        }
    }
    out
}

/// Full outer join with gluing semantics (Algorithm 3).
///
/// Output rows:
/// * matched pairs — as in [`join_glue`];
/// * unmatched **left** rows — retained, new columns padded with nulls
///   (a partial pattern realization missing the new action);
/// * unmatched **right** rows — retained, with glued output columns taking
///   the right values and all remaining left columns null (an action
///   realization with no partial pattern around it).
pub fn outer_join_glue(left: &Table, right: &Table, glue: &[ColumnGlue]) -> Table {
    validate(left, right, glue);
    let mut out = Table::new(output_schema(left, glue));

    let mut index: HashMap<JoinKey, Vec<usize>> = HashMap::new();
    for (ri, r) in right.rows().enumerate() {
        if let Some(key) = right_key(r, glue) {
            index.entry(key).or_default().push(ri);
        }
    }

    let mut right_matched = vec![false; right.len()];
    let mut row = Vec::with_capacity(out.width());

    for l in left.rows() {
        let mut l_matched = false;
        if let Some(key) = left_key(l, glue) {
            if let Some(candidates) = index.get(&key) {
                for &ri in candidates {
                    let r = right.row(ri);
                    if pair_matches(l, r, glue) {
                        combined_row(l, r, glue, &mut row);
                        out.push_row(&row);
                        l_matched = true;
                        right_matched[ri] = true;
                    }
                }
            }
        }
        if !l_matched {
            combined_row(l, &vec![None; right.width()], glue, &mut row);
            out.push_row(&row);
        }
    }

    for (ri, r) in right.rows().enumerate() {
        if right_matched[ri] {
            continue;
        }
        // Left part: nulls except glued positions which take right values.
        row.clear();
        row.resize(left.width(), None);
        for (j, g) in glue.iter().enumerate() {
            if let ColumnGlue::Glued(i) = g {
                row[*i] = r[j];
            }
        }
        for (j, g) in glue.iter().enumerate() {
            if matches!(g, ColumnGlue::New { .. }) {
                row.push(r[j]);
            }
        }
        out.push_row(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Value {
        Some(EntityId::from_u32(i))
    }

    /// realizations[p]: pattern {−(player, club, team)} with columns
    /// [player, old_team].
    fn left_table() -> Table {
        Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![v(1), v(10)], vec![v(2), v(20)], vec![v(3), v(10)]],
        )
    }

    /// realizations[a]: action {+(player, club, team)} with columns
    /// [player, new_team].
    fn right_table() -> Table {
        Table::from_rows(
            Schema::new(["player", "new_team"]),
            [
                vec![v(1), v(11)],
                vec![v(2), v(20)], // same team as old → violates ≠
                vec![v(9), v(30)], // no matching player
            ],
        )
    }

    fn glue() -> Vec<ColumnGlue> {
        vec![
            ColumnGlue::Glued(0),
            ColumnGlue::New {
                name: "new_team".into(),
                distinct_from: vec![1],
            },
        ]
    }

    #[test]
    fn hash_join_glues_and_filters() {
        let out = join_glue(&left_table(), &right_table(), &glue());
        assert_eq!(out.schema().names(), &["player", "old_team", "new_team"]);
        // Player 1: old 10 → new 11 (kept). Player 2: 20 → 20 (≠ fails).
        assert_eq!(out.sorted_rows(), vec![vec![v(1), v(10), v(11)]]);
    }

    #[test]
    fn nested_loop_agrees_with_hash() {
        let h = join_glue(&left_table(), &right_table(), &glue());
        let n = join_glue_nested(&left_table(), &right_table(), &glue());
        assert_eq!(h.sorted_rows(), n.sorted_rows());
    }

    #[test]
    fn sort_merge_agrees_with_hash() {
        let h = join_glue(&left_table(), &right_table(), &glue());
        let m = join_glue_sort_merge(&left_table(), &right_table(), &glue());
        assert_eq!(h.sorted_rows(), m.sorted_rows());
    }

    #[test]
    fn sort_merge_handles_duplicate_keys() {
        let left = Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![v(1), v(10)], vec![v(1), v(20)], vec![v(2), v(30)]],
        );
        let right = Table::from_rows(
            Schema::new(["player", "new_team"]),
            [vec![v(1), v(11)], vec![v(1), v(12)]],
        );
        let h = join_glue(&left, &right, &glue());
        let m = join_glue_sort_merge(&left, &right, &glue());
        assert_eq!(h.sorted_rows(), m.sorted_rows());
        assert_eq!(m.len(), 4, "2 left × 2 right key-1 rows");
    }

    #[test]
    fn sort_merge_skips_null_keys() {
        let left = Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![None, v(10)], vec![v(1), v(10)]],
        );
        let m = join_glue_sort_merge(&left, &right_table(), &glue());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn glue_all_columns_is_semijoin_shape() {
        // Gluing both right columns onto left columns keeps only matching
        // left rows, unextended.
        let right = Table::from_rows(
            Schema::new(["p", "t"]),
            [vec![v(1), v(10)], vec![v(2), v(99)]],
        );
        let out = join_glue(
            &left_table(),
            &right,
            &[ColumnGlue::Glued(0), ColumnGlue::Glued(1)],
        );
        assert_eq!(out.schema().width(), 2);
        assert_eq!(out.sorted_rows(), vec![vec![v(1), v(10)]]);
    }

    #[test]
    fn null_left_key_never_matches() {
        let left = Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![None, v(10)], vec![v(1), v(10)]],
        );
        let out = join_glue(&left, &right_table(), &glue());
        assert_eq!(out.len(), 1, "null player cannot equi-match");
    }

    #[test]
    fn neq_against_null_is_vacuous() {
        let left = Table::from_rows(Schema::new(["player", "old_team"]), [vec![v(2), None]]);
        // Right: player 2, new team 20. old_team is null → ≠ passes.
        let out = join_glue(&left, &right_table(), &glue());
        assert_eq!(out.sorted_rows(), vec![vec![v(2), None, v(20)]]);
    }

    #[test]
    fn outer_join_retains_unmatched_left() {
        let out = outer_join_glue(&left_table(), &right_table(), &glue());
        let rows = out.sorted_rows();
        // Matched: (1, 10, 11).
        assert!(rows.contains(&vec![v(1), v(10), v(11)]));
        // Unmatched left: players 2 (≠ failed) and 3 (no right row).
        assert!(rows.contains(&vec![v(2), v(20), None]));
        assert!(rows.contains(&vec![v(3), v(10), None]));
        // Unmatched right: player 9's action, no surrounding pattern, and
        // player 2's action (the ≠-failing pair leaves both sides
        // unmatched, as in SQL).
        assert!(rows.contains(&vec![v(9), None, v(30)]));
        assert!(rows.contains(&vec![v(2), None, v(20)]));
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn outer_join_null_rows_are_detectable() {
        let out = outer_join_glue(&left_table(), &right_table(), &glue());
        let partial = out.rows_with_null();
        assert_eq!(partial.len(), 4);
    }

    #[test]
    fn outer_join_on_empty_right_pads_all_left() {
        let right = Table::new(Schema::new(["player", "new_team"]));
        let out = outer_join_glue(&left_table(), &right, &glue());
        assert_eq!(out.len(), 3);
        assert!(out.rows().all(|r| r[2].is_none()));
    }

    #[test]
    fn outer_join_on_empty_left_pads_all_right() {
        let left = Table::new(Schema::new(["player", "old_team"]));
        let out = outer_join_glue(&left, &right_table(), &glue());
        assert_eq!(out.len(), 3);
        assert!(out.rows().all(|r| r[1].is_none()));
        // Glued column carries the right value.
        assert!(out.rows().all(|r| r[0].is_some()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn glue_arity_checked() {
        join_glue(&left_table(), &right_table(), &[ColumnGlue::Glued(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn glue_bounds_checked() {
        join_glue(&left_table(), &right_table(), &[
            ColumnGlue::Glued(7),
            ColumnGlue::New {
                name: "x".into(),
                distinct_from: vec![],
            },
        ]);
    }

    #[test]
    fn multiple_matches_fan_out() {
        let left = Table::from_rows(
            Schema::new(["player", "old_team"]),
            [vec![v(1), v(10)]],
        );
        let right = Table::from_rows(
            Schema::new(["player", "new_team"]),
            [vec![v(1), v(11)], vec![v(1), v(12)]],
        );
        let out = join_glue(&left, &right, &glue());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn outer_join_cardinality_survives_empty_projection() {
        // COUNT(*) over a join result must not collapse when projecting away
        // every column (the zero-width Table regression).
        let out = outer_join_glue(&left_table(), &right_table(), &glue());
        let counted = out.project(&[]);
        assert_eq!(counted.width(), 0);
        assert_eq!(counted.len(), out.len());
        assert_eq!(counted.rows().count(), out.len());
    }
}
