//! Deterministic fast hashing for the engine's internal maps and sets.
//!
//! The columnar operators key their maps by [`EntityId`]s, packed join
//! keys, and premixed 64-bit row hashes — short, non-adversarial keys for
//! which std's SipHash (and its per-process `RandomState` seed) costs far
//! more than it buys. A single multiply-mix round ([`mix64`]) disperses
//! these keys just as well, and the determinism is load-bearing: radix
//! partition assignment derives from key hashes and feeds the parallel
//! join whose output must be byte-identical across runs and thread counts.
//!
//! The row-oriented reference engine ([`crate::rowstore`]) deliberately
//! keeps std hashing — it is the frozen seed implementation the benchmarks
//! compare against.

use crate::column::mix64;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use wiclean_types::EntityId;

/// A [`Hasher`] applying one [`mix64`] round per written word.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            // Fold the chunk length in so prefixes hash differently.
            self.0 = mix64(self.0 ^ u64::from_le_bytes(word) ^ ((chunk.len() as u64) << 56));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v.into());
    }

    fn write_u16(&mut self, v: u16) {
        self.write_u64(v.into());
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v.into());
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = mix64(self.0 ^ v);
    }

    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// [`BuildHasherDefault`] over [`FastHasher`] — seed-free, so identical
/// keys hash identically in every process.
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A [`HashMap`] using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuild>;

/// A [`HashSet`] using [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuild>;

/// The distinct-entity sets produced by the engine's `COUNT(DISTINCT)`
/// paths ([`crate::Table::distinct_values`],
/// [`crate::distinct_left_values`]).
pub type EntitySet = FastSet<EntityId>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let h = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn entity_set_behaves_as_set() {
        let mut s = EntitySet::default();
        for i in 0..100u32 {
            s.insert(EntityId::from_u32(i % 10));
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn byte_writes_distinguish_prefixes() {
        let h = |bytes: &[u8]| {
            let mut h = FastHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
