//! Flat row-major relations of nullable entity values.

use crate::schema::Schema;
use std::collections::HashSet;
use wiclean_types::EntityId;

/// A cell: an entity id, or SQL `NULL` (only produced by outer joins).
pub type Value = Option<EntityId>;

/// A relation: a [`Schema`] plus rows stored in one flat, row-major buffer
/// (`width` cells per row) for cache-friendly scans.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    schema: Schema,
    data: Vec<Value>,
    /// Row count, tracked independently of `data.len()` so that zero-width
    /// relations (e.g. `project(&[])`) still know their cardinality.
    rows: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// Creates a table and bulk-loads rows.
    pub fn from_rows<R>(schema: Schema, rows: impl IntoIterator<Item = R>) -> Self
    where
        R: AsRef<[Value]>,
    {
        let mut t = Self::new(schema);
        for r in rows {
            t.push_row(r.as_ref());
        }
        t
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.schema.width()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a row; its arity must match the schema.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.schema.width(),
            "row arity does not match schema {}",
            self.schema
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Row `i` as a cell slice.
    pub fn row(&self, i: usize) -> &[Value] {
        assert!(i < self.rows, "row index {i} out of bounds ({} rows)", self.rows);
        let w = self.schema.width();
        &self.data[i * w..(i + 1) * w]
    }

    /// Iterates rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        let w = self.schema.width();
        (0..self.rows).map(move |i| &self.data[i * w..(i + 1) * w])
    }

    /// The cell at row `i`, column `col`.
    pub fn cell(&self, i: usize, col: usize) -> Value {
        self.row(i)[col]
    }

    /// Distinct non-null values in a column — the SQL
    /// `COUNT(DISTINCT col)` the frequency computation issues against the
    /// pattern's source column.
    pub fn distinct_count(&self, col: usize) -> usize {
        self.distinct_values(col).len()
    }

    /// The distinct non-null values of a column.
    pub fn distinct_values(&self, col: usize) -> HashSet<EntityId> {
        self.rows().filter_map(|r| r[col]).collect()
    }

    /// Projection onto the given columns (duplicates retained; call
    /// [`Table::dedup`] for set semantics).
    pub fn project(&self, cols: &[usize]) -> Table {
        let schema = Schema::new(cols.iter().map(|&c| self.schema.name(c).to_owned()));
        let mut out = Table::new(schema);
        let mut row = Vec::with_capacity(cols.len());
        for r in self.rows() {
            row.clear();
            row.extend(cols.iter().map(|&c| r[c]));
            out.push_row(&row);
        }
        out
    }

    /// Removes duplicate rows (order-preserving, first occurrence wins).
    pub fn dedup(&mut self) {
        let w = self.schema.width();
        if w == 0 {
            // Every zero-width row is identical, so at most one survives.
            self.rows = self.rows.min(1);
            return;
        }
        if self.data.is_empty() {
            return;
        }
        let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(self.len());
        let mut out = Vec::with_capacity(self.data.len());
        for r in self.data.chunks_exact(w) {
            if seen.insert(r.to_vec()) {
                out.extend_from_slice(r);
            }
        }
        self.data = out;
        self.rows = self.data.len() / w;
    }

    /// Selection of the rows that contain at least one null — the partial
    /// realizations in Algorithm 3's final step.
    pub fn rows_with_null(&self) -> Table {
        let mut out = Table::new(self.schema.clone());
        for r in self.rows() {
            if r.iter().any(Option::is_none) {
                out.push_row(r);
            }
        }
        out
    }

    /// Selection of the rows where `col` is non-null and satisfies `pred`.
    pub fn filter_col(&self, col: usize, pred: impl Fn(EntityId) -> bool) -> Table {
        let mut out = Table::new(self.schema.clone());
        for r in self.rows() {
            if r[col].is_some_and(&pred) {
                out.push_row(r);
            }
        }
        out
    }

    /// Sorted copy of the rows (null sorts first); used by tests to compare
    /// relations under set semantics.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = self.rows().map(|r| r.to_vec()).collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Value {
        Some(EntityId::from_u32(i))
    }

    fn sample() -> Table {
        Table::from_rows(
            Schema::new(["p", "t"]),
            [
                vec![v(1), v(10)],
                vec![v(2), v(10)],
                vec![v(1), None],
                vec![v(3), v(30)],
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.width(), 2);
        assert_eq!(t.cell(0, 1), v(10));
        assert_eq!(t.cell(2, 1), None);
        assert_eq!(t.rows().count(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(Schema::new(["a", "b"]));
        t.push_row(&[v(1)]);
    }

    #[test]
    fn distinct_count_ignores_nulls_and_dups() {
        let t = sample();
        assert_eq!(t.distinct_count(0), 3); // 1, 2, 3
        assert_eq!(t.distinct_count(1), 2); // 10, 30 (null ignored)
    }

    #[test]
    fn projection_and_dedup() {
        let t = sample();
        let mut p = t.project(&[1]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.schema().names(), &["t".to_string()]);
        p.dedup();
        assert_eq!(p.len(), 3); // 10, null, 30
    }

    #[test]
    fn rows_with_null_selects_partials() {
        let t = sample();
        let partial = t.rows_with_null();
        assert_eq!(partial.len(), 1);
        assert_eq!(partial.row(0)[0], v(1));
    }

    #[test]
    fn filter_col_skips_nulls() {
        let t = sample();
        let only1 = t.filter_col(0, |e| e == EntityId::from_u32(1));
        assert_eq!(only1.len(), 2);
        let none = t.filter_col(1, |e| e == EntityId::from_u32(999));
        assert!(none.is_empty());
    }

    #[test]
    fn dedup_is_order_preserving() {
        let mut t = Table::from_rows(
            Schema::new(["a"]),
            [vec![v(2)], vec![v(1)], vec![v(2)], vec![v(1)]],
        );
        t.dedup();
        assert_eq!(t.sorted_rows(), vec![vec![v(1)], vec![v(2)]]);
        assert_eq!(t.row(0)[0], v(2), "first occurrence kept first");
    }

    #[test]
    fn zero_width_table() {
        let t = Table::new(Schema::new(Vec::<String>::new()));
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn zero_width_rows_are_counted() {
        let mut t = Table::new(Schema::new(Vec::<String>::new()));
        t.push_row(&[]);
        t.push_row(&[]);
        t.push_row(&[]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.rows().count(), 3);
        assert_eq!(t.row(2), &[] as &[Value]);
        t.dedup();
        assert_eq!(t.len(), 1, "all zero-width rows are identical");
    }

    #[test]
    fn zero_width_projection_keeps_cardinality() {
        let t = sample();
        let p = t.project(&[]);
        assert_eq!(p.width(), 0);
        assert_eq!(p.len(), 4, "COUNT(*) must survive SELECT of no columns");
        assert_eq!(p.rows().count(), 4);
        // No cells means no nulls: the partial-realization selection is empty.
        assert!(p.rows_with_null().is_empty());
    }

    #[test]
    fn distinct_count_after_projection() {
        let t = sample();
        assert_eq!(t.project(&[0]).distinct_count(0), 3);
        assert_eq!(t.project(&[1, 0]).distinct_count(0), 2);
    }
}
