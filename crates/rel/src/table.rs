//! Column-major relations of nullable entity values.
//!
//! Rows are stored as one [`Column`] per attribute (dense `Vec<EntityId>`
//! plus a validity bitmap) rather than the flattened row-major
//! `Vec<Option<EntityId>>` buffer of earlier revisions. The row-oriented
//! API (`push_row`, `rows()`, `row(i)`) is preserved for construction and
//! tests; the join operators and scans work on columns directly.

use crate::column::{mix64, Column, Value, NULL_IX};
use crate::hash::{EntitySet, FastMap};
use crate::schema::Schema;
use wiclean_types::EntityId;

/// A relation: a [`Schema`] plus one [`Column`] per attribute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    schema: Schema,
    cols: Vec<Column>,
    /// Row count, tracked independently of the columns so that zero-width
    /// relations (e.g. `project(&[])`) still know their cardinality.
    rows: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let cols = (0..schema.width()).map(|_| Column::new()).collect();
        Self {
            schema,
            cols,
            rows: 0,
        }
    }

    /// Creates a table and bulk-loads rows.
    pub fn from_rows<R>(schema: Schema, rows: impl IntoIterator<Item = R>) -> Self
    where
        R: AsRef<[Value]>,
    {
        let mut t = Self::new(schema);
        for r in rows {
            t.push_row(r.as_ref());
        }
        t
    }

    /// Assembles a table from prebuilt columns (the gather step of a
    /// late-materialized join). Every column must have `rows` cells.
    pub fn from_parts(schema: Schema, cols: Vec<Column>, rows: usize) -> Self {
        assert_eq!(cols.len(), schema.width(), "column count must match schema");
        for c in &cols {
            assert_eq!(c.len(), rows, "column length must match row count");
        }
        Self { schema, cols, rows }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.schema.width()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column `c`.
    pub fn col(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// Appends a row; its arity must match the schema.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.schema.width(),
            "row arity does not match schema {}",
            self.schema
        );
        for (c, &v) in self.cols.iter_mut().zip(row) {
            c.push(v);
        }
        self.rows += 1;
    }

    /// Appends a column (used to decorate realization tables with marker
    /// columns); its length must match the current row count.
    pub fn append_column(&mut self, name: impl Into<String>, col: Column) {
        assert_eq!(col.len(), self.rows, "appended column length must match");
        self.schema.push(name.into());
        self.cols.push(col);
    }

    /// Row `i` as an owned cell vector (transposed out of the columns; for
    /// construction-time convenience and tests — hot paths scan columns).
    pub fn row(&self, i: usize) -> Vec<Value> {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// Iterates rows (transposing each out of the columns; see
    /// [`Table::row`]).
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// The cell at row `i`, column `col`.
    pub fn cell(&self, i: usize, col: usize) -> Value {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        self.cols[col].get(i)
    }

    /// Distinct non-null values in a column — the SQL
    /// `COUNT(DISTINCT col)` the frequency computation issues against the
    /// pattern's source column.
    pub fn distinct_count(&self, col: usize) -> usize {
        self.distinct_values(col).len()
    }

    /// The distinct non-null values of a column.
    pub fn distinct_values(&self, col: usize) -> EntitySet {
        let c = &self.cols[col];
        if c.has_nulls() {
            (0..self.rows).filter_map(|i| c.get(i)).collect()
        } else {
            c.values().iter().copied().collect()
        }
    }

    /// Projection onto the given columns: a column clone per attribute
    /// (duplicates retained; call [`Table::dedup`] for set semantics).
    pub fn project(&self, cols: &[usize]) -> Table {
        let schema = Schema::new(cols.iter().map(|&c| self.schema.name(c).to_owned()));
        let picked = cols.iter().map(|&c| self.cols[c].clone()).collect();
        Table::from_parts(schema, picked, self.rows)
    }

    /// Gathers the given row indices into a new table (order as given;
    /// [`crate::NULL_IX`] entries become all-null rows).
    pub fn gather(&self, idx: &[u32]) -> Table {
        let cols = self.cols.iter().map(|c| c.gather(idx)).collect();
        Table::from_parts(self.schema.clone(), cols, idx.len())
    }

    /// Hash of row `i`'s cells, consistent with cell-wise row equality.
    fn row_hashes(&self) -> Vec<u64> {
        let mut hashes = vec![0xcbf2_9ce4_8422_2325u64; self.rows];
        for c in &self.cols {
            let vals = c.values();
            if c.has_nulls() {
                for (i, h) in hashes.iter_mut().enumerate() {
                    let cell = (u64::from(vals[i].as_u32()) << 1) | u64::from(c.is_valid(i));
                    *h = mix64(*h ^ cell);
                }
            } else {
                for (i, h) in hashes.iter_mut().enumerate() {
                    *h = mix64(*h ^ ((u64::from(vals[i].as_u32()) << 1) | 1));
                }
            }
        }
        hashes
    }

    /// Whether rows `i` and `j` are cell-wise equal.
    fn rows_equal(&self, i: usize, j: usize) -> bool {
        self.cols
            .iter()
            .all(|c| c.values()[i] == c.values()[j] && c.is_valid(i) == c.is_valid(j))
    }

    /// Removes duplicate rows (order-preserving, first occurrence wins).
    ///
    /// Rows are bucketed by hash and confirmed by cell-wise column
    /// comparison. Hash collisions are chained intrusively through a
    /// side array, so dedup performs no per-row or per-bucket allocation
    /// beyond three flat vectors.
    pub fn dedup(&mut self) {
        if self.schema.width() == 0 {
            // Every zero-width row is identical, so at most one survives.
            self.rows = self.rows.min(1);
            return;
        }
        if self.rows == 0 {
            return;
        }
        let hashes = self.row_hashes();
        // hash → first kept row with that hash; further same-hash rows are
        // threaded through `next` (NULL_IX-terminated).
        let mut head: FastMap<u64, u32> =
            FastMap::with_capacity_and_hasher(self.rows, <_>::default());
        let mut next: Vec<u32> = vec![NULL_IX; self.rows];
        let mut keep: Vec<u32> = Vec::with_capacity(self.rows);
        'rows: for (i, &hash) in hashes.iter().enumerate() {
            match head.entry(hash) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i as u32);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let mut j = *slot.get();
                    loop {
                        if self.rows_equal(i, j as usize) {
                            continue 'rows;
                        }
                        if next[j as usize] == NULL_IX {
                            break;
                        }
                        j = next[j as usize];
                    }
                    next[j as usize] = i as u32;
                }
            }
            keep.push(i as u32);
        }
        if keep.len() < self.rows {
            *self = self.gather(&keep);
        }
    }

    /// Whether row `i` of `self` equals row `j` of `other` cell-wise.
    fn rows_equal_cross(&self, i: usize, other: &Table, j: usize) -> bool {
        self.cols.iter().zip(&other.cols).all(|(a, b)| {
            a.is_valid(i) == b.is_valid(j)
                && (!a.is_valid(i) || a.value_unchecked(i) == b.value_unchecked(j))
        })
    }

    /// Appends every row of `other` not already present in `self` (first
    /// occurrence wins across the concatenation, as in [`Table::dedup`]);
    /// returns the number of rows appended. Existing rows are never
    /// touched, so on an already-deduped table this equals pushing all of
    /// `other` and calling `dedup`, without rehashing the prefix — the
    /// absorb step of the streaming miner's cached realization tables.
    pub fn extend_dedup(&mut self, other: &Table) -> usize {
        assert_eq!(
            self.schema.width(),
            other.schema.width(),
            "extend_dedup arity mismatch"
        );
        if self.schema.width() == 0 {
            // Every zero-width row is identical.
            if self.rows == 0 && other.rows > 0 {
                self.rows = 1;
                return 1;
            }
            return 0;
        }
        if other.rows == 0 {
            return 0;
        }
        let own = self.row_hashes();
        let incoming = other.row_hashes();
        // hash → one representative row index per distinct row already in
        // `self` (appended rows included as they land); collisions chained
        // through `next` as in `dedup`. Indices refer to `self`.
        let mut head: FastMap<u64, u32> =
            FastMap::with_capacity_and_hasher(self.rows + other.rows, <_>::default());
        let mut next: Vec<u32> = vec![NULL_IX; self.rows + other.rows];
        // Seed the index with the existing rows. Duplicate prefix rows are
        // each threaded (harmless — probes stop at the first equal row).
        for (i, &hash) in own.iter().enumerate() {
            match head.entry(hash) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i as u32);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let mut j = *slot.get();
                    while next[j as usize] != NULL_IX {
                        j = next[j as usize];
                    }
                    next[j as usize] = i as u32;
                }
            }
        }
        let mut appended = 0usize;
        for (j, &hash) in incoming.iter().enumerate() {
            // Probe against rows already in `self` (prefix + prior appends).
            let is_new = match head.entry(hash) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(self.rows as u32);
                    true
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let mut k = *slot.get();
                    let dup = loop {
                        if other.rows_equal_cross(j, self, k as usize) {
                            break true;
                        }
                        if next[k as usize] == NULL_IX {
                            break false;
                        }
                        k = next[k as usize];
                    };
                    if !dup {
                        next[k as usize] = self.rows as u32;
                    }
                    !dup
                }
            };
            if is_new {
                for (c, oc) in self.cols.iter_mut().zip(&other.cols) {
                    c.push(oc.get(j));
                }
                self.rows += 1;
                appended += 1;
            }
        }
        appended
    }

    /// Selection of the rows that contain at least one null — the partial
    /// realizations in Algorithm 3's final step.
    pub fn rows_with_null(&self) -> Table {
        if !self.cols.iter().any(Column::has_nulls) {
            return Table::new(self.schema.clone());
        }
        let idx: Vec<u32> = (0..self.rows)
            .filter(|&i| self.cols.iter().any(|c| !c.is_valid(i)))
            .map(|i| i as u32)
            .collect();
        self.gather(&idx)
    }

    /// Selection of the rows where `col` is non-null and satisfies `pred`.
    pub fn filter_col(&self, col: usize, pred: impl Fn(EntityId) -> bool) -> Table {
        let c = &self.cols[col];
        let idx: Vec<u32> = (0..self.rows)
            .filter(|&i| c.is_valid(i) && pred(c.value_unchecked(i)))
            .map(|i| i as u32)
            .collect();
        self.gather(&idx)
    }

    /// Sorted copy of the rows (null sorts first); used by tests to compare
    /// relations under set semantics. Sorts row indices via column-wise
    /// cell comparison, materializing each row once.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut idx: Vec<u32> = (0..self.rows as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            for c in &self.cols {
                let ord = c.get(a as usize).cmp(&c.get(b as usize));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        idx.iter().map(|&i| self.row(i as usize)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Value {
        Some(EntityId::from_u32(i))
    }

    fn sample() -> Table {
        Table::from_rows(
            Schema::new(["p", "t"]),
            [
                vec![v(1), v(10)],
                vec![v(2), v(10)],
                vec![v(1), None],
                vec![v(3), v(30)],
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.width(), 2);
        assert_eq!(t.cell(0, 1), v(10));
        assert_eq!(t.cell(2, 1), None);
        assert_eq!(t.rows().count(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(Schema::new(["a", "b"]));
        t.push_row(&[v(1)]);
    }

    #[test]
    fn distinct_count_ignores_nulls_and_dups() {
        let t = sample();
        assert_eq!(t.distinct_count(0), 3); // 1, 2, 3
        assert_eq!(t.distinct_count(1), 2); // 10, 30 (null ignored)
    }

    #[test]
    fn projection_and_dedup() {
        let t = sample();
        let mut p = t.project(&[1]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.schema().names(), &["t".to_string()]);
        p.dedup();
        assert_eq!(p.len(), 3); // 10, null, 30
    }

    #[test]
    fn rows_with_null_selects_partials() {
        let t = sample();
        let partial = t.rows_with_null();
        assert_eq!(partial.len(), 1);
        assert_eq!(partial.row(0)[0], v(1));
    }

    #[test]
    fn filter_col_skips_nulls() {
        let t = sample();
        let only1 = t.filter_col(0, |e| e == EntityId::from_u32(1));
        assert_eq!(only1.len(), 2);
        let none = t.filter_col(1, |e| e == EntityId::from_u32(999));
        assert!(none.is_empty());
    }

    #[test]
    fn dedup_is_order_preserving() {
        let mut t = Table::from_rows(
            Schema::new(["a"]),
            [vec![v(2)], vec![v(1)], vec![v(2)], vec![v(1)]],
        );
        t.dedup();
        assert_eq!(t.sorted_rows(), vec![vec![v(1)], vec![v(2)]]);
        assert_eq!(t.row(0)[0], v(2), "first occurrence kept first");
    }

    #[test]
    fn dedup_distinguishes_null_from_entity_zero() {
        let mut t = Table::from_rows(Schema::new(["a"]), [vec![v(0)], vec![None], vec![v(0)]]);
        t.dedup();
        assert_eq!(t.len(), 2, "entity 0 and null are distinct cells");
    }

    #[test]
    fn zero_width_table() {
        let t = Table::new(Schema::new(Vec::<String>::new()));
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn zero_width_rows_are_counted() {
        let mut t = Table::new(Schema::new(Vec::<String>::new()));
        t.push_row(&[]);
        t.push_row(&[]);
        t.push_row(&[]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.rows().count(), 3);
        assert_eq!(t.row(2), &[] as &[Value]);
        t.dedup();
        assert_eq!(t.len(), 1, "all zero-width rows are identical");
    }

    #[test]
    fn zero_width_projection_keeps_cardinality() {
        let t = sample();
        let p = t.project(&[]);
        assert_eq!(p.width(), 0);
        assert_eq!(p.len(), 4, "COUNT(*) must survive SELECT of no columns");
        assert_eq!(p.rows().count(), 4);
        // No cells means no nulls: the partial-realization selection is empty.
        assert!(p.rows_with_null().is_empty());
    }

    #[test]
    fn distinct_count_after_projection() {
        let t = sample();
        assert_eq!(t.project(&[0]).distinct_count(0), 3);
        assert_eq!(t.project(&[1, 0]).distinct_count(0), 2);
    }

    #[test]
    fn gather_reorders_and_pads() {
        let t = sample();
        let g = t.gather(&[3, 0, crate::NULL_IX]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.row(0), vec![v(3), v(30)]);
        assert_eq!(g.row(1), vec![v(1), v(10)]);
        assert_eq!(g.row(2), vec![None, None]);
    }

    #[test]
    fn append_column_extends_schema() {
        let mut t = sample();
        let marker = Column::from_values((0..4).map(EntityId::from_u32).collect::<Vec<_>>());
        t.append_column("@m", marker);
        assert_eq!(t.width(), 3);
        assert_eq!(t.cell(2, 2), v(2));
    }

    #[test]
    fn extend_dedup_equals_push_all_then_dedup() {
        let mut base = Table::from_rows(
            Schema::new(["a", "b"]),
            [vec![v(1), v(10)], vec![v(2), None], vec![v(3), v(30)]],
        );
        let delta = Table::from_rows(
            Schema::new(["a", "b"]),
            [
                vec![v(2), None],  // duplicate of base
                vec![v(4), v(40)], // new
                vec![v(4), v(40)], // duplicate within delta
                vec![v(1), v(10)], // duplicate of base
                vec![v(5), None],  // new
            ],
        );
        let mut oracle = base.clone();
        for r in delta.rows() {
            oracle.push_row(&r);
        }
        oracle.dedup();

        let before: Vec<_> = base.rows().collect();
        let appended = base.extend_dedup(&delta);
        assert_eq!(appended, 2);
        assert_eq!(
            base.rows().collect::<Vec<_>>(),
            oracle.rows().collect::<Vec<_>>()
        );
        // Prefix rows are untouched, in place.
        assert_eq!(&base.rows().take(3).collect::<Vec<_>>(), &before);
    }

    #[test]
    fn extend_dedup_zero_width() {
        let mut base = Table::new(Schema::new(Vec::<String>::new()));
        let mut delta = Table::new(Schema::new(Vec::<String>::new()));
        delta.push_row(&[]);
        delta.push_row(&[]);
        assert_eq!(base.extend_dedup(&delta), 1);
        assert_eq!(base.len(), 1);
        assert_eq!(base.extend_dedup(&delta), 0);
    }

    #[test]
    fn extend_dedup_empty_delta_is_noop() {
        let mut base = sample();
        let delta = Table::new(Schema::new(["p", "t"]));
        assert_eq!(base.extend_dedup(&delta), 0);
        assert_eq!(base.len(), 4);
    }

    #[test]
    fn extend_dedup_distinguishes_null_from_entity_zero() {
        let mut base = Table::from_rows(Schema::new(["a"]), [vec![v(0)]]);
        let delta = Table::from_rows(Schema::new(["a"]), [vec![None], vec![v(0)]]);
        assert_eq!(base.extend_dedup(&delta), 1);
        assert_eq!(base.len(), 2);
        assert_eq!(base.row(1)[0], None);
    }

    #[test]
    fn extend_dedup_large_matches_dedup_oracle() {
        let mut base = Table::new(Schema::new(["a", "b"]));
        for i in 0..600u32 {
            base.push_row(&[v(i % 37), v(i % 11)]);
        }
        base.dedup();
        let mut delta = Table::new(Schema::new(["a", "b"]));
        for i in 0..400u32 {
            delta.push_row(&[v(i % 41), v(i % 13)]);
        }
        let mut oracle = base.clone();
        for r in delta.rows() {
            oracle.push_row(&r);
        }
        oracle.dedup();
        base.extend_dedup(&delta);
        assert_eq!(base, oracle);
    }

    #[test]
    fn dedup_large_no_collision_confusion() {
        // Enough rows to exercise hash bucketing across many groups.
        let mut t = Table::new(Schema::new(["a", "b"]));
        for i in 0..1000u32 {
            t.push_row(&[v(i % 50), v(i % 7)]);
        }
        t.dedup();
        // 50 × 7 = 350 combinations, every one reached since lcm(50,7)=350.
        assert_eq!(t.len(), 350);
    }
}
