//! Adaptive cost-based join planning.
//!
//! Every glue join in the Algorithm-2 refinement loop used to run through
//! a fixed dispatch: hash build-right, with a radix-partitioned parallel
//! variant gated by the hard-coded `PARALLEL_MIN_LEFT` /
//! `PARALLEL_MIN_RIGHT` thresholds. This module replaces those heuristics
//! with a small planner:
//!
//! * **Sampled statistics** ([`sample_join_stats`]): per join, a strided
//!   sample of at most 256 rows per side estimates valid-key counts and
//!   key distinctness, from which the expected output cardinality is
//!   derived (`|L|·|R| / max(d_L, d_R)` — the classic equi-join estimate).
//! * **Cost model** ([`choose_plan`]): per-row/per-pair weights score every
//!   (strategy, build side, partition count) candidate; the cheapest wins.
//!   The parallel candidate carries a fixed fan-out overhead, which *is*
//!   the planner-derived replacement for the old constants: partitioning
//!   is chosen exactly when the modelled serial cost exceeds it.
//! * **Runtime re-planning** ([`Planner::pair_join`]): the chosen plan runs
//!   with an output budget of `replan_factor ×` the estimate. If the join
//!   overshoots, the partial work is discarded, the join is re-planned
//!   with the observed cardinality, and the re-run is uncapped.
//! * **Per-shape plan cache**: plans are cached by ([`PlanKey`]) — caller
//!   context (seed type) × glue arity × log₂ size buckets — so refinement
//!   iterations and streaming delta-joins reuse proven plans. A re-plan
//!   bumps the cache epoch, invalidating every entry whose estimates were
//!   derived under the drifted statistics.
//!
//! **Determinism contract**: all strategies emit the canonical
//! (left row, right row) ascending pair order, so the mined output is
//! byte-identical under *any* plan choice — which is what makes every
//! planner decision differentially testable ([`JoinPlan`] can be forced
//! through [`PlannerSettings::forced`] or [`join_glue_pairs_planned`]).
//! Only timings and the planner counters themselves vary.

use crate::hash::FastMap;
use crate::join::{
    default_partitions, hash_pairs, hash_pairs_build_left, hash_pairs_capped, key_hash,
    nested_pairs_capped, partitioned_pairs_capped, sort_merge_pairs_capped, validate, BatchRunner,
    ColumnGlue, GluePlan, JoinKey, Overflow, Pair,
};
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Pair-stage strategy. Every strategy produces the identical canonical
/// pair stream; they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Strategy {
    /// Serial hash join (build one side, probe the other).
    #[default]
    Hash,
    /// Sort both sides by key, merge equal-key groups.
    SortMerge,
    /// Cross-product scan — the paper's `PM−join` baseline.
    NestedLoop,
    /// Radix-partitioned parallel hash join on a [`BatchRunner`].
    Partitioned,
}

/// Which side the hash index is built over. Ignored by `SortMerge` and
/// `NestedLoop`, which have no build side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BuildSide {
    /// Index the left relation, probe with the right.
    Left,
    /// Index the right relation, probe with the left (the classic shape).
    #[default]
    Right,
}

/// A fully-specified pair-stage plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct JoinPlan {
    /// Pair-stage strategy.
    pub strategy: Strategy,
    /// Build side for the hash strategies.
    pub build_side: BuildSide,
    /// Radix partition count for [`Strategy::Partitioned`]; `0` derives
    /// the fixed-heuristic default from the runner width. Must otherwise
    /// be a power of two in `2..=64`.
    pub partitions: u32,
}

/// Per-call planner knobs, derived from the miner config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerSettings {
    /// Re-plan when observed output exceeds the estimate by this factor.
    pub replan_factor: f64,
    /// Bypass planning entirely and run this exact plan (differential
    /// testing and ablation benches).
    pub forced: Option<JoinPlan>,
}

impl Default for PlannerSettings {
    fn default() -> Self {
        PlannerSettings {
            replan_factor: 4.0,
            forced: None,
        }
    }
}

/// Sampled per-join statistics feeding the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinStats {
    /// Left relation row count.
    pub left_rows: usize,
    /// Right relation row count.
    pub right_rows: usize,
    /// Estimated distinct join keys on the left (non-null rows).
    pub left_distinct: usize,
    /// Estimated distinct join keys on the right (non-null rows).
    pub right_distinct: usize,
    /// Estimated output cardinality.
    pub est_pairs: u64,
}

/// What one planned join did — fed into `MineStats` by the miner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanOutcome {
    /// The strategy that produced the final output (post re-plan).
    pub picked: Strategy,
    /// The plan came from the shape cache.
    pub cache_hit: bool,
    /// The shape was planned from fresh statistics.
    pub cache_miss: bool,
    /// The first attempt overshot its budget and was re-planned.
    pub replanned: bool,
}

/// Shape key for the plan cache: caller context (seed type) × glue arity
/// × log₂ size buckets. Joins of the same shape across refinement
/// iterations land on the same key even as tables grow within a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    context: u64,
    glue_arity: u8,
    left_bucket: u8,
    right_bucket: u8,
}

#[derive(Debug, Clone, Copy)]
struct CachedPlan {
    plan: JoinPlan,
    /// Observed selectivity `pairs / (|L|·|R|)` of the last run — a proven
    /// estimate for the next join of this shape.
    sel: f64,
    epoch: u64,
}

/// Joins at or under this many rows per side skip statistics and the
/// cache entirely: a serial build-right hash join is already optimal and
/// the planning overhead would dominate.
const SMALL_JOIN: usize = 512;

/// Additive floor on the re-plan budget: tiny estimates must not trigger
/// bailouts on joins whose output is trivially affordable anyway.
const REPLAN_FLOOR: usize = 4096;

// Cost-model weights, in abstract per-row units (relative magnitudes are
// what matters). Calibrated against the fig5_join / fig_plan benches.
const C_BUILD: f64 = 2.2; // insert one build row into the hash index
const C_PROBE: f64 = 1.0; // probe one row
const C_EMIT: f64 = 0.4; // emit one pair
const C_SORT: f64 = 0.05; // per pair per log2(pairs): canonical-order restore
const C_SM_SORT: f64 = 0.35; // per row per log2(rows): sort-merge key sort
const C_NESTED: f64 = 0.25; // per crossed pair
const C_PAR_FIXED: f64 = 6000.0; // fan-out overhead of the partitioned join
const C_PAR_SCAN: f64 = 0.3; // per row: scatter + chunk bookkeeping

fn lg(x: f64) -> f64 {
    if x <= 2.0 {
        1.0
    } else {
        x.log2()
    }
}

/// Modelled cost of a serial hash join building over `build` rows and
/// probing `probe` rows. `sorted_emit` adds the canonical-order restore
/// that build-left requires.
fn hash_cost(build: f64, probe: f64, pairs: f64, sorted_emit: bool) -> f64 {
    let mut c = C_BUILD * build + C_PROBE * probe + C_EMIT * pairs;
    if sorted_emit {
        c += C_SORT * pairs * lg(pairs);
    }
    c
}

/// log₂ size bucket of a table.
fn bucket(n: usize) -> u8 {
    n.max(1).ilog2() as u8
}

/// Picks the partition count for a parallel plan: the fixed-heuristic
/// default fan-out, halved while partitions would hold fewer than 256
/// build rows each (tiny partitions waste index setup).
fn pick_partitions(build_rows: usize, width: usize) -> u32 {
    let mut p = (width * 2).next_power_of_two().clamp(2, 64);
    while p > 2 && build_rows / p < 256 {
        p /= 2;
    }
    p as u32
}

/// Scores every candidate plan against the sampled statistics and returns
/// the cheapest. Pure — same stats and width always yield the same plan.
pub fn choose_plan(stats: &JoinStats, width: usize) -> JoinPlan {
    let l = stats.left_rows as f64;
    let r = stats.right_rows as f64;
    let e = stats.est_pairs as f64;

    let mut best_cost = f64::INFINITY;
    let mut best = JoinPlan::default();
    let mut consider = |cost: f64, plan: JoinPlan| {
        if cost < best_cost {
            best_cost = cost;
            best = plan;
        }
    };

    let hash_right = hash_cost(r, l, e, false);
    let hash_left = hash_cost(l, r, e, true);
    consider(
        hash_right,
        JoinPlan {
            strategy: Strategy::Hash,
            build_side: BuildSide::Right,
            partitions: 0,
        },
    );
    consider(
        hash_left,
        JoinPlan {
            strategy: Strategy::Hash,
            build_side: BuildSide::Left,
            partitions: 0,
        },
    );
    consider(
        C_SM_SORT * (l * lg(l) + r * lg(r)) + C_PROBE * (l + r) + C_EMIT * e + C_SORT * e * lg(e),
        JoinPlan {
            strategy: Strategy::SortMerge,
            build_side: BuildSide::Right,
            partitions: 0,
        },
    );
    consider(
        C_NESTED * l * r,
        JoinPlan {
            strategy: Strategy::NestedLoop,
            build_side: BuildSide::Right,
            partitions: 0,
        },
    );
    if width > 1 {
        let w = width as f64;
        for (serial, build_rows, side) in [
            (hash_right, stats.right_rows, BuildSide::Right),
            (hash_left, stats.left_rows, BuildSide::Left),
        ] {
            consider(
                serial / w + C_PAR_FIXED + C_PAR_SCAN * (l + r),
                JoinPlan {
                    strategy: Strategy::Partitioned,
                    build_side: side,
                    partitions: pick_partitions(build_rows, width),
                },
            );
        }
    }
    best
}

/// Estimates valid-key count and key distinctness of one join side from a
/// strided sample of at most 256 rows. Distinctness uses Charikar's GEE
/// estimator: keys that repeat *within* the sample mark a small domain
/// (estimate ≈ seen), and only sample singletons scale up, by
/// `√(len/sample)`. The naive linear scale-up overshoots small domains by
/// an order of magnitude, which underestimates output cardinality and
/// trips the re-plan budget on perfectly healthy joins.
fn side_stats(len: usize, key_at: impl Fn(usize) -> Option<JoinKey>) -> SideSample {
    if len == 0 {
        return SideSample::default();
    }
    let sample = len.min(256);
    let mut counts: HashMap<u64, u32> = HashMap::with_capacity(sample);
    let mut valid = 0usize;
    for s in 0..sample {
        let i = s * len / sample;
        if let Some(k) = key_at(i) {
            valid += 1;
            *counts.entry(key_hash(&k)).or_insert(0) += 1;
        }
    }
    let est_valid = valid * len / sample;
    let seen = counts.len();
    let once = counts.values().filter(|&&c| c == 1).count();
    let scale = (len as f64 / sample as f64).sqrt();
    let est_distinct = (seen as f64 + (scale - 1.0) * once as f64) as usize;
    SideSample {
        valid: est_valid,
        distinct: est_distinct.clamp(seen.max(1), est_valid.max(1)),
        counts,
        sample,
        len,
    }
}

/// One join side's sampled key statistics.
#[derive(Default)]
struct SideSample {
    /// Estimated non-null key rows.
    valid: usize,
    /// Estimated distinct keys (GEE).
    distinct: usize,
    /// Key-hash → occurrence count within the sample.
    counts: HashMap<u64, u32>,
    sample: usize,
    len: usize,
}

/// Minimum shared sampled keys for the cross-sample estimate to stand on
/// its own; below this the overlap is too sparse to be statistically
/// meaningful and the classic estimate is folded in as a floor.
const CROSS_MIN_SHARED: usize = 8;

/// Unbiased skew-aware output estimate: `Σ_k cnt_L(k)·cnt_R(k)` over the
/// two samples, scaled by each side's sampling ratio. Hot keys appear
/// many times in both samples, so their quadratic pair contribution —
/// which the `|L|·|R| / max(d)` uniform estimate misses entirely — is
/// counted. Returns the estimate and how many distinct keys the samples
/// shared (its support).
fn cross_estimate(l: &SideSample, r: &SideSample) -> (u64, usize) {
    if l.sample == 0 || r.sample == 0 {
        return (0, 0);
    }
    let (small, big) = if l.counts.len() <= r.counts.len() {
        (&l.counts, &r.counts)
    } else {
        (&r.counts, &l.counts)
    };
    let mut dot = 0u64;
    let mut shared = 0usize;
    for (k, c) in small {
        if let Some(c2) = big.get(k) {
            dot += u64::from(*c) * u64::from(*c2);
            shared += 1;
        }
    }
    let scale = (l.len as f64 / l.sample as f64) * (r.len as f64 / r.sample as f64);
    ((dot as f64 * scale).min(u64::MAX as f64) as u64, shared)
}

/// Samples both sides of a glue join and derives the expected output
/// cardinality. Public entry for benches and diagnostics.
pub fn join_stats(left: &Table, right: &Table, glue: &[ColumnGlue]) -> JoinStats {
    sample_join_stats(left, right, &GluePlan::new(glue))
}

/// Samples both sides and derives the expected output cardinality. When
/// the two samples share enough keys the unbiased cross-sample estimate
/// is trusted outright (the classic uniform estimate both misses skew
/// and inherits the distinct estimator's bias); on sparse overlap the
/// classic estimate is folded in as a floor. Capped at `|L|·|R|`.
fn sample_join_stats(left: &Table, right: &Table, plan: &GluePlan) -> JoinStats {
    let ls = side_stats(left.len(), |i| plan.left_key(left, i));
    let rs = side_stats(right.len(), |i| plan.right_key(right, i));
    let denom = ls.distinct.max(rs.distinct).max(1) as u128;
    let classic = (ls.valid as u128 * rs.valid as u128 / denom).min(u64::MAX as u128) as u64;
    let cap = (left.len() as u128 * right.len() as u128).min(u64::MAX as u128) as u64;
    let (cross, shared) = cross_estimate(&ls, &rs);
    let est = if shared >= CROSS_MIN_SHARED {
        cross
    } else {
        classic.max(cross)
    }
    .min(cap);
    JoinStats {
        left_rows: left.len(),
        right_rows: right.len(),
        left_distinct: ls.distinct,
        right_distinct: rs.distinct,
        est_pairs: est,
    }
}

/// Runs the exact plan, with an optional output budget.
fn execute(
    plan: JoinPlan,
    left: &Table,
    right: &Table,
    gp: &GluePlan,
    runner: &dyn BatchRunner,
    cap: Option<usize>,
) -> Result<Vec<Pair>, Overflow> {
    match (plan.strategy, plan.build_side) {
        (Strategy::Hash, BuildSide::Right) => hash_pairs_capped(left, right, gp, cap),
        (Strategy::Hash, BuildSide::Left) => hash_pairs_build_left(left, right, gp, cap),
        (Strategy::SortMerge, _) => sort_merge_pairs_capped(left, right, gp, cap),
        (Strategy::NestedLoop, _) => nested_pairs_capped(left, right, gp, cap),
        (Strategy::Partitioned, side) => {
            let parts = if plan.partitions == 0 {
                default_partitions(runner)
            } else {
                plan.partitions as usize
            };
            partitioned_pairs_capped(left, right, gp, runner, parts, side == BuildSide::Left, cap)
        }
    }
}

/// Pair stage under an explicit plan, uncapped — the `ForcedPlan` entry
/// point for differential tests and benches. Byte-identical to
/// [`crate::join::join_glue_pairs`] for every valid plan.
pub fn join_glue_pairs_planned(
    left: &Table,
    right: &Table,
    glue: &[ColumnGlue],
    plan: JoinPlan,
    runner: &dyn BatchRunner,
) -> Vec<Pair> {
    validate(left, right, glue);
    let gp = GluePlan::new(glue);
    match execute(plan, left, right, &gp, runner, None) {
        Ok(pairs) => pairs,
        Err(_) => unreachable!("uncapped join cannot overflow"),
    }
}

/// The adaptive planner: shape cache + epoch, shared (via `Arc`) across
/// the refinement iterations of one mining run and across the streaming
/// miner's refreshes. Thread-safe; cache traffic is a brief mutex hold
/// with sampling and cost evaluation done outside the lock.
#[derive(Debug, Default)]
pub struct Planner {
    cache: Mutex<FastMap<PlanKey, CachedPlan>>,
    epoch: AtomicU64,
}

impl Planner {
    /// Fresh planner with an empty shape cache.
    pub fn new() -> Self {
        Planner::default()
    }

    /// Invalidates every cached plan (bumps the epoch). Exposed for tests
    /// and for callers that know the workload shifted wholesale.
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of live (current-epoch) cache entries; diagnostics only.
    pub fn cached_shapes(&self) -> usize {
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.cache
            .lock()
            .unwrap()
            .values()
            .filter(|e| e.epoch == epoch)
            .count()
    }

    /// Plans and runs one pair-stage join.
    ///
    /// `context` identifies the caller's pattern shape (seed type id);
    /// together with glue arity and size buckets it forms the cache key.
    /// Returns the canonical pair stream — byte-identical to
    /// [`crate::join::join_glue_pairs`] regardless of the plan taken —
    /// plus the [`PlanOutcome`] for the caller's counters.
    pub fn pair_join(
        &self,
        settings: &PlannerSettings,
        context: u64,
        left: &Table,
        right: &Table,
        glue: &[ColumnGlue],
        runner: &dyn BatchRunner,
    ) -> (Vec<Pair>, PlanOutcome) {
        validate(left, right, glue);
        let gp = GluePlan::new(glue);

        if let Some(plan) = settings.forced {
            let pairs = match execute(plan, left, right, &gp, runner, None) {
                Ok(pairs) => pairs,
                Err(_) => unreachable!("uncapped join cannot overflow"),
            };
            return (
                pairs,
                PlanOutcome {
                    picked: plan.strategy,
                    ..PlanOutcome::default()
                },
            );
        }

        let (l, r) = (left.len(), right.len());
        if l == 0 || r == 0 || (l <= SMALL_JOIN && r <= SMALL_JOIN) {
            // Tiny-join fast path: no stats, no cache traffic.
            let pairs = hash_pairs(left, right, &gp);
            return (
                pairs,
                PlanOutcome {
                    picked: Strategy::Hash,
                    ..PlanOutcome::default()
                },
            );
        }

        let key = PlanKey {
            context,
            glue_arity: gp.glued.len().min(u8::MAX as usize) as u8,
            left_bucket: bucket(l),
            right_bucket: bucket(r),
        };
        let epoch = self.epoch.load(Ordering::Relaxed);
        let cached = {
            let cache = self.cache.lock().unwrap();
            cache.get(&key).filter(|e| e.epoch == epoch).copied()
        };
        let (mut plan, est_pairs, cache_hit) = match cached {
            Some(e) => (e.plan, (e.sel * l as f64 * r as f64) as u64, true),
            None => {
                let stats = sample_join_stats(left, right, &gp);
                (choose_plan(&stats, runner.width()), stats.est_pairs, false)
            }
        };

        let budget =
            ((est_pairs as f64 * settings.replan_factor) as usize).max(l + r + REPLAN_FLOOR);
        let mut outcome = PlanOutcome {
            picked: plan.strategy,
            cache_hit,
            cache_miss: !cache_hit,
            replanned: false,
        };
        let pairs = match execute(plan, left, right, &gp, runner, Some(budget)) {
            Ok(pairs) => pairs,
            Err(observed) => {
                // The estimate drifted past replan_factor: discard the
                // partial work, re-plan against the observed cardinality,
                // and invalidate the shape cache (sibling shapes were
                // planned under the same bad statistics).
                outcome.replanned = true;
                let mut stats = sample_join_stats(left, right, &gp);
                stats.est_pairs = stats.est_pairs.max((observed as u64).saturating_mul(2));
                plan = choose_plan(&stats, runner.width());
                outcome.picked = plan.strategy;
                self.invalidate();
                match execute(plan, left, right, &gp, runner, None) {
                    Ok(pairs) => pairs,
                    Err(_) => unreachable!("uncapped join cannot overflow"),
                }
            }
        };

        // Feed the observed selectivity back: the next join of this shape
        // starts from a proven plan and a proven estimate.
        let sel = pairs.len() as f64 / (l as f64 * r as f64);
        let epoch_now = self.epoch.load(Ordering::Relaxed);
        self.cache.lock().unwrap().insert(
            key,
            CachedPlan {
                plan,
                sel,
                epoch: epoch_now,
            },
        );
        (pairs, outcome)
    }

    /// Plans one delta join for the streaming miner: decides whether the
    /// prefix-probe work is worth fanning out, caching the verdict per
    /// shape. The delta algorithm itself is fixed (it *is* the strategy);
    /// a forced plan only steers the serial/parallel choice
    /// ([`Strategy::Partitioned`] → parallel, anything else → serial),
    /// which is byte-identical either way.
    ///
    /// Returns whether to run the delta join on the parallel runner, plus
    /// the outcome for the caller's counters.
    #[allow(clippy::too_many_arguments)]
    pub fn delta_join_parallel(
        &self,
        settings: &PlannerSettings,
        context: u64,
        left_len: usize,
        left_old: usize,
        right_len: usize,
        right_old: usize,
        glue_arity: usize,
        width: usize,
    ) -> (bool, PlanOutcome) {
        // Probe-side work: part one probes the stable left prefix when
        // Δright is non-empty; part two probes the full right side when
        // Δleft is non-empty.
        let probe_work = (if right_len > right_old { left_old } else { 0 })
            + (if left_len > left_old { right_len } else { 0 });

        if let Some(plan) = settings.forced {
            let parallel = width > 1 && plan.strategy == Strategy::Partitioned;
            let picked = if parallel {
                Strategy::Partitioned
            } else {
                Strategy::Hash
            };
            return (
                parallel,
                PlanOutcome {
                    picked,
                    ..PlanOutcome::default()
                },
            );
        }

        // Shape key: tag the context so delta shapes never collide with
        // full-join shapes of the same seed.
        const DELTA_TAG: u64 = 1 << 63;
        let key = PlanKey {
            context: context | DELTA_TAG,
            glue_arity: glue_arity.min(u8::MAX as usize) as u8,
            left_bucket: bucket(probe_work),
            right_bucket: bucket((left_len - left_old) + (right_len - right_old)),
        };
        let epoch = self.epoch.load(Ordering::Relaxed);
        let cached = {
            let cache = self.cache.lock().unwrap();
            cache.get(&key).filter(|e| e.epoch == epoch).copied()
        };
        let (plan, cache_hit) = match cached {
            Some(e) => (e.plan, true),
            None => {
                // Parallel pays off once the saved probe time beats the
                // fan-out overhead — the same breakeven the cost model
                // charges the partitioned full join.
                let w = width.max(1) as f64;
                let saved = C_PROBE * probe_work as f64 * (1.0 - 1.0 / w);
                let parallel = width > 1 && saved > C_PAR_FIXED;
                let plan = JoinPlan {
                    strategy: if parallel {
                        Strategy::Partitioned
                    } else {
                        Strategy::Hash
                    },
                    build_side: BuildSide::Right,
                    partitions: 0,
                };
                self.cache.lock().unwrap().insert(
                    key,
                    CachedPlan {
                        plan,
                        sel: 0.0,
                        epoch,
                    },
                );
                (plan, false)
            }
        };
        let parallel = width > 1 && plan.strategy == Strategy::Partitioned;
        (
            parallel,
            PlanOutcome {
                picked: plan.strategy,
                cache_hit,
                cache_miss: !cache_hit,
                replanned: false,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::join::{join_glue_pairs, SerialRunner};
    use crate::schema::Schema;
    use wiclean_types::EntityId;

    /// Scoped-thread runner (mirrors the one in `join::tests`).
    struct TestRunner(usize);
    impl BatchRunner for TestRunner {
        fn width(&self) -> usize {
            self.0
        }
        fn run_batch(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
            std::thread::scope(|s| {
                for w in 0..self.0 {
                    let f = &f;
                    s.spawn(move || {
                        let mut i = w;
                        while i < n {
                            f(i);
                            i += self.0;
                        }
                    });
                }
            });
        }
    }

    fn e(x: u32) -> Option<EntityId> {
        Some(EntityId::from_u32(x))
    }

    fn table(cols: Vec<(&str, Vec<Option<EntityId>>)>) -> Table {
        let schema = Schema::new(cols.iter().map(|(n, _)| n.to_string()));
        let rows = cols.first().map_or(0, |(_, v)| v.len());
        let columns = cols
            .into_iter()
            .map(|(_, vals)| {
                let mut c = Column::new();
                for v in vals {
                    c.push(v);
                }
                c
            })
            .collect();
        Table::from_parts(schema, columns, rows)
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// ~1500 × ~900 fixture with duplicate keys and a `≠` column.
    fn fixture() -> (Table, Table, Vec<ColumnGlue>) {
        let mut rng = 0x1234_5678_9abc_def0u64;
        let lrows = 1500;
        let rrows = 900;
        let mut lk = Vec::new();
        let mut lo = Vec::new();
        for _ in 0..lrows {
            lk.push(e((xorshift(&mut rng) % 300) as u32));
            lo.push(e(1000 + (xorshift(&mut rng) % 50) as u32));
        }
        let mut rk = Vec::new();
        let mut rn = Vec::new();
        for _ in 0..rrows {
            rk.push(e((xorshift(&mut rng) % 300) as u32));
            rn.push(e(1000 + (xorshift(&mut rng) % 50) as u32));
        }
        let left = table(vec![("k", lk), ("o", lo)]);
        let right = table(vec![("k", rk), ("n", rn)]);
        let glue = vec![
            ColumnGlue::Glued(0),
            ColumnGlue::New {
                name: "n".into(),
                distinct_from: vec![1],
            },
        ];
        (left, right, glue)
    }

    #[test]
    fn every_forced_plan_is_byte_identical() {
        let (left, right, glue) = fixture();
        let expect = join_glue_pairs(&left, &right, &glue);
        let runner = TestRunner(3);
        for strategy in [
            Strategy::Hash,
            Strategy::SortMerge,
            Strategy::NestedLoop,
            Strategy::Partitioned,
        ] {
            for build_side in [BuildSide::Left, BuildSide::Right] {
                for partitions in [0u32, 2, 8, 64] {
                    let plan = JoinPlan {
                        strategy,
                        build_side,
                        partitions,
                    };
                    let got = join_glue_pairs_planned(&left, &right, &glue, plan, &runner);
                    assert_eq!(got, expect, "plan {plan:?} diverged");
                    let serial = join_glue_pairs_planned(&left, &right, &glue, plan, &SerialRunner);
                    assert_eq!(serial, expect, "plan {plan:?} diverged on SerialRunner");
                }
            }
        }
    }

    #[test]
    fn capped_execution_aborts_every_strategy() {
        let (left, right, glue) = fixture();
        let gp = GluePlan::new(&glue);
        let full = join_glue_pairs(&left, &right, &glue).len();
        let runner = TestRunner(3);
        for strategy in [
            Strategy::Hash,
            Strategy::SortMerge,
            Strategy::NestedLoop,
            Strategy::Partitioned,
        ] {
            for build_side in [BuildSide::Left, BuildSide::Right] {
                let plan = JoinPlan {
                    strategy,
                    build_side,
                    partitions: 0,
                };
                let res = execute(plan, &left, &right, &gp, &runner, Some(full / 10));
                assert!(res.is_err(), "plan {plan:?} ignored its cap");
                let ok = execute(plan, &left, &right, &gp, &runner, Some(full));
                assert_eq!(ok.expect("cap == full size must succeed").len(), full);
            }
        }
    }

    #[test]
    fn cost_model_builds_over_the_smaller_side() {
        // Small left × huge right: building the index over the right side
        // costs ~2.2 units per right row; the planner must flip the build.
        let stats = JoinStats {
            left_rows: 800,
            right_rows: 400_000,
            left_distinct: 600,
            right_distinct: 90_000,
            est_pairs: 3_500,
        };
        let plan = choose_plan(&stats, 1);
        assert_eq!(plan.strategy, Strategy::Hash);
        assert_eq!(plan.build_side, BuildSide::Left);

        // Tiny inputs prefer the nested loop (no index setup at all).
        let tiny = JoinStats {
            left_rows: 4,
            right_rows: 4,
            left_distinct: 4,
            right_distinct: 4,
            est_pairs: 4,
        };
        assert_eq!(choose_plan(&tiny, 1).strategy, Strategy::NestedLoop);

        // Big × big on a wide runner goes parallel.
        let big = JoinStats {
            left_rows: 200_000,
            right_rows: 150_000,
            left_distinct: 40_000,
            right_distinct: 40_000,
            est_pairs: 750_000,
        };
        assert_eq!(choose_plan(&big, 8).strategy, Strategy::Partitioned);
        // …but stays serial on one thread.
        assert_ne!(choose_plan(&big, 1).strategy, Strategy::Partitioned);
    }

    #[test]
    fn sampled_stats_bound_distinct_counts() {
        let (left, right, glue) = fixture();
        let gp = GluePlan::new(&glue);
        let stats = sample_join_stats(&left, &right, &gp);
        assert_eq!(stats.left_rows, left.len());
        assert_eq!(stats.right_rows, right.len());
        assert!(stats.left_distinct >= 1 && stats.left_distinct <= left.len());
        assert!(stats.right_distinct >= 1 && stats.right_distinct <= right.len());
        assert!(stats.est_pairs > 0);
    }

    /// A shape engineered so the strided sample sees only distinct keys
    /// while the full join explodes on a hot key aliased away from the
    /// sample stride. Forces an estimate overshoot → mid-join bailout →
    /// replan.
    fn adversarial() -> (Table, Table, Vec<ColumnGlue>) {
        // 1024 rows, 256-row sample → the strided sample visits exactly
        // the rows at multiples of 4, which all carry distinct keys. The
        // other three quarters share one hot key the sample never sees,
        // so both the classic and the cross-sample estimate are blind to
        // the 768×768-pair explosion.
        let rows = 1024;
        let keys = |salt: u32| {
            (0..rows)
                .map(|i| if i % 4 == 0 { e(salt + i as u32) } else { e(7) })
                .collect::<Vec<_>>()
        };
        let left = table(vec![("k", keys(1000))]);
        let right = table(vec![("k", keys(5000))]);
        (left, right, vec![ColumnGlue::Glued(0)])
    }

    #[test]
    fn overshoot_triggers_replan_then_cache_recovers() {
        let (left, right, glue) = adversarial();
        let expect = join_glue_pairs(&left, &right, &glue);
        let planner = Planner::new();
        let settings = PlannerSettings::default();

        let (pairs, outcome) =
            planner.pair_join(&settings, 42, &left, &right, &glue, &SerialRunner);
        assert_eq!(pairs, expect);
        assert!(
            outcome.replanned,
            "engineered overshoot must trigger a re-plan"
        );
        assert!(outcome.cache_miss && !outcome.cache_hit);

        // The replan stored the observed selectivity under the new epoch:
        // the same shape now hits the cache and runs clean.
        let (pairs, outcome) =
            planner.pair_join(&settings, 42, &left, &right, &glue, &SerialRunner);
        assert_eq!(pairs, expect);
        assert!(outcome.cache_hit && !outcome.replanned);

        // Epoch invalidation turns the hit back into a miss.
        planner.invalidate();
        let (_, outcome) = planner.pair_join(&settings, 42, &left, &right, &glue, &SerialRunner);
        assert!(outcome.cache_miss);
    }

    #[test]
    fn forced_settings_bypass_cache_and_budget() {
        let (left, right, glue) = adversarial();
        let expect = join_glue_pairs(&left, &right, &glue);
        let planner = Planner::new();
        let settings = PlannerSettings {
            replan_factor: 1.5,
            forced: Some(JoinPlan {
                strategy: Strategy::SortMerge,
                build_side: BuildSide::Left,
                partitions: 0,
            }),
        };
        let (pairs, outcome) = planner.pair_join(&settings, 7, &left, &right, &glue, &SerialRunner);
        assert_eq!(pairs, expect);
        assert_eq!(outcome.picked, Strategy::SortMerge);
        assert!(!outcome.replanned && !outcome.cache_hit && !outcome.cache_miss);
        assert_eq!(
            planner.cached_shapes(),
            0,
            "forced plans must not pollute the cache"
        );
    }

    #[test]
    fn delta_decision_caches_per_shape() {
        let planner = Planner::new();
        let settings = PlannerSettings::default();
        // Large prefix probe on a wide pool: parallel pays off.
        let (par, o1) =
            planner.delta_join_parallel(&settings, 9, 100_000, 90_000, 5_000, 4_000, 1, 8);
        assert!(par);
        assert!(o1.cache_miss);
        let (par2, o2) =
            planner.delta_join_parallel(&settings, 9, 100_000, 90_000, 5_000, 4_000, 1, 8);
        assert!(par2);
        assert!(o2.cache_hit);
        // Tiny probe work stays serial even on a wide pool.
        let (par3, _) = planner.delta_join_parallel(&settings, 9, 1_000, 900, 50, 40, 1, 8);
        assert!(!par3);
        // Single-thread runner can never go parallel.
        let (par4, _) =
            planner.delta_join_parallel(&settings, 9, 100_000, 90_000, 5_000, 4_000, 1, 1);
        assert!(!par4);
    }
}
