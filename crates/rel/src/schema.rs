//! Relation schemas: ordered, named columns.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The ordered column names of a relation. Column names are pattern
/// variable names (e.g. `SoccerPlayer#1`), so a schema *is* the variable
/// list of the pattern whose realizations the table holds.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Creates a schema from column names; names must be distinct.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].contains(c),
                "duplicate column name `{c}` in schema"
            );
        }
        Self { columns }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column name at `ix`.
    pub fn name(&self, ix: usize) -> &str {
        &self.columns[ix]
    }

    /// Position of a column by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All column names in order.
    pub fn names(&self) -> &[String] {
        &self.columns
    }

    /// Appends a column, returning its index. Panics on duplicates.
    pub fn push(&mut self, name: impl Into<String>) -> usize {
        let name = name.into();
        assert!(
            self.position(&name).is_none(),
            "duplicate column name `{name}` in schema"
        );
        self.columns.push(name);
        self.columns.len() - 1
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::new(["player_1", "team_1"]);
        assert_eq!(s.width(), 2);
        assert_eq!(s.name(0), "player_1");
        assert_eq!(s.position("team_1"), Some(1));
        assert_eq!(s.position("nope"), None);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        Schema::new(["a", "a"]);
    }

    #[test]
    fn push_appends() {
        let mut s = Schema::new(["a"]);
        assert_eq!(s.push("b"), 1);
        assert_eq!(s.names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn push_rejects_duplicates() {
        let mut s = Schema::new(["a"]);
        s.push("a");
    }

    #[test]
    fn display() {
        let s = Schema::new(["x", "y"]);
        assert_eq!(s.to_string(), "(x, y)");
    }
}
