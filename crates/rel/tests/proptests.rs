//! Property-based tests for the relational engine.
//!
//! The central property is *differential*: the hash join must agree with
//! the nested-loop join on every input — the two are the paper's `PM` vs
//! `PM−join` realization computations, which must only differ in speed.

use proptest::prelude::*;
use wiclean_rel::rowstore::{
    join_glue_rows, join_glue_sort_merge_rows, outer_join_glue_rows, RowTable,
};
use wiclean_rel::{
    distinct_left_values, join_glue, join_glue_nested, join_glue_pairs,
    join_glue_pairs_partitioned, join_glue_sort_merge, outer_join_glue, ColumnGlue, Schema,
    SerialRunner, Table, Value,
};
use wiclean_types::EntityId;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (0u32..6).prop_map(|i| Some(EntityId::from_u32(i))),
        1 => Just(None),
    ]
}

fn table_strategy(cols: &'static [&'static str]) -> impl Strategy<Value = Table> {
    proptest::collection::vec(
        proptest::collection::vec(value_strategy(), cols.len()),
        0..12,
    )
    .prop_map(move |rows| Table::from_rows(Schema::new(cols.iter().copied()), rows))
}

/// Random glue spec over a 2-wide left and 2-wide right table.
fn glue_strategy() -> impl Strategy<Value = Vec<ColumnGlue>> {
    let col = 0usize..2;
    let one = prop_oneof![
        col.clone().prop_map(ColumnGlue::Glued),
        proptest::collection::vec(0usize..2, 0..3).prop_map(|d| ColumnGlue::New {
            name: "n0".into(),
            distinct_from: d,
        }),
    ];
    let two = prop_oneof![
        col.prop_map(ColumnGlue::Glued),
        proptest::collection::vec(0usize..2, 0..3).prop_map(|d| ColumnGlue::New {
            name: "n1".into(),
            distinct_from: d,
        }),
    ];
    (one, two).prop_map(|(a, b)| vec![a, b])
}

proptest! {
    /// Hash join ≡ nested loop join ≡ sort–merge join, on all inputs and
    /// glue specs.
    #[test]
    fn hash_equals_nested_equals_sort_merge(
        left in table_strategy(&["a", "b"]),
        right in table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let h = join_glue(&left, &right, &glue);
        let n = join_glue_nested(&left, &right, &glue);
        let m = join_glue_sort_merge(&left, &right, &glue);
        prop_assert_eq!(h.sorted_rows(), n.sorted_rows());
        prop_assert_eq!(h.sorted_rows(), m.sorted_rows());
    }

    /// The inner join is a sub-multiset of the outer join, and the outer
    /// join's extra rows all contain nulls.
    #[test]
    fn outer_extends_inner(
        left in table_strategy(&["a", "b"]),
        right in table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let inner = join_glue(&left, &right, &glue);
        let outer = outer_join_glue(&left, &right, &glue);
        prop_assert!(outer.len() >= inner.len());

        let inner_rows = inner.sorted_rows();
        let outer_rows = outer.sorted_rows();
        // Every inner row appears in the outer result.
        for r in &inner_rows {
            prop_assert!(outer_rows.contains(r));
        }
        // Outer-only rows are null-padded — provided the join actually has
        // columns to pad: unmatched left rows get nulls in New columns,
        // unmatched right rows get nulls in left columns not covered by a
        // glued right column. If no such column exists on either side,
        // unmatched rows can be null-free.
        let has_new = glue.iter().any(|g| matches!(g, ColumnGlue::New { .. }));
        let covered: std::collections::HashSet<usize> = glue
            .iter()
            .filter_map(|g| match g {
                ColumnGlue::Glued(i) => Some(*i),
                _ => None,
            })
            .collect();
        let left_fully_covered = covered.len() == left.width();
        if has_new && !left_fully_covered {
            let extra = outer.len() - inner.len();
            let nulls = outer.rows().filter(|r| r.iter().any(Option::is_none)).count();
            prop_assert!(nulls >= extra);
        }
    }

    /// Every left row is represented in the full outer join at least once.
    #[test]
    fn outer_covers_left(
        left in table_strategy(&["a", "b"]),
        right in table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let outer = outer_join_glue(&left, &right, &glue);
        prop_assert!(outer.len() >= left.len());
    }

    /// Joining against an empty right yields: inner → empty, outer → left
    /// padded with nulls on the new columns.
    #[test]
    fn empty_right_identities(
        left in table_strategy(&["a", "b"]),
        glue in glue_strategy(),
    ) {
        let right = Table::new(Schema::new(["x", "y"]));
        prop_assert!(join_glue(&left, &right, &glue).is_empty());
        let outer = outer_join_glue(&left, &right, &glue);
        prop_assert_eq!(outer.len(), left.len());
    }

    /// Projection then dedup never grows a table.
    #[test]
    fn project_dedup_shrinks(t in table_strategy(&["a", "b"])) {
        let mut p = t.project(&[0]);
        p.dedup();
        prop_assert!(p.len() <= t.len());
        prop_assert_eq!(p.width(), 1);
    }

    /// distinct_count equals the length of a deduped non-null projection.
    #[test]
    fn distinct_count_consistent(t in table_strategy(&["a", "b"])) {
        let dc = t.distinct_count(0);
        let set = t.distinct_values(0);
        prop_assert_eq!(dc, set.len());
    }
}

// ---------------------------------------------------------------------------
// Differential suite: every columnar operator vs the retained row-oriented
// reference engine (`rowstore`), under set semantics.
// ---------------------------------------------------------------------------

/// A value strategy skewed heavily toward nulls, so whole-column-null
/// tables occur regularly.
fn nullish_value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => (0u32..4).prop_map(|i| Some(EntityId::from_u32(i))),
        2 => Just(None),
    ]
}

fn nullish_table_strategy(cols: &'static [&'static str]) -> impl Strategy<Value = Table> {
    proptest::collection::vec(
        proptest::collection::vec(nullish_value_strategy(), cols.len()),
        0..12,
    )
    .prop_map(move |rows| Table::from_rows(Schema::new(cols.iter().copied()), rows))
}

proptest! {
    /// Columnar inner joins (hash, sort–merge, partitioned) agree with the
    /// row-oriented reference under set semantics.
    #[test]
    fn columnar_joins_match_row_reference(
        left in table_strategy(&["a", "b"]),
        right in table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let (rl, rr) = (RowTable::from_table(&left), RowTable::from_table(&right));

        let col_hash = join_glue(&left, &right, &glue);
        let row_hash = join_glue_rows(&rl, &rr, &glue);
        prop_assert_eq!(col_hash.sorted_rows(), row_hash.sorted_rows());
        prop_assert_eq!(col_hash.schema().names(), row_hash.schema().names());

        let col_sm = join_glue_sort_merge(&left, &right, &glue);
        let row_sm = join_glue_sort_merge_rows(&rl, &rr, &glue);
        prop_assert_eq!(col_sm.sorted_rows(), row_sm.sorted_rows());
    }

    /// The columnar outer join agrees with the row-oriented reference —
    /// including under null-heavy inputs where unmatched-row padding and
    /// glued-column fallback dominate the output.
    #[test]
    fn outer_join_matches_row_reference(
        left in nullish_table_strategy(&["a", "b"]),
        right in nullish_table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let (rl, rr) = (RowTable::from_table(&left), RowTable::from_table(&right));
        let col = outer_join_glue(&left, &right, &glue);
        let row = outer_join_glue_rows(&rl, &rr, &glue);
        prop_assert_eq!(col.sorted_rows(), row.sorted_rows());
    }

    /// Columnar project + dedup agree with the reference, including the
    /// zero-width projection (COUNT(*) preservation, collapse to one row).
    #[test]
    fn project_dedup_match_row_reference(
        t in nullish_table_strategy(&["a", "b", "c"]),
        mask in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let keep: Vec<usize> = (0..3).filter(|&c| mask[c]).collect();
        let rt = RowTable::from_table(&t);
        let mut cp = t.project(&keep);
        let mut rp = rt.project(&keep);
        prop_assert_eq!(cp.len(), rp.len());
        prop_assert_eq!(cp.sorted_rows(), rp.sorted_rows());
        cp.dedup();
        rp.dedup();
        prop_assert_eq!(cp.len(), rp.len());
        prop_assert_eq!(cp.sorted_rows(), rp.sorted_rows());
    }

    /// Self-join glue: joining a table with itself (the degenerate case
    /// where build and probe sides alias) agrees with the reference.
    #[test]
    fn self_join_matches_row_reference(
        t in table_strategy(&["a", "b"]),
        glue in glue_strategy(),
    ) {
        let rt = RowTable::from_table(&t);
        let col = join_glue(&t, &t, &glue);
        let row = join_glue_rows(&rt, &rt, &glue);
        prop_assert_eq!(col.sorted_rows(), row.sorted_rows());

        let col_outer = outer_join_glue(&t, &t, &glue);
        let row_outer = outer_join_glue_rows(&rt, &rt, &glue);
        prop_assert_eq!(col_outer.sorted_rows(), row_outer.sorted_rows());
    }

    /// The partitioned pair stage is byte-identical to the serial hash
    /// pair stage (not merely set-equal) on every input.
    #[test]
    fn partitioned_pairs_identical_to_hash(
        left in table_strategy(&["a", "b"]),
        right in table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let serial = join_glue_pairs(&left, &right, &glue);
        let part = join_glue_pairs_partitioned(&left, &right, &glue, &SerialRunner);
        prop_assert_eq!(serial, part);
    }

    /// The distinct-source fast path (support counted off the pair stream)
    /// equals the distinct count of the materialized, deduped join — the
    /// invariant that lets the miner prune candidates without materializing.
    #[test]
    fn pair_stream_support_equals_materialized_support(
        left in nullish_table_strategy(&["a", "b"]),
        right in nullish_table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let pairs = join_glue_pairs(&left, &right, &glue);
        let fast = distinct_left_values(&left, 0, &pairs);
        let mut full = join_glue(&left, &right, &glue);
        full.dedup();
        prop_assert_eq!(fast, full.distinct_values(0));
    }
}
