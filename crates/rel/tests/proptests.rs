//! Property-based tests for the relational engine.
//!
//! The central property is *differential*: the hash join must agree with
//! the nested-loop join on every input — the two are the paper's `PM` vs
//! `PM−join` realization computations, which must only differ in speed.

use proptest::prelude::*;
use wiclean_rel::{join_glue, join_glue_nested, join_glue_sort_merge, outer_join_glue, ColumnGlue, Schema, Table, Value};
use wiclean_types::EntityId;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (0u32..6).prop_map(|i| Some(EntityId::from_u32(i))),
        1 => Just(None),
    ]
}

fn table_strategy(cols: &'static [&'static str]) -> impl Strategy<Value = Table> {
    proptest::collection::vec(
        proptest::collection::vec(value_strategy(), cols.len()),
        0..12,
    )
    .prop_map(move |rows| Table::from_rows(Schema::new(cols.iter().copied()), rows))
}

/// Random glue spec over a 2-wide left and 2-wide right table.
fn glue_strategy() -> impl Strategy<Value = Vec<ColumnGlue>> {
    let col = 0usize..2;
    let one = prop_oneof![
        col.clone().prop_map(ColumnGlue::Glued),
        proptest::collection::vec(0usize..2, 0..3).prop_map(|d| ColumnGlue::New {
            name: "n0".into(),
            distinct_from: d,
        }),
    ];
    let two = prop_oneof![
        col.prop_map(ColumnGlue::Glued),
        proptest::collection::vec(0usize..2, 0..3).prop_map(|d| ColumnGlue::New {
            name: "n1".into(),
            distinct_from: d,
        }),
    ];
    (one, two).prop_map(|(a, b)| vec![a, b])
}

proptest! {
    /// Hash join ≡ nested loop join ≡ sort–merge join, on all inputs and
    /// glue specs.
    #[test]
    fn hash_equals_nested_equals_sort_merge(
        left in table_strategy(&["a", "b"]),
        right in table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let h = join_glue(&left, &right, &glue);
        let n = join_glue_nested(&left, &right, &glue);
        let m = join_glue_sort_merge(&left, &right, &glue);
        prop_assert_eq!(h.sorted_rows(), n.sorted_rows());
        prop_assert_eq!(h.sorted_rows(), m.sorted_rows());
    }

    /// The inner join is a sub-multiset of the outer join, and the outer
    /// join's extra rows all contain nulls.
    #[test]
    fn outer_extends_inner(
        left in table_strategy(&["a", "b"]),
        right in table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let inner = join_glue(&left, &right, &glue);
        let outer = outer_join_glue(&left, &right, &glue);
        prop_assert!(outer.len() >= inner.len());

        let inner_rows = inner.sorted_rows();
        let outer_rows = outer.sorted_rows();
        // Every inner row appears in the outer result.
        for r in &inner_rows {
            prop_assert!(outer_rows.contains(r));
        }
        // Outer-only rows are null-padded — provided the join actually has
        // columns to pad: unmatched left rows get nulls in New columns,
        // unmatched right rows get nulls in left columns not covered by a
        // glued right column. If no such column exists on either side,
        // unmatched rows can be null-free.
        let has_new = glue.iter().any(|g| matches!(g, ColumnGlue::New { .. }));
        let covered: std::collections::HashSet<usize> = glue
            .iter()
            .filter_map(|g| match g {
                ColumnGlue::Glued(i) => Some(*i),
                _ => None,
            })
            .collect();
        let left_fully_covered = covered.len() == left.width();
        if has_new && !left_fully_covered {
            let extra = outer.len() - inner.len();
            let nulls = outer.rows().filter(|r| r.iter().any(Option::is_none)).count();
            prop_assert!(nulls >= extra);
        }
    }

    /// Every left row is represented in the full outer join at least once.
    #[test]
    fn outer_covers_left(
        left in table_strategy(&["a", "b"]),
        right in table_strategy(&["x", "y"]),
        glue in glue_strategy(),
    ) {
        let outer = outer_join_glue(&left, &right, &glue);
        prop_assert!(outer.len() >= left.len());
    }

    /// Joining against an empty right yields: inner → empty, outer → left
    /// padded with nulls on the new columns.
    #[test]
    fn empty_right_identities(
        left in table_strategy(&["a", "b"]),
        glue in glue_strategy(),
    ) {
        let right = Table::new(Schema::new(["x", "y"]));
        prop_assert!(join_glue(&left, &right, &glue).is_empty());
        let outer = outer_join_glue(&left, &right, &glue);
        prop_assert_eq!(outer.len(), left.len());
    }

    /// Projection then dedup never grows a table.
    #[test]
    fn project_dedup_shrinks(t in table_strategy(&["a", "b"])) {
        let mut p = t.project(&[0]);
        p.dedup();
        prop_assert!(p.len() <= t.len());
        prop_assert_eq!(p.width(), 1);
    }

    /// distinct_count equals the length of a deduped non-null projection.
    #[test]
    fn distinct_count_consistent(t in table_strategy(&["a", "b"])) {
        let dc = t.distinct_count(0);
        let set = t.distinct_values(0);
        prop_assert_eq!(dc, set.len());
    }
}
