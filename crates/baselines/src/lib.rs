//! The paper's baseline algorithm variants (§6.1).
//!
//! WiClean's pattern miner (`PM`) carries two dedicated optimizations:
//! join-based realization queries and incremental graph construction. The
//! evaluation ablates them:
//!
//! | Variant | Realizations | Graph input |
//! |---|---|---|
//! | `PM` | hash joins | incremental |
//! | `PM−join` | main-memory nested loop | incremental |
//! | `PM−inc` | hash joins | fully materialized |
//! | `PM−inc,−join` | nested loop | fully materialized |
//!
//! `PM−inc,−join` is the paper's stand-in for conventional single-graph
//! mining ("direct comparison to leading graph mining baselines is not
//! possible due to their use of different frequency metric … we have thus
//! adapted the most relevant variant to our context").
//!
//! All four share the identical algorithm in `wiclean-core`; a variant is a
//! [`MinerConfig`] plus, for the `−inc` pair, an explicit up-front
//! materialization of the window's edits graph (the expensive step the
//! paper shows to be infeasible at scale — see
//! [`materialized_input_entities`]).

use wiclean_core::config::{ExpansionMode, JoinImpl, MinerConfig};
use wiclean_core::miner::{WindowMiner, WindowResult};
use wiclean_graph::neighborhood_closure;
use wiclean_revstore::RevisionStore;
use wiclean_types::{EntityId, TypeId, Universe, Window};

/// Which of the paper's four algorithm variants to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Full WiClean miner.
    Pm,
    /// Without the join-based realization queries.
    PmNoJoin,
    /// Without incremental graph construction.
    PmInc,
    /// Without either optimization (conventional graph mining).
    PmIncNoJoin,
}

impl Variant {
    /// All variants, in the paper's order.
    pub const ALL: [Variant; 4] = [
        Variant::Pm,
        Variant::PmNoJoin,
        Variant::PmInc,
        Variant::PmIncNoJoin,
    ];

    /// The paper's name for the variant.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Pm => "PM",
            Variant::PmNoJoin => "PM-join",
            Variant::PmInc => "PM-inc",
            Variant::PmIncNoJoin => "PM-inc,-join",
        }
    }

    /// Whether the variant needs the window graph materialized up front.
    pub fn needs_materialization(self) -> bool {
        matches!(self, Variant::PmInc | Variant::PmIncNoJoin)
    }

    /// The miner configuration implementing this variant on top of `base`.
    pub fn configure(self, mut base: MinerConfig) -> MinerConfig {
        base.join_impl = match self {
            Variant::Pm | Variant::PmInc => JoinImpl::Hash,
            Variant::PmNoJoin | Variant::PmIncNoJoin => JoinImpl::NestedLoop,
        };
        base.expansion = if self.needs_materialization() {
            ExpansionMode::Materialized
        } else {
            ExpansionMode::Incremental
        };
        base
    }
}

/// The entity set a `PM−inc` variant receives as its materialized graph:
/// the paper's construction — seeds plus the `hops`-reachable neighborhood
/// of entities edited within the window.
pub fn materialized_input_entities(
    store: &RevisionStore,
    universe: &Universe,
    seeds: &[EntityId],
    window: &Window,
    hops: usize,
) -> Vec<EntityId> {
    neighborhood_closure(store, universe, seeds, window, hops)
}

/// Runs one variant over a window and returns its result.
///
/// For the `−inc` variants the materialization cost (crawling and reducing
/// every closure entity's history) is incurred inside this call, exactly
/// as the paper charges it to those baselines.
pub fn run_variant(
    variant: Variant,
    store: &RevisionStore,
    universe: &Universe,
    base: MinerConfig,
    seed: TypeId,
    window: &Window,
    closure_hops: usize,
) -> WindowResult {
    let config = variant.configure(base);
    let miner = WindowMiner::new(store, universe, config);
    if variant.needs_materialization() {
        let seeds = universe.entities_of(seed);
        let entities = materialized_input_entities(store, universe, &seeds, window, closure_hops);
        miner.mine_window_materialized(seed, window, entities)
    } else {
        miner.mine_window(seed, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wiclean_core::pattern::Pattern;
    use wiclean_types::Window as W;
    use wiclean_wikitext::render::render_links;
    use wiclean_wikitext::PageLinks;

    /// A compact fixture equivalent to wiclean-core's test fixture: four
    /// complete player transfers, one partial.
    fn fixture() -> (Universe, RevisionStore, TypeId, W) {
        let mut u = Universe::new("Thing");
        let root = u.taxonomy().root();
        let person = u.taxonomy_mut().add("Person", root).unwrap();
        let player_ty = u.taxonomy_mut().add("SoccerPlayer", person).unwrap();
        let org = u.taxonomy_mut().add("Organisation", root).unwrap();
        let club_ty = u.taxonomy_mut().add("SoccerClub", org).unwrap();
        u.relation("current_club");
        u.relation("squad");

        let players: Vec<EntityId> = (0..5)
            .map(|i| u.add_entity(&format!("P{i}"), player_ty).unwrap())
            .collect();
        let clubs: Vec<EntityId> = (0..4)
            .map(|i| u.add_entity(&format!("C{i}"), club_ty).unwrap())
            .collect();

        let mut store = RevisionStore::new();
        let mut pstate: Vec<PageLinks> = (0..5).map(|_| PageLinks::new()).collect();
        let mut cstate: Vec<PageLinks> = (0..4).map(|_| PageLinks::new()).collect();
        for (i, &p) in players.iter().enumerate() {
            store.record(p, 1, render_links(u.entity_name(p), "bio", &pstate[i]));
        }
        for (i, &c) in clubs.iter().enumerate() {
            store.record(c, 1, render_links(u.entity_name(c), "club", &cstate[i]));
        }
        let mut t = 20;
        for i in 0..4 {
            let ci = i % 4;
            let cname = u.entity_name(clubs[ci]).to_owned();
            let pname = u.entity_name(players[i]).to_owned();
            pstate[i].insert("current_club", &cname);
            store.record(
                players[i],
                t,
                render_links(u.entity_name(players[i]), "bio", &pstate[i]),
            );
            cstate[ci].insert("squad", &pname);
            store.record(
                clubs[ci],
                t + 3,
                render_links(u.entity_name(clubs[ci]), "club", &cstate[ci]),
            );
            t += 10;
        }
        (u, store, player_ty, W::new(10, 1000))
    }

    fn base_config() -> MinerConfig {
        MinerConfig {
            tau: 0.8,
            max_abstraction_height: 1,
            ..MinerConfig::default()
        }
    }

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(Variant::Pm.name(), "PM");
        assert_eq!(Variant::PmNoJoin.name(), "PM-join");
        assert_eq!(Variant::PmInc.name(), "PM-inc");
        assert_eq!(Variant::PmIncNoJoin.name(), "PM-inc,-join");
    }

    #[test]
    fn configuration_axes() {
        let base = base_config();
        assert_eq!(Variant::Pm.configure(base).join_impl, JoinImpl::Hash);
        assert_eq!(
            Variant::PmNoJoin.configure(base).join_impl,
            JoinImpl::NestedLoop
        );
        assert_eq!(
            Variant::PmInc.configure(base).expansion,
            ExpansionMode::Materialized
        );
        assert!(!Variant::Pm.needs_materialization());
        assert!(Variant::PmIncNoJoin.needs_materialization());
    }

    #[test]
    fn all_variants_find_the_same_most_specific_patterns() {
        let (u, store, seed, window) = fixture();
        let mut sets = Vec::new();
        for v in Variant::ALL {
            let r = run_variant(v, &store, &u, base_config(), seed, &window, 2);
            let set: BTreeSet<Pattern> = r.most_specific().map(|p| p.pattern.clone()).collect();
            sets.push((v, set));
        }
        for pair in sets.windows(2) {
            assert_eq!(
                pair[0].1,
                pair[1].1,
                "{} and {} disagree",
                pair[0].0.name(),
                pair[1].0.name()
            );
        }
        assert!(!sets[0].1.is_empty(), "fixture patterns discovered");
    }

    #[test]
    fn materialized_variants_consider_more_candidates() {
        let (u, store, seed, window) = fixture();
        let pm = run_variant(Variant::Pm, &store, &u, base_config(), seed, &window, 2);
        let pminc = run_variant(Variant::PmInc, &store, &u, base_config(), seed, &window, 2);
        assert!(
            pminc.stats.candidates_considered >= pm.stats.candidates_considered,
            "PM-inc considered {} < PM {}",
            pminc.stats.candidates_considered,
            pm.stats.candidates_considered
        );
    }

    #[test]
    fn closure_feeds_materialization() {
        let (u, store, seed, window) = fixture();
        let seeds = u.entities_of(seed);
        let ents = materialized_input_entities(&store, &u, &seeds, &window, 2);
        // All players plus the four clubs they link to.
        assert!(ents.len() >= 8, "closure too small: {}", ents.len());
    }
}
