//! Figure 4(c): mining time vs. window size (2/4/8 weeks), PM vs PM−join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wiclean_baselines::{run_variant, Variant};
use wiclean_bench::{bench_miner_config, soccer_world};
use wiclean_types::{Window, DAY, WEEK};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4c_window_sizes");
    group.sample_size(10);
    let world = soccer_world(150, 0x41C);
    for &weeks in &[2u64, 4, 8] {
        let end = 224 * DAY;
        let window = Window::new(end - weeks * WEEK, end);
        for variant in [Variant::Pm, Variant::PmNoJoin] {
            group.bench_with_input(
                BenchmarkId::new(variant.name(), format!("{weeks}w")),
                &window,
                |b, window| {
                    b.iter(|| {
                        run_variant(
                            variant,
                            &world.store,
                            &world.universe,
                            bench_miner_config(0.4),
                            world.seed_type,
                            window,
                            2,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
