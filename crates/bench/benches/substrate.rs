//! Substrate micro-benchmarks: the building blocks whose costs compose the
//! paper's preprocessing bars — wikitext parsing, revision diffing, action
//! extraction and reduction, and the two join implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use wiclean_bench::{soccer_world, transfer_window};
use wiclean_rel::{
    join_glue, join_glue_nested, join_glue_sort_merge, outer_join_glue, ColumnGlue, Schema, Table,
};
use wiclean_revstore::{extract_actions_for, reduce_actions};
use wiclean_types::EntityId;
use wiclean_wikitext::render::render_links;
use wiclean_wikitext::{diff_revisions, parse_page, PageLinks};

fn page_fixture(links: usize) -> String {
    let mut p = PageLinks::new();
    p.insert("current_club", "Some Club");
    for i in 0..links {
        p.insert("squad", &format!("Player Number {i:04}"));
    }
    render_links("Big Club", "football club", &p)
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("wikitext_parse");
    for &links in &[10usize, 100, 1000] {
        let text = page_fixture(links);
        group.bench_with_input(BenchmarkId::new("parse_page", links), &text, |b, text| {
            b.iter(|| parse_page(text))
        });
    }
    group.finish();
}

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("revision_diff");
    let old = page_fixture(200);
    let new = {
        let mut p = parse_page(&old);
        p.links
            .remove(&("squad".into(), "Player Number 0000".into()));
        p.insert("squad", "A Fresh Signing");
        render_links("Big Club", "football club", &p)
    };
    group.bench_function("diff_revisions_200_links", |b| {
        b.iter(|| diff_revisions(&old, &new))
    });
    group.finish();
}

fn bench_extract_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract_reduce");
    group.sample_size(20);
    let world = soccer_world(100, 0xE57);
    let players = world.universe.entities_of(world.seed_type);
    let window = transfer_window();
    group.bench_function("extract_actions_100_players", |b| {
        b.iter(|| extract_actions_for(&world.store, &world.universe, &players, &window))
    });
    let actions = extract_actions_for(&world.store, &world.universe, &players, &window).actions;
    group.bench_function("reduce_actions", |b| b.iter(|| reduce_actions(&actions)));
    group.finish();
}

fn random_table(rows: usize, key_space: u32, rng: &mut StdRng) -> Table {
    let mut t = Table::new(Schema::new(["k", "v"]));
    for _ in 0..rows {
        t.push_row(&[
            Some(EntityId::from_u32(rng.gen_range(0..key_space))),
            Some(EntityId::from_u32(rng.gen_range(0..key_space))),
        ]);
    }
    t
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0x301);
    for &rows in &[100usize, 1000] {
        let left = random_table(rows, rows as u32, &mut rng);
        let right = random_table(rows, rows as u32, &mut rng);
        let glue = vec![
            ColumnGlue::Glued(0),
            ColumnGlue::New {
                name: "w".into(),
                distinct_from: vec![1],
            },
        ];
        group.bench_with_input(BenchmarkId::new("hash", rows), &rows, |b, _| {
            b.iter(|| join_glue(&left, &right, &glue))
        });
        group.bench_with_input(BenchmarkId::new("nested_loop", rows), &rows, |b, _| {
            b.iter(|| join_glue_nested(&left, &right, &glue))
        });
        group.bench_with_input(BenchmarkId::new("sort_merge", rows), &rows, |b, _| {
            b.iter(|| join_glue_sort_merge(&left, &right, &glue))
        });
        group.bench_with_input(BenchmarkId::new("full_outer", rows), &rows, |b, _| {
            b.iter(|| outer_join_glue(&left, &right, &glue))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_diff,
    bench_extract_reduce,
    bench_joins
);
criterion_main!(benches);
