//! Ablation: the paper's realization-table caching optimization ("cashing
//! of the computed frequencies/realization tables, to be reused if the
//! same patterns are later re-examined with different thresholds") and the
//! preprocessing (action-extraction) cache layered underneath it.
//! Benchmarks the full Algorithm 2 search over the 2×2 cache grid.

use criterion::{criterion_group, criterion_main, Criterion};
use wiclean_bench::soccer_world;
use wiclean_core::windows::find_windows_and_patterns;
use wiclean_eval::quality::default_wc_config;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_ablation");
    group.sample_size(10);
    let world = soccer_world(150, 0xCACE);
    for &use_cache in &[true, false] {
        for &use_action_cache in &[true, false] {
            let mut wc = default_wc_config(1);
            wc.use_cache = use_cache;
            wc.use_action_cache = use_action_cache;
            let label = format!(
                "realizations-{}/preprocess-{}",
                if use_cache { "cached" } else { "uncached" },
                if use_action_cache {
                    "cached"
                } else {
                    "uncached"
                },
            );
            group.bench_function(&label, |b| {
                b.iter(|| {
                    find_windows_and_patterns(&world.store, &world.universe, world.seed_type, &wc)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
