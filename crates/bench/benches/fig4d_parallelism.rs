//! Figure 4(d): multi-window mining, one worker vs. many.
//!
//! On a multi-core host the N-thread configuration approaches the paper's
//! ≈4× speedup; on a single-core host (like some CI containers) both
//! configurations measure alike — the bench still validates that the
//! parallel path carries no significant overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wiclean_bench::{bench_miner_config, soccer_world};
use wiclean_core::parallel::mine_windows_parallel;
use wiclean_types::{Window, WEEK, YEAR};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4d_parallelism");
    group.sample_size(10);
    let world = soccer_world(150, 0x41D);
    let windows = Window::split_span(2 * WEEK, YEAR, 2 * WEEK);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);
    for &threads in &[1usize, max_threads] {
        group.bench_with_input(
            BenchmarkId::new("all_windows", format!("{threads}threads")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    mine_windows_parallel(
                        &world.store,
                        &world.universe,
                        world.seed_type,
                        &windows,
                        bench_miner_config(0.41),
                        threads,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
