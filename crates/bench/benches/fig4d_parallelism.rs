//! Figure 4(d) extended: the two-level mining parallelism.
//!
//! Three axes, each timed against its own one-thread baseline:
//!
//! * **single-window / crawl-latency** — the headline axis. One window,
//!   candidate evaluation and entity preprocessing fanned out over the
//!   intra-window pool, against a store that injects a fixed per-fetch
//!   latency (the paper's setting: revision logs come from a network
//!   crawl, so fetches are latency-bound). Overlapping fetches yields
//!   real wall-clock speedup even on a single-core host.
//! * **single-window / compute-only** — the same mining run on the clean
//!   in-memory store. Scales with physical cores; on a one-core host both
//!   configurations measure alike and the axis documents that the pool
//!   carries no significant overhead.
//! * **multi-window** — the embarrassingly parallel all-windows run of the
//!   original Figure 4(d), over the same latency-injecting store, with the
//!   window-level pool shared by the intra-window tasks (auto mode).
//!
//! Every configuration's pattern output is asserted byte-identical to the
//! sequential run — the determinism contract of the generation-based
//! miner. Results land in `BENCH_parallelism.json` at the repo root.

use serde::Serialize;
use std::time::Instant;
use wiclean_bench::{bench_miner_config, soccer_world, transfer_window};
use wiclean_core::parallel::mine_windows_parallel;
use wiclean_core::WindowMiner;
use wiclean_revstore::{FaultPlan, FaultyStore};
use wiclean_synth::SynthWorld;
use wiclean_types::{Window, WEEK, YEAR};

/// Seed-entity count of the benchmark world.
const SEEDS: usize = 150;
/// Injected per-fetch latency (µs) for the crawl-bound axes. Deliberately
/// conservative: a real MediaWiki API round-trip is tens of milliseconds.
const CRAWL_LATENCY_US: u64 = 1500;
/// Timed repetitions per configuration (median is reported).
const REPS: usize = 3;

#[derive(Serialize)]
struct Point {
    threads: usize,
    wall_ms: f64,
    /// Wall-clock of the one-thread run divided by this run's.
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    /// Cores visible to this process — interpret `compute_only` with it.
    host_cores: usize,
    seeds: usize,
    crawl_latency_us: u64,
    /// One window, intra-window pool of `threads`, latency-injecting store.
    single_window_crawl: Vec<Point>,
    /// One window, intra-window pool of `threads`, clean in-memory store.
    single_window_compute_only: Vec<Point>,
    /// All windows of the year on a shared two-level pool of `threads`.
    multi_window_crawl: Vec<Point>,
    /// Whether every configuration produced byte-identical patterns.
    outputs_identical: bool,
}

fn median_ms(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Times `run` `REPS` times; returns (median ms, output digest).
fn timed(run: &mut dyn FnMut() -> String) -> (f64, String) {
    let mut times = Vec::with_capacity(REPS);
    let mut digest = String::new();
    for _ in 0..REPS {
        let t0 = Instant::now();
        digest = run();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    (median_ms(times), digest)
}

/// Mines the transfer window once with an intra-window pool of `threads`
/// (1 = sequential); returns the pattern digest.
fn mine_single(world: &SynthWorld, latency_us: u64, threads: usize) -> String {
    let faulty = FaultyStore::new(
        &world.store,
        FaultPlan {
            latency_us,
            ..FaultPlan::default()
        },
    );
    let mut config = bench_miner_config(0.41);
    config.intra_window_threads = threads;
    let miner = WindowMiner::new(&faulty, &world.universe, config);
    let result = miner.mine_window(world.seed_type, &transfer_window());
    format!("{:?}", result.patterns)
}

/// Mines every window of the year on a shared two-level pool of `threads`;
/// returns the all-windows pattern digest.
fn mine_multi(world: &SynthWorld, windows: &[Window], latency_us: u64, threads: usize) -> String {
    let faulty = FaultyStore::new(
        &world.store,
        FaultPlan {
            latency_us,
            ..FaultPlan::default()
        },
    );
    let results = mine_windows_parallel(
        &faulty,
        &world.universe,
        world.seed_type,
        windows,
        bench_miner_config(0.41),
        threads,
    );
    let patterns: Vec<_> = results.iter().map(|r| &r.patterns).collect();
    format!("{patterns:?}")
}

/// Sweeps `threads` over one axis, checking digests against the sequential
/// baseline.
fn sweep(
    name: &str,
    thread_counts: &[usize],
    identical: &mut bool,
    mut run: impl FnMut(usize) -> String,
) -> Vec<Point> {
    let mut points = Vec::new();
    let mut baseline_ms = 0.0;
    let mut baseline_digest = String::new();
    for &threads in thread_counts {
        let (wall_ms, digest) = timed(&mut || run(threads));
        if threads == thread_counts[0] {
            baseline_ms = wall_ms;
            baseline_digest = digest.clone();
        } else if digest != baseline_digest {
            eprintln!("{name}: output at {threads} threads diverges from sequential!");
            *identical = false;
        }
        let speedup = baseline_ms / wall_ms;
        println!("{name:>28} {threads:>2} threads  {wall_ms:>9.1} ms  {speedup:>5.2}x");
        points.push(Point {
            threads,
            wall_ms,
            speedup,
        });
    }
    points
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let world = soccer_world(SEEDS, 0x41D);
    let windows = Window::split_span(2 * WEEK, YEAR, 2 * WEEK);
    let mut identical = true;

    let single_window_crawl = sweep("single-window crawl", &[1, 2, 4, 8], &mut identical, |t| {
        mine_single(&world, CRAWL_LATENCY_US, t)
    });
    let single_window_compute_only = sweep(
        "single-window compute-only",
        &[1, 2, 4, 8],
        &mut identical,
        |t| mine_single(&world, 0, t),
    );
    let multi_window_crawl = sweep("multi-window crawl", &[1, 4], &mut identical, |t| {
        mine_multi(&world, &windows, CRAWL_LATENCY_US, t)
    });

    assert!(identical, "parallel output must match sequential");
    let four = single_window_crawl
        .iter()
        .find(|p| p.threads == 4)
        .expect("4-thread point");
    println!(
        "single-window crawl speedup at 4 threads: {:.2}x",
        four.speedup
    );

    let report = Report {
        host_cores,
        seeds: SEEDS,
        crawl_latency_us: CRAWL_LATENCY_US,
        single_window_crawl,
        single_window_compute_only,
        multi_window_crawl,
        outputs_identical: identical,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallelism.json");
    std::fs::write(path, json + "\n").expect("write BENCH_parallelism.json");
    println!("wrote {path}");
}
