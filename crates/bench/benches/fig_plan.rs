//! fig_plan (repo extension) — the adaptive cost-based join planner.
//!
//! Sweeps a grid of join shapes — uniform/skewed key distributions ×
//! left:right size ratios × glue arity — and times the pair stage with the
//! planner on ([`Planner::pair_join`]: sampled statistics, cost model,
//! per-shape plan cache) against the planner off (the fixed
//! [`join_glue_pairs`] dispatch the miner used before). Every cell asserts
//! the two pair streams byte-identical; the planner's wins come from
//! picking the cheaper build side and strategy where the fixed dispatch
//! cannot (e.g. a small probe side against a large build side).
//!
//! Results land in `BENCH_plan.json` at the repo root. Set
//! `WICLEAN_BENCH_FAST=1` for a CI-sized smoke run (no file written, no
//! perf gates — equivalence is still asserted per cell).

use serde::Serialize;
use std::time::Instant;
use wiclean_rel::{
    join_glue_pairs, ColumnGlue, Pair, Planner, PlannerSettings, Schema, SerialRunner, Table,
};
use wiclean_types::EntityId;

/// One cell of the shape grid: a (distribution, ratio, arity) workload
/// timed planner-off and planner-on.
#[derive(Serialize)]
struct Cell {
    dist: &'static str,
    ratio: &'static str,
    arity: usize,
    left_rows: usize,
    right_rows: usize,
    pairs: usize,
    baseline_ms: f64,
    planner_ms: f64,
    /// baseline wall-clock over planner wall-clock.
    speedup: f64,
    /// Planner pair stream byte-identical to the fixed dispatch's.
    identical: bool,
}

#[derive(Serialize)]
struct Report {
    host_cores: usize,
    fast_mode: bool,
    cells: Vec<Cell>,
    /// Best planner speedup over any skewed cell (acceptance: ≥ 1.3).
    max_skewed_speedup: f64,
    /// Worst planner speedup over any cell (acceptance: ≥ 0.95).
    min_speedup: f64,
    all_identical: bool,
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Draws a join key: uniform over `keys`, or skewed so half the rows land
/// in an eighth of the key space (long build chains on the hot keys).
fn draw_key(r: u64, keys: u32, skewed: bool) -> EntityId {
    let k = if skewed && r.is_multiple_of(2) {
        (r >> 8) as u32 % (keys / 8 + 1)
    } else {
        (r >> 8) as u32 % keys
    };
    EntityId::from_u32(k)
}

/// A realization-shaped left table: seed column, two join-key columns
/// (`k1` wide, `k2` narrow), and two more bound variables. Null-free,
/// like every inner-join realization table.
fn left_table(rows: usize, keys: u32, skewed: bool, rng: &mut u64) -> Table {
    let mut t = Table::new(Schema::new(["seed", "k1", "k2", "v3", "v4"]));
    for i in 0..rows {
        let seed = EntityId::from_u32(10_000 + (i as u32 % (rows as u32 / 2 + 1)));
        let r = xorshift(rng);
        let k1 = draw_key(r, keys, skewed);
        let k2 = EntityId::from_u32(1_000 + (r >> 40) as u32 % 32);
        t.push_row(&[
            Some(seed),
            Some(k1),
            Some(k2),
            Some(EntityId::from_u32(50_000 + (r >> 24) as u32 % 1000)),
            Some(EntityId::from_u32(60_000 + (r >> 48) as u32 % 1000)),
        ]);
    }
    t
}

/// The action relation being glued on. Arity 1: `(k1, fresh-entity)`;
/// arity 2: `(k1, k2)` — both columns equi-glued.
fn right_table(rows: usize, keys: u32, skewed: bool, arity: usize, rng: &mut u64) -> Table {
    let mut t = Table::new(Schema::new(if arity == 1 {
        ["k1r", "fresh"]
    } else {
        ["k1r", "k2r"]
    }));
    for _ in 0..rows {
        let r = xorshift(rng);
        let k1 = draw_key(r, keys, skewed);
        let second = if arity == 1 {
            EntityId::from_u32(10_000 + (r >> 32) as u32 % 8000)
        } else {
            EntityId::from_u32(1_000 + (r >> 44) as u32 % 32)
        };
        t.push_row(&[Some(k1), Some(second)]);
    }
    t
}

fn glue(arity: usize) -> Vec<ColumnGlue> {
    if arity == 1 {
        vec![
            ColumnGlue::Glued(1),
            ColumnGlue::New {
                name: "fresh".into(),
                distinct_from: vec![0],
            },
        ]
    } else {
        vec![ColumnGlue::Glued(1), ColumnGlue::Glued(2)]
    }
}

/// Times two runs interleaved (A, B, A, B, …) and reports each one's
/// fastest repetition. Interleaving decorrelates slow drift on a shared
/// host, and the minimum is the robust statistic for identical
/// CPU-bound work — medians of back-to-back batches showed ±15% jitter
/// on equal code paths.
fn timed_pair(
    reps: usize,
    a: &mut dyn FnMut() -> Vec<Pair>,
    b: &mut dyn FnMut() -> Vec<Pair>,
) -> (f64, f64, Vec<Pair>, Vec<Pair>) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let t0 = Instant::now();
        out_a = a();
        best_a = best_a.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        out_b = b();
        best_b = best_b.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best_a, best_b, out_a, out_b)
}

fn main() {
    let fast_mode = std::env::var_os("WICLEAN_BENCH_FAST").is_some();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (base, keys, reps) = if fast_mode {
        (2_000usize, 200u32, 3usize)
    } else {
        (8_000, 600, 15)
    };
    // left:right row ratios. The fixed dispatch always hash-builds the
    // right side, so "1:16" (small probe, large build) is where the
    // planner's build-side choice pays.
    let ratios: [(&str, usize, usize); 3] = [
        ("1:16", base / 4, base * 4),
        ("1:1", base + base / 2, base + base / 2),
        ("16:1", base * 4, base / 4),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    let mut all_identical = true;
    for (dist, skewed) in [("uniform", false), ("skewed", true)] {
        for (ratio, l_rows, r_rows) in ratios {
            for arity in [1usize, 2] {
                let mut rng =
                    0xF1C5_0000_u64 | (skewed as u64) << 16 | (l_rows as u64) << 20 | arity as u64;
                let left = left_table(l_rows, keys, skewed, &mut rng);
                let right = right_table(r_rows, keys, skewed, arity, &mut rng);
                let g = glue(arity);

                // Fresh planner per cell: the first repetition pays the
                // sampling + cost-model miss, the rest ride the shape
                // cache — the same amortization mining sees.
                let planner = Planner::new();
                let settings = PlannerSettings::default();
                let (baseline_ms, planner_ms, expected, planned) = timed_pair(
                    reps,
                    &mut || join_glue_pairs(&left, &right, &g),
                    &mut || {
                        planner
                            .pair_join(&settings, 1, &left, &right, &g, &SerialRunner)
                            .0
                    },
                );
                let identical = planned == expected;
                if !identical {
                    eprintln!("{dist}/{ratio}/arity{arity}: planner pair stream diverged");
                    all_identical = false;
                }

                let speedup = baseline_ms / planner_ms;
                println!(
                    "{dist:>8} {ratio:>5} arity={arity}  {l_rows:>6} x {r_rows:>6} rows -> \
                     {:>8} pairs  off {baseline_ms:>8.2} ms  on {planner_ms:>8.2} ms  \
                     {speedup:>5.2}x  identical={identical}",
                    expected.len()
                );
                cells.push(Cell {
                    dist,
                    ratio,
                    arity,
                    left_rows: l_rows,
                    right_rows: r_rows,
                    pairs: expected.len(),
                    baseline_ms,
                    planner_ms,
                    speedup,
                    identical,
                });
            }
        }
    }
    assert!(all_identical, "every cell must be byte-identical");

    let max_skewed_speedup = cells
        .iter()
        .filter(|c| c.dist == "skewed")
        .map(|c| c.speedup)
        .fold(0.0, f64::max);
    let min_speedup = cells
        .iter()
        .map(|c| c.speedup)
        .fold(f64::INFINITY, f64::min);
    println!("best skewed-cell speedup {max_skewed_speedup:.2}x, worst cell {min_speedup:.2}x");
    if !fast_mode {
        assert!(
            max_skewed_speedup >= 1.3,
            "planner must win >= 1.3x on some skewed cell (got {max_skewed_speedup:.2}x)"
        );
        assert!(
            min_speedup >= 0.95,
            "planner must never lose > 5% on any cell (got {min_speedup:.2}x)"
        );
    }

    let report = Report {
        host_cores,
        fast_mode,
        cells,
        max_skewed_speedup,
        min_speedup,
        all_identical,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    if fast_mode {
        println!("fast mode: skipping write of {path}");
    } else {
        std::fs::write(path, json + "\n").expect("write BENCH_plan.json");
        println!("wrote {path}");
    }
}
