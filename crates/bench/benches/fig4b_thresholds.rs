//! Figure 4(b): mining time vs. frequency threshold, PM vs PM−join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wiclean_baselines::{run_variant, Variant};
use wiclean_bench::{bench_miner_config, soccer_world, transfer_window};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_thresholds");
    group.sample_size(10);
    let world = soccer_world(150, 0x41B);
    for &tau in &[0.7f64, 0.4, 0.2] {
        for variant in [Variant::Pm, Variant::PmNoJoin] {
            group.bench_with_input(
                BenchmarkId::new(variant.name(), format!("tau{tau}")),
                &tau,
                |b, &tau| {
                    b.iter(|| {
                        run_variant(
                            variant,
                            &world.store,
                            &world.universe,
                            bench_miner_config(tau),
                            world.seed_type,
                            &transfer_window(),
                            2,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
