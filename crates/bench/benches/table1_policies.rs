//! Table 1: running time of the refinement policies (§6.4).
//!
//! Criterion times the full Algorithm 2 search under each sampled
//! (window-multiplier, threshold-reduction) policy; the quality columns of
//! Table 1 come from the `table1` binary in `wiclean-eval`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wiclean_bench::soccer_world;
use wiclean_core::config::RefinePolicy;
use wiclean_core::windows::find_windows_and_patterns;
use wiclean_eval::quality::default_wc_config;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_policies");
    group.sample_size(10);
    let world = soccer_world(100, 0x7AB1);
    for &(wf, tr) in &wiclean_eval::grid::PAPER_COMBOS {
        let mut wc = default_wc_config(1);
        wc.policy = RefinePolicy {
            window_factor: wf,
            tau_reduction: tr,
        };
        group.bench_with_input(
            BenchmarkId::new("policy", format!("{wf}x_{}pct", (tr * 100.0) as u32)),
            &wc,
            |b, wc| {
                b.iter(|| {
                    find_windows_and_patterns(&world.store, &world.universe, world.seed_type, wc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
