//! Serving figure (repo extension) — suggestion-server load generator.
//!
//! Starts a real `wiclean-serve` server over a scripted world and fires
//! suggest requests at it from concurrent TCP clients, sweeping the
//! pattern-set size. Two latency series per cell:
//!
//! * **server-side** — the suggestion path proper (index pin + lookup +
//!   rank), from the server's log2 histogram. This is the sub-ms figure
//!   the serving design targets: it excludes loopback and JSON framing.
//! * **client round-trip** — connect-to-answer as an editor plug-in would
//!   see it, measured exactly from per-request samples.
//!
//! Midway through each cell's load the index is hot-swapped (same pattern
//! set, rebuilt), so every cell also demonstrates swap-under-load: zero
//! errors, epoch strictly advances. Results land in `BENCH_serve.json` at
//! the repo root. Set `WICLEAN_BENCH_FAST=1` for a CI-sized smoke run.
//!
//! The world: `R` relation pairs (`move_r` on the player page, `take_r`
//! reciprocated on the club page). For each relation, four players
//! complete the coordinated edit and a fifth leaves it dangling — one
//! servable suggestion per pattern. Pattern count thus equals `R` while
//! realization joins stay small, which keeps the *build* cost visible in
//! the report without drowning the run.

use serde::Serialize;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use wiclean_core::abstract_action::AbstractAction;
use wiclean_core::config::MinerConfig;
use wiclean_core::pattern::WorkingPattern;
use wiclean_core::var::Var;
use wiclean_revstore::RevisionStore;
use wiclean_serve::{serve, IndexLimits, PatternIndex, PatternSet, ServeConfig, SuggestClient};
use wiclean_types::{TypeId, Universe, Window};
use wiclean_wikitext::render::render_links;
use wiclean_wikitext::{EditOp, PageLinks};

struct World {
    universe: Universe,
    store: RevisionStore,
    window: Window,
    player_ty: TypeId,
    patterns: Vec<(WorkingPattern, f64)>,
    /// Names to query: one partial player (has a suggestion) and one
    /// complete player (empty answer) per relation.
    query_names: Vec<String>,
}

/// Builds the `R`-relation world described in the module docs.
fn build_world(relations: usize) -> World {
    let mut u = Universe::new("Thing");
    let root = u.taxonomy().root();
    let player_ty = u.taxonomy_mut().add("Player", root).unwrap();
    let club_ty = u.taxonomy_mut().add("Club", root).unwrap();
    let mut store = RevisionStore::new();
    let window = Window::new(10, 1_000_000);
    let mut patterns = Vec::with_capacity(relations);
    let mut query_names = Vec::new();

    for r in 0..relations {
        let fwd = u.relation(&format!("move_{r}"));
        let back = u.relation(&format!("take_{r}"));
        let players: Vec<_> = (0..5)
            .map(|i| u.add_entity(&format!("Player {r}_{i}"), player_ty).unwrap())
            .collect();
        let clubs: Vec<_> = (0..4)
            .map(|i| u.add_entity(&format!("Club {r}_{i}"), club_ty).unwrap())
            .collect();

        let mut player_state: Vec<PageLinks> = (0..5).map(|_| PageLinks::new()).collect();
        let mut club_state: Vec<PageLinks> = (0..4).map(|_| PageLinks::new()).collect();
        for (i, &p) in players.iter().enumerate() {
            store.record(
                p,
                1,
                render_links(u.entity_name(p), "player", &player_state[i]),
            );
        }
        for (i, &c) in clubs.iter().enumerate() {
            store.record(c, 1, render_links(u.entity_name(c), "club", &club_state[i]));
        }
        // Four coordinated transfers…
        let mut t = 20 + (r as u64) * 200;
        for i in 0..4 {
            let club_name = u.entity_name(clubs[i]).to_owned();
            let player_name = u.entity_name(players[i]).to_owned();
            player_state[i].insert(&format!("move_{r}"), &club_name);
            store.record(
                players[i],
                t,
                render_links(u.entity_name(players[i]), "player", &player_state[i]),
            );
            club_state[i].insert(&format!("take_{r}"), &player_name);
            store.record(
                clubs[i],
                t + 3,
                render_links(u.entity_name(clubs[i]), "club", &club_state[i]),
            );
            t += 10;
        }
        // …and one dangling half-edit: the served suggestion.
        let club_name = u.entity_name(clubs[3]).to_owned();
        player_state[4].insert(&format!("move_{r}"), &club_name);
        store.record(
            players[4],
            t,
            render_links(u.entity_name(players[4]), "player", &player_state[4]),
        );

        let p = Var::new(player_ty, 0);
        let c = Var::new(club_ty, 0);
        patterns.push((
            WorkingPattern::from_actions(vec![
                AbstractAction::new(EditOp::Add, p, fwd, c),
                AbstractAction::new(EditOp::Add, c, back, p),
            ]),
            0.50 + (r % 50) as f64 / 100.0,
        ));
        query_names.push(u.entity_name(players[4]).to_string());
        query_names.push(u.entity_name(players[0]).to_string());
    }

    World {
        universe: u,
        store,
        window,
        player_ty,
        patterns,
        query_names,
    }
}

fn miner_config() -> MinerConfig {
    MinerConfig {
        tau: 0.8,
        tau_rel: 0.5,
        max_pattern_actions: 4,
        max_abstraction_height: 1,
        max_vars_per_type: 2,
        ..MinerConfig::default()
    }
}

fn build_index(world: &World) -> PatternIndex {
    let set = PatternSet::single_window(world.player_ty, world.window, &world.patterns);
    PatternIndex::build(
        &world.store,
        &world.universe,
        &miner_config(),
        &set,
        IndexLimits::default(),
    )
    .expect("bench set fits default limits")
}

/// Exact quantile (µs) over raw round-trip samples (ns).
fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    let ix = (((sorted_ns.len() as f64) * q).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[ix] as f64 / 1e3
}

#[derive(Serialize)]
struct Cell {
    patterns: usize,
    suggestions: usize,
    entities: usize,
    index_build_ms: f64,
    requests: u64,
    errors: u64,
    qps: f64,
    client_p50_us: f64,
    client_p90_us: f64,
    client_p99_us: f64,
    server_p50_us: f64,
    server_p90_us: f64,
    server_p99_us: f64,
    /// The mid-load hot swap: epoch observed before and after.
    swap_epoch_before: u64,
    swap_epoch_after: u64,
}

#[derive(Serialize)]
struct Report {
    host_cores: usize,
    fast_mode: bool,
    max_connections: usize,
    clients: usize,
    requests_per_client: usize,
    cells: Vec<Cell>,
    /// Headline: worst server-side suggest p99 across cells, µs.
    server_p99_us_max: f64,
    /// Headline: worst sustained throughput across cells.
    qps_min: f64,
}

fn main() {
    let fast_mode = std::env::var_os("WICLEAN_BENCH_FAST").is_some();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (sizes, requests_per_client): (Vec<usize>, usize) = if fast_mode {
        (vec![4], 500)
    } else {
        (vec![4, 16, 64], 20_000)
    };
    let max_connections = 64usize;
    let clients = 2usize;

    let mut cells = Vec::new();
    for &relations in &sizes {
        let world = build_world(relations);
        let index = build_index(&world);
        let stats = index.stats().clone();
        let universe = Arc::new(world.universe.clone());
        let mut handle = serve(
            ServeConfig {
                max_connections,
                ..ServeConfig::default()
            },
            universe,
            index,
            None,
        )
        .expect("server starts");
        let addr = handle.addr();
        let epoch_before = handle.epoch();

        let t0 = Instant::now();
        let latencies: Vec<Vec<u64>> = std::thread::scope(|s| {
            let threads: Vec<_> = (0..clients)
                .map(|cix| {
                    let names = world.query_names.clone();
                    s.spawn(move || {
                        let mut client = SuggestClient::connect(addr).expect("connect");
                        let mut samples = Vec::with_capacity(requests_per_client);
                        for i in 0..requests_per_client {
                            let name = &names[(cix + i * 7) % names.len()];
                            let t = Instant::now();
                            let v = client.suggest(name, None).expect("response");
                            samples.push(t.elapsed().as_nanos() as u64);
                            assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{v:?}");
                        }
                        samples
                    })
                })
                .collect();
            // Hot swap in the thick of the load.
            std::thread::sleep(std::time::Duration::from_millis(20));
            handle.swap_index(build_index(&world));
            threads
                .into_iter()
                .map(|t| t.join().expect("client"))
                .collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        let epoch_after = handle.epoch();

        let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
        all.sort_unstable();
        let requests = all.len() as u64;
        let qps = requests as f64 / wall;
        let errors = handle.stats().errors.load(Ordering::Relaxed);
        let server_q = |q| {
            handle
                .stats()
                .latency_quantile_ns(q)
                .expect("samples recorded") as f64
                / 1e3
        };
        let cell = Cell {
            patterns: stats.patterns,
            suggestions: stats.suggestions,
            entities: stats.entities,
            index_build_ms: stats.build_ms,
            requests,
            errors,
            qps,
            client_p50_us: quantile_us(&all, 0.50),
            client_p90_us: quantile_us(&all, 0.90),
            client_p99_us: quantile_us(&all, 0.99),
            server_p50_us: server_q(0.50),
            server_p90_us: server_q(0.90),
            server_p99_us: server_q(0.99),
            swap_epoch_before: epoch_before,
            swap_epoch_after: epoch_after,
        };
        println!(
            "patterns={:>3}  {:>7.0} qps  client p50/p99 {:>7.1}/{:>7.1} µs  server p50/p99 \
             {:>6.1}/{:>6.1} µs  build {:>6.1} ms  errors={}",
            cell.patterns,
            cell.qps,
            cell.client_p50_us,
            cell.client_p99_us,
            cell.server_p50_us,
            cell.server_p99_us,
            cell.index_build_ms,
            cell.errors
        );
        assert_eq!(cell.errors, 0, "load run must be error-free");
        assert!(
            cell.swap_epoch_after > cell.swap_epoch_before,
            "hot swap must land during the load"
        );
        handle.shutdown();
        cells.push(cell);
    }

    let server_p99_us_max = cells.iter().map(|c| c.server_p99_us).fold(0.0, f64::max);
    let qps_min = cells.iter().map(|c| c.qps).fold(f64::INFINITY, f64::min);
    println!(
        "worst server-side p99: {server_p99_us_max:.1} µs; worst throughput: {qps_min:.0} qps"
    );
    if !fast_mode {
        // The serving acceptance bar. Fast mode's request counts are too
        // small for stable tails, so the smoke run only checks liveness.
        assert!(
            server_p99_us_max < 1_000.0,
            "suggestion path p99 must stay sub-millisecond"
        );
        assert!(
            qps_min >= 10_000.0,
            "server must sustain at least 10k suggest qps"
        );
    }

    let report = Report {
        host_cores,
        fast_mode,
        max_connections,
        clients,
        requests_per_client,
        cells,
        server_p99_us_max,
        qps_min,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if fast_mode {
        println!("fast mode: skipping write of {path}");
    } else {
        std::fs::write(path, json + "\n").expect("write BENCH_serve.json");
        println!("wrote {path}");
    }
}
