//! Algorithm 3: partial-update detection over the transfer pattern.
//!
//! The cleaning phase's cost is the outer-join chain over the pattern's
//! action relations; this bench times the full detect pass (history fetch,
//! reduction, outer joins, null-row selection) at two corpus sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wiclean_bench::{bench_miner_config, soccer_world, transfer_window};
use wiclean_core::partial::detect_partial_updates;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm3_partial");
    group.sample_size(10);
    for &seeds in &[100usize, 300] {
        let world = soccer_world(seeds, 0xA13);
        // The transfer template's expert working pattern.
        let wp = {
            use wiclean_core::abstract_action::AbstractAction;
            use wiclean_core::pattern::WorkingPattern;
            use wiclean_core::var::Var;
            use wiclean_revstore::EditOp;
            let tax = world.universe.taxonomy();
            let player = tax.lookup("SoccerPlayer").unwrap();
            let club = tax.lookup("SoccerClub").unwrap();
            let cc = world.universe.lookup_relation("current_club").unwrap();
            let squad = world.universe.lookup_relation("squad").unwrap();
            let p = Var::new(player, 0);
            let c1 = Var::new(club, 0);
            let c2 = Var::new(club, 1);
            WorkingPattern::from_actions(vec![
                AbstractAction::new(EditOp::Add, p, cc, c1),
                AbstractAction::new(EditOp::Add, c1, squad, p),
                AbstractAction::new(EditOp::Remove, p, cc, c2),
                AbstractAction::new(EditOp::Remove, c2, squad, p),
            ])
        };
        group.bench_with_input(BenchmarkId::new("detect", seeds), &seeds, |b, _| {
            b.iter(|| {
                detect_partial_updates(
                    &world.store,
                    &world.universe,
                    &bench_miner_config(0.4),
                    &wp,
                    world.seed_type,
                    &transfer_window(),
                    5,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
