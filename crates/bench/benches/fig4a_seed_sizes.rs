//! Figure 4(a): mining time vs. seed-set size, PM vs PM−join.
//!
//! The paper reports stacked preprocessing + mining bars for 100/500/1000
//! seeds; here Criterion times the combined crawl-parse-reduce-mine run for
//! each variant so the relative shape (PM−join ≫ PM, both growing with
//! seed count) is measured robustly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wiclean_baselines::{run_variant, Variant};
use wiclean_bench::{bench_miner_config, soccer_world, transfer_window};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_seed_sizes");
    group.sample_size(10);
    for &seeds in &[50usize, 100, 200] {
        let world = soccer_world(seeds, 0x41A);
        for variant in [Variant::Pm, Variant::PmNoJoin] {
            group.bench_with_input(BenchmarkId::new(variant.name(), seeds), &seeds, |b, _| {
                b.iter(|| {
                    run_variant(
                        variant,
                        &world.store,
                        &world.universe,
                        bench_miner_config(0.4),
                        world.seed_type,
                        &transfer_window(),
                        2,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
