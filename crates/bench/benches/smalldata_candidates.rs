//! The small-data experiment (§6.2): incremental vs full-graph mining on a
//! ~10-seed instance. The paper's headline is the candidate count (524 vs
//! 125, reproduced by the `smalldata` binary); this bench times the two
//! paths, including the closure materialization the `-inc` variant needs.

use criterion::{criterion_group, criterion_main, Criterion};
use wiclean_baselines::{run_variant, Variant};
use wiclean_bench::{soccer_world, transfer_window};
use wiclean_core::config::MinerConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("smalldata_candidates");
    group.sample_size(10);
    let world = soccer_world(10, 0x54A11);
    let config = MinerConfig {
        tau: 0.2,
        max_abstraction_height: 1,
        mine_relative: false,
        ..MinerConfig::default()
    };
    for variant in [Variant::Pm, Variant::PmInc] {
        group.bench_function(variant.name(), |b| {
            b.iter(|| {
                run_variant(
                    variant,
                    &world.store,
                    &world.universe,
                    config,
                    world.seed_type,
                    &transfer_window(),
                    2,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
