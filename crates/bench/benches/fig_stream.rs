//! Streaming figure (repo extension) — incremental delta-join refreshes
//! vs re-mining the window from scratch at the same cadence.
//!
//! Each cell streams a synthetic soccer corpus chronologically through the
//! `StreamMiner` and replays the identical feed against a baseline that
//! runs a full `WindowMiner::mine_window` at every refresh point (sharing
//! the stream's action-extraction cache, so the gap measured is join and
//! mining work, not re-parsing). The cell itself asserts the correctness
//! anchor — streamed sealed windows equal the batch answer pattern for
//! pattern, support for support, row for row — before reporting a number.
//!
//! The full run sweeps seed-set size at the default refresh cadence and
//! cadence at the largest size, all in the "feed caught up to now" hot
//! regime where every refresh lands in the dense planted transfer window.
//! Headline: best speedup across cells, asserted ≥ 3× in full mode.
//! Results land in `BENCH_stream.json` at the repo root. Set
//! `WICLEAN_BENCH_FAST=1` for a CI-sized smoke run (no JSON write).

use serde::Serialize;
use wiclean_eval::streaming::{
    render_stream_cells, stream_vs_full_remine, stream_vs_full_remine_hot, StreamCell,
};

#[derive(Serialize)]
struct Report {
    host_cores: usize,
    fast_mode: bool,
    /// RNG seed every cell's synthetic world is generated from.
    rng_seed: u64,
    cells: Vec<StreamCell>,
    /// Headline: best streamed-vs-remine speedup across cells.
    speedup_max: f64,
    /// Worst speedup across cells (the stream must never lose).
    speedup_min: f64,
}

fn main() {
    let fast_mode = std::env::var_os("WICLEAN_BENCH_FAST").is_some();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rng_seed = 0x57AEA7u64;

    // (seeds, refresh cadence, hot regime). The fast cell covers the whole
    // two-year feed so the smoke also exercises quiet-window sealing.
    let cells_spec: Vec<(usize, u64, bool)> = if fast_mode {
        vec![(60, 16, false)]
    } else {
        vec![
            (150, 8, true),
            (300, 8, true),
            (500, 8, true),
            (500, 4, true),
            (500, 16, true),
        ]
    };

    let mut cells = Vec::new();
    for &(seeds, refresh, hot) in &cells_spec {
        // Every cell asserts streamed == batch on all sealed windows.
        let cell = if hot {
            stream_vs_full_remine_hot(seeds, rng_seed, refresh)
        } else {
            stream_vs_full_remine(seeds, rng_seed, refresh)
        };
        assert!(cell.windows_sealed > 0, "cell sealed no windows: {cell:?}");
        assert_eq!(
            cell.late_revisions, 0,
            "chronological feed must have no late arrivals"
        );
        assert!(
            cell.delta_rows_joined > 0,
            "delta joins never fired — the stream degenerated to full mining"
        );
        cells.push(cell);
    }
    println!("{}", render_stream_cells(&cells));

    let speedup_max = cells.iter().map(|c| c.speedup).fold(0.0, f64::max);
    let speedup_min = cells
        .iter()
        .map(|c| c.speedup)
        .fold(f64::INFINITY, f64::min);
    println!("best speedup: {speedup_max:.1}x; worst: {speedup_min:.1}x");
    if !fast_mode {
        // The streaming acceptance bar. Fast mode's single small cell is
        // too short for a stable ratio, so the smoke only checks the
        // equivalence anchor and counters above.
        assert!(
            speedup_max >= 3.0,
            "incremental refresh must beat re-mining from scratch by >= 3x"
        );
        assert!(
            speedup_min >= 1.0,
            "the stream must never lose to the from-scratch baseline"
        );
    }

    let report = Report {
        host_cores,
        fast_mode,
        rng_seed,
        cells,
        speedup_max,
        speedup_min,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    if fast_mode {
        println!("fast mode: skipping write of {path}");
    } else {
        std::fs::write(path, json + "\n").expect("write BENCH_stream.json");
        println!("wrote {path}");
    }
}
