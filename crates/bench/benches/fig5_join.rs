//! Figure 5 (repo extension) — the columnar realization engine.
//!
//! Times the realization-pipeline step the miner executes per candidate —
//! glue join → dedup → COUNT(DISTINCT source) — across engines:
//!
//! * **row-hash / row-sort-merge** — the retained row-oriented reference
//!   engine ([`wiclean_rel::rowstore`]), i.e. the pre-columnar seed
//!   implementation with fully materialized row joins;
//! * **col-hash / col-sort-merge / col-nested** — the columnar engine with
//!   eager materialization (table-level wrappers);
//! * **col-late** — the columnar late-materialized pipeline: pair stage,
//!   support counted off the pair stream, one gather, dedup;
//! * **col-prune** — the distinct-source fast path alone (what the miner
//!   pays for a candidate that fails the threshold: no gather at all);
//! * **partitioned** — the radix-partitioned parallel hash pair stage on a
//!   real [`wiclean_core::MiningPool`] at 1/2/4/8 threads, asserted
//!   byte-identical to the serial pair stream.
//!
//! Every strategy's (rows, support) digest is asserted equal, and a small
//! cross-engine equivalence workload additionally checks sorted-row
//! equality including the nested-loop reference. A final section mines the
//! soccer transfer window and reports how many candidate tables the fast
//! path avoided materializing. Results land in `BENCH_join.json` at the
//! repo root. Set `WICLEAN_BENCH_FAST=1` for a CI-sized smoke run.

use serde::Serialize;
use std::time::Instant;
use wiclean_bench::{bench_miner_config, soccer_world, transfer_window};
use wiclean_core::pool::MiningPool;
use wiclean_core::WindowMiner;
use wiclean_rel::rowstore::{join_glue_rows, join_glue_sort_merge_rows, RowTable};
use wiclean_rel::{
    distinct_left_values, join_glue, join_glue_nested, join_glue_pairs,
    join_glue_pairs_partitioned, join_glue_sort_merge, materialize_pairs, ColumnGlue, Schema,
    SerialRunner, Table,
};
use wiclean_types::EntityId;

/// One timed strategy.
#[derive(Serialize)]
struct Strategy {
    name: &'static str,
    wall_ms: f64,
    /// row-hash wall-clock divided by this strategy's.
    speedup_vs_row_hash: f64,
}

/// One point of the partitioned-join thread sweep.
#[derive(Serialize)]
struct PartitionedPoint {
    threads: usize,
    wall_ms: f64,
    speedup_vs_serial: f64,
    /// Pair stream byte-identical to the serial hash join's.
    identical: bool,
}

/// Join-engine counters of the mining fast-path section.
#[derive(Serialize)]
struct FastPath {
    rows_probed: usize,
    pairs_matched: usize,
    tables_materialized: usize,
    tables_pruned: usize,
    prune_rate: f64,
}

#[derive(Serialize)]
struct Report {
    host_cores: usize,
    fast_mode: bool,
    left_rows: usize,
    right_rows: usize,
    pairs: usize,
    output_rows: usize,
    support: usize,
    strategies: Vec<Strategy>,
    partitioned: Vec<PartitionedPoint>,
    fast_path: FastPath,
    outputs_equivalent: bool,
    /// The headline number: row-hash wall-clock over col-hash wall-clock.
    columnar_speedup_vs_row: f64,
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A realization-shaped left table: col 0 the (mostly distinct) seed
/// entities, col 1 the join key (skewed over `keys` clubs), then four more
/// bound variables — the width of a mature 4-action pattern's table.
/// Null-free, like every inner-join realization table.
fn left_table(rows: usize, keys: u32, rng: &mut u64) -> Table {
    let mut t = Table::new(Schema::new(["player", "club", "v2", "v3", "v4", "v5"]));
    for i in 0..rows {
        let player = EntityId::from_u32(10_000 + (i as u32 % (rows as u32 / 2 + 1)));
        // Skew: half the rows land in an eighth of the key space.
        let r = xorshift(rng);
        let club = if r.is_multiple_of(2) {
            EntityId::from_u32((r >> 8) as u32 % (keys / 8 + 1))
        } else {
            EntityId::from_u32((r >> 8) as u32 % keys)
        };
        let extras = [
            EntityId::from_u32(50_000 + (r >> 24) as u32 % 1000),
            EntityId::from_u32(60_000 + (r >> 32) as u32 % 1000),
            EntityId::from_u32(70_000 + (r >> 40) as u32 % 1000),
            EntityId::from_u32(80_000 + (r >> 48) as u32 % 1000),
        ];
        t.push_row(&[
            Some(player),
            Some(club),
            Some(extras[0]),
            Some(extras[1]),
            Some(extras[2]),
            Some(extras[3]),
        ]);
    }
    t
}

/// The action relation being glued on: (club, new-entity) pairs.
fn right_table(rows: usize, keys: u32, rng: &mut u64) -> Table {
    let mut t = Table::new(Schema::new(["club2", "fresh"]));
    for _ in 0..rows {
        let r = xorshift(rng);
        let club = EntityId::from_u32(r as u32 % keys);
        let fresh = EntityId::from_u32(10_000 + (r >> 32) as u32 % 8000);
        t.push_row(&[Some(club), Some(fresh)]);
    }
    t
}

/// The miner's extension glue: the action's source glues onto the left
/// club column; its target is a fresh variable kept distinct from the
/// comparable player column.
fn glue() -> Vec<ColumnGlue> {
    vec![
        ColumnGlue::Glued(1),
        ColumnGlue::New {
            name: "fresh".into(),
            distinct_from: vec![0],
        },
    ]
}

/// (output rows, distinct-source support) — the digest every strategy must
/// agree on.
type Digest = (usize, usize);

fn finish(mut t: Table) -> Digest {
    t.dedup();
    let support = t.distinct_count(0);
    (t.len(), support)
}

fn finish_rows(mut t: RowTable) -> Digest {
    t.dedup();
    let support = t.distinct_values(0).len();
    (t.len(), support)
}

fn median_ms(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn timed(reps: usize, run: &mut dyn FnMut() -> Digest) -> (f64, Digest) {
    let mut times = Vec::with_capacity(reps);
    let mut digest = (0, 0);
    for _ in 0..reps {
        let t0 = Instant::now();
        digest = run();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    (median_ms(times), digest)
}

/// Cross-engine equivalence on a small workload: all three columnar
/// strategies, the partitioned pair stage, and both row-oriented reference
/// joins must produce identical sorted rows.
fn assert_equivalence(threads: usize) {
    let mut rng = 0x5EED_u64;
    let left = left_table(1500, 120, &mut rng);
    let right = right_table(400, 120, &mut rng);
    let g = glue();
    let (rl, rr) = (RowTable::from_table(&left), RowTable::from_table(&right));

    let reference = {
        let mut t = join_glue_rows(&rl, &rr, &g);
        t.dedup();
        t.sorted_rows()
    };
    for (name, mut table) in [
        ("col-hash", join_glue(&left, &right, &g)),
        ("col-sort-merge", join_glue_sort_merge(&left, &right, &g)),
        ("col-nested", join_glue_nested(&left, &right, &g)),
        (
            "col-partitioned",
            materialize_pairs(
                &left,
                &right,
                &g,
                &join_glue_pairs_partitioned(&left, &right, &g, &MiningPool::new(threads)),
            ),
        ),
    ] {
        table.dedup();
        assert_eq!(
            table.sorted_rows(),
            reference,
            "{name} diverges from row reference"
        );
    }
    let mut rsm = join_glue_sort_merge_rows(&rl, &rr, &g);
    rsm.dedup();
    assert_eq!(rsm.sorted_rows(), reference, "row sort-merge diverges");
    let serial = join_glue_pairs(&left, &right, &g);
    assert_eq!(
        serial,
        join_glue_pairs_partitioned(&left, &right, &g, &SerialRunner),
        "partitioned(1) pair stream must be byte-identical"
    );
}

fn main() {
    let fast_mode = std::env::var_os("WICLEAN_BENCH_FAST").is_some();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (left_rows, right_rows, keys, reps) = if fast_mode {
        (6_000, 1_500, 200, 2)
    } else {
        (24_000, 6_000, 600, 5)
    };

    assert_equivalence(8.min(host_cores.max(2)));
    println!("cross-engine equivalence: ok");

    let mut rng = 0xF1C5_u64;
    let left = left_table(left_rows, keys, &mut rng);
    let right = right_table(right_rows, keys, &mut rng);
    let g = glue();
    let (rl, rr) = (RowTable::from_table(&left), RowTable::from_table(&right));
    let pairs = join_glue_pairs(&left, &right, &g);
    println!(
        "workload: {} left x {} right rows -> {} pairs",
        left.len(),
        right.len(),
        pairs.len()
    );

    let mut equivalent = true;
    let mut strategies: Vec<Strategy> = Vec::new();
    let mut baseline = (0.0, (0, 0));
    type Run<'a> = Box<dyn FnMut() -> Digest + 'a>;
    let runs: Vec<(&'static str, Run)> = vec![
        (
            "row-hash",
            Box::new(|| finish_rows(join_glue_rows(&rl, &rr, &g))),
        ),
        (
            "row-sort-merge",
            Box::new(|| finish_rows(join_glue_sort_merge_rows(&rl, &rr, &g))),
        ),
        (
            "col-hash",
            Box::new(|| finish(join_glue(&left, &right, &g))),
        ),
        (
            "col-sort-merge",
            Box::new(|| finish(join_glue_sort_merge(&left, &right, &g))),
        ),
        (
            "col-nested",
            Box::new(|| finish(join_glue_nested(&left, &right, &g))),
        ),
        (
            "col-late",
            Box::new(|| {
                // The late-materialized pipeline: pair stage, support off
                // the pair stream, one gather — what the miner pays for an
                // *accepted* candidate.
                let pairs = join_glue_pairs(&left, &right, &g);
                let support = distinct_left_values(&left, 0, &pairs).len();
                let mut t = materialize_pairs(&left, &right, &g, &pairs);
                t.dedup();
                (t.len(), support)
            }),
        ),
    ];
    for (name, mut run) in runs {
        // The nested loop is quadratic; one repetition is plenty for a
        // reference point on the full workload.
        let r = if name == "col-nested" { 1 } else { reps };
        let (wall_ms, digest) = timed(r, &mut *run);
        if strategies.is_empty() {
            baseline = (wall_ms, digest);
        } else if digest != baseline.1 {
            eprintln!("{name}: digest {digest:?} != row-hash {:?}", baseline.1);
            equivalent = false;
        }
        let speedup = baseline.0 / wall_ms;
        println!(
            "{name:>16}  {wall_ms:>9.2} ms  {speedup:>5.2}x  rows={} support={}",
            digest.0, digest.1
        );
        strategies.push(Strategy {
            name,
            wall_ms,
            speedup_vs_row_hash: speedup,
        });
    }

    // The fast path's cost for a pruned candidate: pair stage + distinct
    // count, no gather. Digest has no table rows by construction; compare
    // support only.
    {
        let (wall_ms, digest) = timed(reps, &mut || {
            let pairs = join_glue_pairs(&left, &right, &g);
            (0, distinct_left_values(&left, 0, &pairs).len())
        });
        if digest.1 != baseline.1 .1 {
            eprintln!("col-prune: support {} != {}", digest.1, baseline.1 .1);
            equivalent = false;
        }
        let speedup = baseline.0 / wall_ms;
        println!(
            "{:>16}  {wall_ms:>9.2} ms  {speedup:>5.2}x  (no materialization)",
            "col-prune"
        );
        strategies.push(Strategy {
            name: "col-prune",
            wall_ms,
            speedup_vs_row_hash: speedup,
        });
    }

    // Partitioned pair stage on a real pool, 1..8 threads. Byte-identity
    // against the serial pair stream is asserted every round.
    let mut partitioned = Vec::new();
    let mut serial_ms = 0.0;
    for &threads in &[1usize, 2, 4, 8] {
        let pool = MiningPool::new(threads);
        let mut identical = true;
        let (wall_ms, _) = timed(reps, &mut || {
            let p = join_glue_pairs_partitioned(&left, &right, &g, &pool);
            identical &= p == pairs;
            let support = distinct_left_values(&left, 0, &p).len();
            let mut t = materialize_pairs(&left, &right, &g, &p);
            t.dedup();
            (t.len(), support)
        });
        if threads == 1 {
            serial_ms = wall_ms;
        }
        if !identical {
            eprintln!("partitioned({threads}): pair stream diverged");
            equivalent = false;
        }
        let speedup = serial_ms / wall_ms;
        println!(
            "{:>16}  {wall_ms:>9.2} ms  {speedup:>5.2}x  threads={threads} identical={identical}",
            "partitioned"
        );
        partitioned.push(PartitionedPoint {
            threads,
            wall_ms,
            speedup_vs_serial: speedup,
            identical,
        });
    }

    // Mining fast-path section: how many candidate tables the miner never
    // built while mining the planted transfer window.
    let world = soccer_world(if fast_mode { 60 } else { 150 }, 0x415);
    let miner = WindowMiner::new(&world.store, &world.universe, bench_miner_config(0.41));
    let result = miner.mine_window(world.seed_type, &transfer_window());
    let s = &result.stats;
    println!(
        "mining fast path: {} joins, {} materialized, {} pruned ({:.0}% saved)",
        s.joins_executed,
        s.tables_materialized,
        s.tables_pruned,
        s.join_prune_rate() * 100.0
    );
    assert!(s.tables_pruned > 0, "mining must prune some candidates");

    assert!(equivalent, "all strategies must agree on (rows, support)");
    let col_hash = strategies.iter().find(|s| s.name == "col-hash").unwrap();
    let columnar_speedup_vs_row = col_hash.speedup_vs_row_hash;
    println!("columnar hash vs row-oriented seed: {columnar_speedup_vs_row:.2}x");

    let (output_rows, support) = baseline.1;
    let report = Report {
        host_cores,
        fast_mode,
        left_rows: left.len(),
        right_rows: right.len(),
        pairs: pairs.len(),
        output_rows,
        support,
        strategies,
        partitioned,
        fast_path: FastPath {
            rows_probed: s.rows_probed,
            pairs_matched: s.pairs_matched,
            tables_materialized: s.tables_materialized,
            tables_pruned: s.tables_pruned,
            prune_rate: s.join_prune_rate(),
        },
        outputs_equivalent: equivalent,
        columnar_speedup_vs_row,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
    if fast_mode {
        println!("fast mode: skipping write of {path}");
    } else {
        std::fs::write(path, json + "\n").expect("write BENCH_join.json");
        println!("wrote {path}");
    }
}
