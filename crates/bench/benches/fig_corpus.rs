//! Out-of-core corpus figure (repo extension) — mining a million-entity
//! synthetic corpus from delta-encoded sharded segment logs within a
//! bounded memory budget, against the in-memory store as the baseline.
//!
//! The corpus is the streaming bulk generator's soccer world (every player
//! performs one club transfer inside the planted two-week window), ingested
//! one entity history at a time so nothing but the out-of-core store ever
//! holds the revisions. Phase order matters: the disk-backend phases run
//! FIRST and the process' peak RSS (`VmHWM`) is read right after the disk
//! mine, so the recorded peak covers exactly the out-of-core pipeline —
//! the in-memory baseline, which deliberately holds the whole corpus in
//! RAM, runs afterwards. The cell asserts the correctness anchor — the
//! disk and memory backends discover byte-identical patterns — before
//! reporting a number.
//!
//! Headlines, asserted in full mode: delta encoding stores a revision in
//! ≤ 25% of the full-text bytes, and the disk-backend mine of a ≥ 1M-entity
//! corpus peaks under 2 GiB RSS. Results land in `BENCH_corpus.json` at
//! the repo root. Set `WICLEAN_BENCH_FAST=1` for a CI-sized smoke run (no
//! JSON write).

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use wiclean_core::config::MinerConfig;
use wiclean_core::parallel::mine_windows_parallel;
use wiclean_core::{open_sharded_corpus, WindowResult};
use wiclean_revstore::{
    MemoryBudget, RealFs, RevisionStore, ShardPolicy, ShardedStore, SyncPolicy,
};
use wiclean_synth::{build_bulk_universe, BulkConfig, BulkWorld};
use wiclean_types::{Universe, Window};

/// One backend's ingest measurements.
#[derive(Serialize)]
struct IngestCell {
    entities: u64,
    revisions: u64,
    /// Raw wikitext bytes fed in.
    text_bytes: u64,
    /// Valid segment bytes the store wrote.
    bytes_on_disk: u64,
    bytes_per_revision: f64,
    wall_s: f64,
    mb_per_s: f64,
    frames_full: u64,
    frames_delta: u64,
}

/// One backend's mining measurements over the planted transfer window.
#[derive(Serialize)]
struct MineCell {
    backend: String,
    wall_s: f64,
    patterns: usize,
    most_specific: usize,
    snapshot_cache_hits: u64,
    snapshot_cache_misses: u64,
    snapshot_cache_evictions: u64,
    snapshot_cache_hit_rate: f64,
    delta_chain_replays: u64,
}

#[derive(Serialize)]
struct Report {
    host_cores: usize,
    fast_mode: bool,
    rng_seed: u64,
    players: u32,
    clubs: u32,
    revisions_per_player: u32,
    shards: u32,
    snapshot_every: u32,
    memory_budget_bytes: u64,
    /// Per-shard ingest delta-base budget (bytes); see the policy comment
    /// in `main` for why the bench pins it well below the default.
    ingest_base_budget_bytes: u64,
    /// Total entities in the corpus (the ≥ 1M acceptance bar).
    entities: u64,
    /// Delta-encoded ingest (the real configuration).
    ingest_delta: IngestCell,
    /// Full-text ingest baseline (`snapshot_every = 1`, possibly over a
    /// subset — bytes/revision is what is compared, and it is per-entity).
    ingest_full: IngestCell,
    /// `ingest_delta.bytes_per_revision / ingest_full.bytes_per_revision`;
    /// asserted ≤ 0.25.
    delta_to_full_ratio: f64,
    mine_disk: MineCell,
    mine_memory: MineCell,
    /// Peak process RSS (VmHWM, MiB) measured right after the disk mine,
    /// before the in-memory baseline was built; asserted ≤ 2048 in full
    /// mode.
    rss_peak_disk_phase_mb: u64,
    /// Disk and memory backends discovered byte-identical patterns.
    digest_identical: bool,
    /// Disk mine wall-clock over memory mine wall-clock.
    disk_vs_memory_wall_ratio: f64,
}

/// Peak resident set (VmHWM) of this process, in MiB.
fn peak_rss_mb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb / 1024;
        }
    }
    0
}

/// Streams `take` entity histories (all of them if `None`) into a fresh
/// sharded store at `dir`, one history at a time — peak memory is one
/// history plus the store's own index.
fn stream_ingest(
    world: &BulkWorld,
    dir: &std::path::Path,
    policy: ShardPolicy,
    budget: Arc<MemoryBudget>,
    take: Option<usize>,
) -> (ShardedStore<RealFs>, IngestCell) {
    let _ = std::fs::remove_dir_all(dir);
    let store = ShardedStore::create(RealFs, dir, policy, budget).expect("create sharded store");
    let limit = take.unwrap_or(usize::MAX);
    let mut entities = 0u64;
    let mut revisions = 0u64;
    let mut text_bytes = 0u64;
    let t0 = Instant::now();
    for (entity, history) in world.histories().take(limit) {
        revisions += history.len() as u64;
        text_bytes += history.iter().map(|(_, t)| t.len() as u64).sum::<u64>();
        store
            .append_history(entity, history.iter().map(|(t, s)| (*t, s.as_str())))
            .expect("append history");
        entities += 1;
    }
    store.flush().expect("flush segments");
    let wall = t0.elapsed().as_secs_f64();
    let stats = store.corpus_stats();
    let cell = IngestCell {
        entities,
        revisions,
        text_bytes,
        bytes_on_disk: stats.bytes_on_disk,
        bytes_per_revision: stats.bytes_on_disk as f64 / revisions.max(1) as f64,
        wall_s: wall,
        mb_per_s: text_bytes as f64 / (1 << 20) as f64 / wall.max(1e-9),
        frames_full: stats.frames_full,
        frames_delta: stats.frames_delta,
    };
    (store, cell)
}

/// A sorted, printable digest of the frequent patterns a window mine
/// found — what the backend differential compares byte for byte.
fn pattern_digest(result: &WindowResult, universe: &Universe) -> Vec<String> {
    let mut lines: Vec<String> = result
        .patterns
        .iter()
        .map(|p| {
            format!(
                "{} support={} freq={:.6} most_specific={}",
                p.pattern.display(universe),
                p.support,
                p.frequency,
                p.most_specific
            )
        })
        .collect();
    lines.sort();
    lines
}

fn main() {
    let fast_mode = std::env::var_os("WICLEAN_BENCH_FAST").is_some();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rng_seed = 0xC0A9u64;

    let config = if fast_mode {
        BulkConfig {
            players: 2_000,
            clubs: 16,
            revisions_per_player: 8,
            seed: rng_seed,
        }
    } else {
        BulkConfig {
            players: 1_000_000,
            clubs: 64,
            revisions_per_player: 8,
            seed: rng_seed,
        }
    };
    // `ingest_base_budget` is PER SHARD, and a streamed ingest appends each
    // entity's whole history exactly once — a retained base is dead weight
    // the moment its entity's last revision lands. 2 MiB/shard (64 MiB
    // total) comfortably covers the one in-flight history (~10 KB) while
    // keeping a million finished bases from pinning ~1 GiB of RSS.
    let policy = ShardPolicy {
        shards: 32,
        snapshot_every: 16,
        sync: SyncPolicy::Never,
        ingest_base_budget: 2 << 20,
    };
    let budget_bytes: u64 = 256 << 20;
    // The full-text baseline only measures bytes/revision (a per-entity
    // quantity), so a subset keeps the full run's wall-clock sane.
    let full_baseline_take = if fast_mode { None } else { Some(100_000) };

    println!(
        "bulk corpus: {} players + {} clubs, {} revisions/player (fast={fast_mode})",
        config.players, config.clubs, config.revisions_per_player
    );
    let world = build_bulk_universe(config);
    let entities = config.entity_total();
    println!("  universe built: peak RSS {} MiB", peak_rss_mb());

    let tmp = std::env::temp_dir().join("wiclean-bench-corpus");
    let delta_dir = tmp.join("delta");
    let full_dir = tmp.join("full");

    // Phase 1 (disk): delta-encoded ingest at the real cadence.
    let (store, ingest_delta) = stream_ingest(
        &world,
        &delta_dir,
        policy,
        Arc::new(MemoryBudget::new(budget_bytes)),
        None,
    );
    println!(
        "  delta ingest: {} revisions, {:.1} MB/s, {:.1} bytes/revision ({} full + {} delta frames)",
        ingest_delta.revisions,
        ingest_delta.mb_per_s,
        ingest_delta.bytes_per_revision,
        ingest_delta.frames_full,
        ingest_delta.frames_delta
    );
    drop(store);
    println!("  after delta ingest: peak RSS {} MiB", peak_rss_mb());

    // Phase 2 (disk): full-text baseline, snapshot frame every revision.
    let (store, ingest_full) = stream_ingest(
        &world,
        &full_dir,
        ShardPolicy {
            snapshot_every: 1,
            ..policy
        },
        Arc::new(MemoryBudget::new(budget_bytes)),
        full_baseline_take,
    );
    println!(
        "  full-text baseline: {} entities, {:.1} bytes/revision",
        ingest_full.entities, ingest_full.bytes_per_revision
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&full_dir);
    let delta_to_full_ratio = ingest_delta.bytes_per_revision / ingest_full.bytes_per_revision;
    println!("  delta/full bytes-per-revision ratio: {delta_to_full_ratio:.3}");
    assert!(
        delta_to_full_ratio <= 0.25,
        "delta encoding must store a revision in <= 25% of the full-text bytes"
    );

    // Phase 3 (disk): reopen — the mining read path never sees the writer's
    // in-memory state — and mine the planted transfer window.
    let window = Window::new(
        BulkConfig::transfer_window_start(),
        BulkConfig::transfer_window_end(),
    );
    let miner_config = MinerConfig {
        tau: 0.5,
        max_abstraction_height: 1,
        max_pattern_actions: 4,
        mine_relative: false,
        ..MinerConfig::default()
    };
    let corpus = open_sharded_corpus(
        RealFs,
        &delta_dir,
        policy,
        Arc::new(MemoryBudget::new(budget_bytes)),
    )
    .expect("open sharded corpus");
    assert!(corpus.recovery.is_clean(), "clean ingest must reopen clean");
    let t0 = Instant::now();
    let results = mine_windows_parallel(
        &corpus.store,
        &world.universe,
        world.seed_type,
        &[window],
        miner_config,
        1,
    );
    let disk_wall = t0.elapsed().as_secs_f64();
    let disk_digest = pattern_digest(&results[0], &world.universe);
    let stats = corpus.store.corpus_stats();
    let lookups = stats.snapshot_cache_hits + stats.snapshot_cache_misses;
    let mine_disk = MineCell {
        backend: "disk".to_owned(),
        wall_s: disk_wall,
        patterns: results[0].patterns.len(),
        most_specific: results[0]
            .patterns
            .iter()
            .filter(|p| p.most_specific)
            .count(),
        snapshot_cache_hits: stats.snapshot_cache_hits,
        snapshot_cache_misses: stats.snapshot_cache_misses,
        snapshot_cache_evictions: stats.snapshot_cache_evictions,
        snapshot_cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            stats.snapshot_cache_hits as f64 / lookups as f64
        },
        delta_chain_replays: stats.delta_chain_replays,
    };
    drop(corpus);
    assert!(
        !disk_digest.is_empty(),
        "the planted transfer pattern must be discovered"
    );
    assert!(
        disk_digest.iter().any(|l| l.contains("current_club")),
        "expected a current_club pattern, got {disk_digest:?}"
    );

    // The acceptance bar: peak RSS so far covers generation, out-of-core
    // ingest, and the disk mine — everything but the in-memory baseline.
    let rss_peak_disk_phase_mb = peak_rss_mb();
    println!(
        "  disk mine: {:.1}s, {} patterns, cache hit rate {:.3}, peak RSS {} MiB",
        mine_disk.wall_s,
        mine_disk.patterns,
        mine_disk.snapshot_cache_hit_rate,
        rss_peak_disk_phase_mb
    );
    if !fast_mode {
        assert!(
            rss_peak_disk_phase_mb <= 2048,
            "out-of-core phases must stay under 2 GiB peak RSS, saw {rss_peak_disk_phase_mb} MiB"
        );
    }

    // Phase 4 (memory baseline): the whole corpus in RAM, same mine.
    let mut mem_store = RevisionStore::new();
    for (entity, history) in world.histories() {
        for (time, text) in history {
            mem_store.record(entity, time, text);
        }
    }
    let t0 = Instant::now();
    let results = mine_windows_parallel(
        &mem_store,
        &world.universe,
        world.seed_type,
        &[window],
        miner_config,
        1,
    );
    let memory_wall = t0.elapsed().as_secs_f64();
    let memory_digest = pattern_digest(&results[0], &world.universe);
    let mine_memory = MineCell {
        backend: "memory".to_owned(),
        wall_s: memory_wall,
        patterns: results[0].patterns.len(),
        most_specific: results[0]
            .patterns
            .iter()
            .filter(|p| p.most_specific)
            .count(),
        snapshot_cache_hits: 0,
        snapshot_cache_misses: 0,
        snapshot_cache_evictions: 0,
        snapshot_cache_hit_rate: 0.0,
        delta_chain_replays: 0,
    };
    drop(mem_store);
    let _ = std::fs::remove_dir_all(&tmp);

    assert_eq!(
        disk_digest, memory_digest,
        "backends must discover byte-identical patterns"
    );
    let ratio = disk_wall / memory_wall.max(1e-9);
    println!(
        "  memory mine: {memory_wall:.1}s; disk/memory wall ratio {ratio:.2}; digests identical"
    );

    let report = Report {
        host_cores,
        fast_mode,
        rng_seed,
        players: config.players,
        clubs: config.clubs,
        revisions_per_player: config.revisions_per_player,
        shards: policy.shards,
        snapshot_every: policy.snapshot_every,
        memory_budget_bytes: budget_bytes,
        ingest_base_budget_bytes: policy.ingest_base_budget,
        entities,
        ingest_delta,
        ingest_full,
        delta_to_full_ratio,
        mine_disk,
        mine_memory,
        rss_peak_disk_phase_mb,
        digest_identical: true,
        disk_vs_memory_wall_ratio: ratio,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_corpus.json");
    if fast_mode {
        println!("fast mode: skipping write of {path}");
    } else {
        std::fs::write(path, json + "\n").expect("write BENCH_corpus.json");
        println!("wrote {path}");
    }
}
