//! Shared helpers for the WiClean benchmark suite.
//!
//! Each bench target regenerates one of the paper's evaluation artifacts
//! (see DESIGN.md's experiment index). Bench-sized corpora are smaller than
//! the experiment binaries' defaults so Criterion's repeated sampling stays
//! affordable; the binaries in `wiclean-eval` produce the full-size runs.

use wiclean_core::config::MinerConfig;
use wiclean_synth::{generate, scenarios, SynthConfig, SynthWorld};
use wiclean_types::{Window, DAY};

/// Generates a soccer world of `seeds` seed entities (deterministic).
pub fn soccer_world(seeds: usize, rng_seed: u64) -> SynthWorld {
    generate(
        scenarios::soccer(),
        SynthConfig {
            seed_count: seeds,
            rng_seed,
            ..SynthConfig::default()
        },
    )
}

/// The planted transfer window (first two weeks of "August").
pub fn transfer_window() -> Window {
    Window::new(210 * DAY, 224 * DAY)
}

/// Miner configuration used by the runtime benches.
pub fn bench_miner_config(tau: f64) -> MinerConfig {
    MinerConfig {
        tau,
        max_abstraction_height: 1,
        max_pattern_actions: 4,
        mine_relative: false,
        ..MinerConfig::default()
    }
}
