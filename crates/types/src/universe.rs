//! The [`Universe`]: one bundle of taxonomy + relations + entities.
//!
//! Nearly every WiClean component needs the same three registries; bundling
//! them avoids threading three references through every signature and keeps
//! the identifier spaces consistent (an `EntityId` is only meaningful
//! relative to the universe that allocated it).

use crate::catalog::EntityCatalog;
use crate::error::TypesError;
use crate::ids::{EntityId, RelId, TypeId};
use crate::intern::Interner;
use crate::taxonomy::Taxonomy;
use serde::{Deserialize, Serialize};

/// The complete static vocabulary of a WiClean deployment: the type
/// taxonomy, the relation-label interner and the entity catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Universe {
    taxonomy: Taxonomy,
    relations: Interner,
    entities: EntityCatalog,
}

impl Universe {
    /// Creates a universe whose taxonomy contains only `root_type`.
    pub fn new(root_type: &str) -> Self {
        Self {
            taxonomy: Taxonomy::new(root_type),
            relations: Interner::new(),
            entities: EntityCatalog::new(),
        }
    }

    /// Shared access to the taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Mutable access to the taxonomy (schema building).
    pub fn taxonomy_mut(&mut self) -> &mut Taxonomy {
        &mut self.taxonomy
    }

    /// Shared access to the entity catalog.
    pub fn entities(&self) -> &EntityCatalog {
        &self.entities
    }

    /// Registers a relation label, returning its id.
    pub fn relation(&mut self, label: &str) -> RelId {
        RelId::from_u32(self.relations.intern(label))
    }

    /// Looks up an existing relation label.
    pub fn lookup_relation(&self, label: &str) -> Option<RelId> {
        self.relations.get(label).map(RelId::from_u32)
    }

    /// The label of a relation.
    pub fn relation_name(&self, r: RelId) -> &str {
        self.relations.resolve(r.as_u32())
    }

    /// Number of distinct relation labels.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Registers an entity with its most specific type.
    pub fn add_entity(&mut self, name: &str, ty: TypeId) -> Result<EntityId, TypesError> {
        self.entities.add(name, ty)
    }

    /// The display name of an entity.
    pub fn entity_name(&self, e: EntityId) -> &str {
        self.entities.name(e)
    }

    /// `type(e)` — the entity's most specific type.
    pub fn entity_type(&self, e: EntityId) -> TypeId {
        self.entities.entity_type(e)
    }

    /// `entities(t)` — every entity of type `t' ≤ t`.
    pub fn entities_of(&self, t: TypeId) -> Vec<EntityId> {
        self.entities.entities_of(&self.taxonomy, t)
    }

    /// `|entities(t)|`.
    pub fn count_entities_of(&self, t: TypeId) -> usize {
        self.entities.count_entities_of(&self.taxonomy, t)
    }

    /// Whether `e ∈ entities(t)`.
    pub fn entity_has_type(&self, e: EntityId, t: TypeId) -> bool {
        self.entities.entity_has_type(&self.taxonomy, e, t)
    }

    /// Tests the subtype relation `sub ≤ sup`.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        self.taxonomy.is_subtype(sub, sup)
    }

    /// Human-readable rendering of a type id.
    pub fn type_name(&self, t: TypeId) -> &str {
        self.taxonomy.name(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_round_trip() {
        let mut u = Universe::new("Thing");
        let person = u.taxonomy_mut().add("Person", TypeId::from_u32(0)).unwrap();
        u.relation("knows");
        let alice = u.add_entity("Alice", person).unwrap();
        let json = serde_json::to_string(&u).unwrap();
        let back: Universe = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entity_name(alice), "Alice");
        assert_eq!(back.lookup_relation("knows"), u.lookup_relation("knows"));
        assert_eq!(back.taxonomy().lookup("Person"), Some(person));
        assert_eq!(back.count_entities_of(person), 1);
    }

    #[test]
    fn end_to_end_vocabulary() {
        let mut u = Universe::new("Thing");
        let person = u.taxonomy_mut().add("Person", TypeId::from_u32(0)).unwrap();
        let player = u.taxonomy_mut().add("SoccerPlayer", person).unwrap();
        let club = u
            .taxonomy_mut()
            .add("SoccerClub", TypeId::from_u32(0))
            .unwrap();

        let rel = u.relation("current_club");
        assert_eq!(u.relation_name(rel), "current_club");
        assert_eq!(u.relation("current_club"), rel, "relation ids stable");
        assert_eq!(u.lookup_relation("current_club"), Some(rel));
        assert_eq!(u.lookup_relation("squad"), None);
        assert_eq!(u.relation_count(), 1);

        let neymar = u.add_entity("Neymar", player).unwrap();
        let psg = u.add_entity("PSG", club).unwrap();
        assert_eq!(u.entity_name(neymar), "Neymar");
        assert_eq!(u.entity_type(psg), club);
        assert!(u.entity_has_type(neymar, person));
        assert!(!u.entity_has_type(psg, person));
        assert_eq!(u.entities_of(person), vec![neymar]);
        assert_eq!(u.count_entities_of(person), 1);
        assert!(u.is_subtype(player, person));
        assert_eq!(u.type_name(player), "SoccerPlayer");
    }
}
