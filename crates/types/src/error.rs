//! Error types for vocabulary registration and interning.

use std::fmt;

/// Errors raised by WiClean substrate components that long-running callers
/// (the suggestion server) must handle without aborting the process.
///
/// Batch drivers may still use the infallible APIs that panic on these
/// conditions — a one-shot mining run hitting an exhausted interner has no
/// useful recovery — but anything resident keeps to the `try_*` paths and
/// turns these into rejected requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WicleanError {
    /// An append-only interner reached its id-space limit: the next intern
    /// would need index `limit`, which is outside `0..limit`.
    InternerFull {
        /// The exhausted interner's capacity (number of distinct keys).
        limit: u32,
    },
}

impl fmt::Display for WicleanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InternerFull { limit } => {
                write!(f, "interner full: capacity of {limit} symbols exhausted")
            }
        }
    }
}

impl std::error::Error for WicleanError {}

/// Errors raised while building the type taxonomy or entity catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypesError {
    /// A type name was registered twice.
    DuplicateType(String),
    /// An entity name was registered twice.
    DuplicateEntity(String),
    /// A referenced type name is unknown.
    UnknownType(String),
    /// A referenced entity name is unknown.
    UnknownEntity(String),
    /// A taxonomy edge would create a cycle.
    CyclicTaxonomy(String),
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateType(n) => write!(f, "type `{n}` is already registered"),
            Self::DuplicateEntity(n) => write!(f, "entity `{n}` is already registered"),
            Self::UnknownType(n) => write!(f, "unknown type `{n}`"),
            Self::UnknownEntity(n) => write!(f, "unknown entity `{n}`"),
            Self::CyclicTaxonomy(n) => {
                write!(f, "adding type `{n}` would create a taxonomy cycle")
            }
        }
    }
}

impl std::error::Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wiclean_error_display() {
        assert_eq!(
            WicleanError::InternerFull { limit: 16 }.to_string(),
            "interner full: capacity of 16 symbols exhausted"
        );
    }

    #[test]
    fn display_messages() {
        assert_eq!(
            TypesError::DuplicateType("Athlete".into()).to_string(),
            "type `Athlete` is already registered"
        );
        assert_eq!(
            TypesError::UnknownEntity("Neymar".into()).to_string(),
            "unknown entity `Neymar`"
        );
    }
}
