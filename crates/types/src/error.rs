//! Error type for vocabulary registration.

use std::fmt;

/// Errors raised while building the type taxonomy or entity catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypesError {
    /// A type name was registered twice.
    DuplicateType(String),
    /// An entity name was registered twice.
    DuplicateEntity(String),
    /// A referenced type name is unknown.
    UnknownType(String),
    /// A referenced entity name is unknown.
    UnknownEntity(String),
    /// A taxonomy edge would create a cycle.
    CyclicTaxonomy(String),
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateType(n) => write!(f, "type `{n}` is already registered"),
            Self::DuplicateEntity(n) => write!(f, "entity `{n}` is already registered"),
            Self::UnknownType(n) => write!(f, "unknown type `{n}`"),
            Self::UnknownEntity(n) => write!(f, "unknown entity `{n}`"),
            Self::CyclicTaxonomy(n) => {
                write!(f, "adding type `{n}` would create a taxonomy cycle")
            }
        }
    }
}

impl std::error::Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TypesError::DuplicateType("Athlete".into()).to_string(),
            "type `Athlete` is already registered"
        );
        assert_eq!(
            TypesError::UnknownEntity("Neymar".into()).to_string(),
            "unknown entity `Neymar`"
        );
    }
}
