//! The entity catalog: entity registration and the `entities(t)` index.
//!
//! Every Wikipedia article is an entity with a unique name and one most
//! specific type. The catalog maintains the *inverse index* from a type to
//! the entities of that type — the paper uses it in Algorithm 2 line 3
//! (`get_entities(t)`) and in the frequency denominator `|entities(t)|`.

use crate::error::TypesError;
use crate::ids::{EntityId, TypeId};
use crate::taxonomy::Taxonomy;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Registry of entities and the per-type inverse index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EntityCatalog {
    names: Vec<String>,
    types: Vec<TypeId>,
    by_name: HashMap<String, EntityId>,
    /// Entities whose *most specific* type is exactly the key.
    by_exact_type: HashMap<TypeId, Vec<EntityId>>,
}

impl EntityCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entity with its most specific type.
    pub fn add(&mut self, name: &str, ty: TypeId) -> Result<EntityId, TypesError> {
        if self.by_name.contains_key(name) {
            return Err(TypesError::DuplicateEntity(name.to_owned()));
        }
        let id = EntityId::from_usize(self.names.len());
        self.names.push(name.to_owned());
        self.types.push(ty);
        self.by_name.insert(name.to_owned(), id);
        self.by_exact_type.entry(ty).or_default().push(id);
        Ok(id)
    }

    /// The entity's display name.
    pub fn name(&self, e: EntityId) -> &str {
        &self.names[e.index()]
    }

    /// The entity's most specific type (`type(e)` in the paper).
    pub fn entity_type(&self, e: EntityId) -> TypeId {
        self.types[e.index()]
    }

    /// Looks up an entity by name.
    pub fn lookup(&self, name: &str) -> Option<EntityId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an entity by name, erroring if absent.
    pub fn require(&self, name: &str) -> Result<EntityId, TypesError> {
        self.lookup(name)
            .ok_or_else(|| TypesError::UnknownEntity(name.to_owned()))
    }

    /// Number of registered entities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no entity is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Entities whose most specific type is exactly `t`.
    pub fn entities_of_exact(&self, t: TypeId) -> &[EntityId] {
        self.by_exact_type.get(&t).map_or(&[], |v| v.as_slice())
    }

    /// `entities(t)`: all entities labeled by a type `t' ≤ t`, gathered by
    /// walking the taxonomy's descendants of `t`.
    pub fn entities_of(&self, taxonomy: &Taxonomy, t: TypeId) -> Vec<EntityId> {
        let mut out = Vec::new();
        for d in taxonomy.descendants(t) {
            out.extend_from_slice(self.entities_of_exact(d));
        }
        out.sort_unstable();
        out
    }

    /// `|entities(t)|` without materializing the vector.
    pub fn count_entities_of(&self, taxonomy: &Taxonomy, t: TypeId) -> usize {
        taxonomy
            .descendants(t)
            .into_iter()
            .map(|d| self.entities_of_exact(d).len())
            .sum()
    }

    /// Whether `e ∈ entities(t)`.
    pub fn entity_has_type(&self, taxonomy: &Taxonomy, e: EntityId, t: TypeId) -> bool {
        taxonomy.is_subtype(self.entity_type(e), t)
    }

    /// Iterates all entity ids.
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.names.len()).map(EntityId::from_usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Taxonomy, EntityCatalog, TypeId, TypeId, TypeId) {
        let mut tax = Taxonomy::new("Thing");
        let person = tax.add("Person", tax.root()).unwrap();
        let athlete = tax.add("Athlete", person).unwrap();
        let player = tax.add("SoccerPlayer", athlete).unwrap();
        let cat = EntityCatalog::new();
        (tax, cat, person, athlete, player)
    }

    #[test]
    fn add_and_lookup() {
        let (_tax, mut cat, _person, _athlete, player) = setup();
        let e = cat.add("Neymar", player).unwrap();
        assert_eq!(cat.name(e), "Neymar");
        assert_eq!(cat.entity_type(e), player);
        assert_eq!(cat.lookup("Neymar"), Some(e));
        assert_eq!(cat.require("Neymar").unwrap(), e);
        assert!(cat.require("Messi").is_err());
    }

    #[test]
    fn duplicate_entity_rejected() {
        let (_tax, mut cat, _person, _athlete, player) = setup();
        cat.add("Neymar", player).unwrap();
        assert!(matches!(
            cat.add("Neymar", player),
            Err(TypesError::DuplicateEntity(_))
        ));
    }

    #[test]
    fn entities_of_includes_descendant_types() {
        let (tax, mut cat, person, athlete, player) = setup();
        let n = cat.add("Neymar", player).unwrap();
        let u = cat.add("Usain Bolt", athlete).unwrap();
        let p = cat.add("Alan Turing", person).unwrap();

        assert_eq!(cat.entities_of(&tax, player), vec![n]);
        let mut of_athlete = cat.entities_of(&tax, athlete);
        of_athlete.sort();
        assert_eq!(of_athlete, vec![n, u]);
        assert_eq!(cat.entities_of(&tax, person).len(), 3);
        assert_eq!(cat.count_entities_of(&tax, person), 3);
        assert_eq!(cat.count_entities_of(&tax, player), 1);

        assert!(cat.entity_has_type(&tax, n, person));
        assert!(!cat.entity_has_type(&tax, p, athlete));
    }

    #[test]
    fn exact_type_index_does_not_cross_levels() {
        let (_tax, mut cat, _person, athlete, player) = setup();
        cat.add("Neymar", player).unwrap();
        assert!(cat.entities_of_exact(athlete).is_empty());
        assert_eq!(cat.entities_of_exact(player).len(), 1);
    }

    #[test]
    fn iter_covers_all() {
        let (_tax, mut cat, person, ..) = setup();
        cat.add("A", person).unwrap();
        cat.add("B", person).unwrap();
        assert_eq!(cat.iter().count(), 2);
        assert_eq!(cat.len(), 2);
        assert!(!cat.is_empty());
    }
}
