//! Page-local string symbols for the interned extraction pipeline.
//!
//! Parsing a revision history touches the same relation labels and target
//! titles over and over: a 500-revision page mentions a handful of distinct
//! strings tens of thousands of times. [`SymTable`] interns every label and
//! title once per extraction into a dense [`Sym`], so diffing snapshots is
//! integer-set difference and the downstream diff/reduce stages never hash
//! or compare string bytes again.
//!
//! A `Sym` is only meaningful relative to the table that produced it —
//! tables are page-local (one per extracted entity), not global, so there
//! is deliberately no `Default`-shared registry to mix indices across.

use crate::error::WicleanError;
use crate::intern::Interner;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense `u32` symbol standing for an interned string.
///
/// Ordering and equality are by index — *insertion order*, not
/// lexicographic order. Callers that need the string order of the
/// un-interned pipeline (the diff layer's deterministic edit order) must
/// sort by the resolved strings, not by `Sym`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sym(u32);

impl Sym {
    /// Builds a symbol from a raw index (test/serde use; a mismatched table
    /// will panic on resolve).
    pub fn from_u32(ix: u32) -> Self {
        Self(ix)
    }

    /// The raw dense index.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The index as a `usize`, for dense side tables.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An append-only symbol table: strings in, [`Sym`]s out.
///
/// A thin page-local wrapper over [`Interner`] whose indices are wrapped in
/// the `Sym` newtype so they cannot be confused with entity/relation/type
/// ids or with another table's symbols.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct SymTable {
    inner: Interner,
}

impl SymTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table holding at most `limit` distinct strings.
    pub fn with_limit(limit: u32) -> Self {
        Self {
            inner: Interner::with_limit(limit),
        }
    }

    /// Interns `s`, returning its symbol. Re-interning returns the original
    /// symbol without allocating.
    ///
    /// # Panics
    /// Panics when the table's id space is exhausted; resident callers use
    /// [`SymTable::try_intern`].
    pub fn intern(&mut self, s: &str) -> Sym {
        Sym(self.inner.intern(s))
    }

    /// Fallible intern: reports an exhausted id space as
    /// [`WicleanError::InternerFull`] instead of panicking.
    pub fn try_intern(&mut self, s: &str) -> Result<Sym, WicleanError> {
        self.inner.try_intern(s).map(Sym)
    }

    /// Looks up a previously interned string.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.inner.get(s).map(Sym)
    }

    /// Resolves a symbol back to its string. Panics on a symbol from
    /// another table (out-of-range index).
    pub fn resolve(&self, sym: Sym) -> &str {
        self.inner.resolve(sym.0)
    }

    /// Resolves a symbol if it is in range.
    pub fn try_resolve(&self, sym: Sym) -> Option<&str> {
        self.inner.try_resolve(sym.0)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trip() {
        let mut t = SymTable::new();
        let a = t.intern("current_club");
        let b = t.intern("current_club");
        assert_eq!(a, b);
        assert_eq!(t.resolve(a), "current_club");
        assert_eq!(t.get("current_club"), Some(a));
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn syms_are_dense_and_insertion_ordered() {
        let mut t = SymTable::new();
        assert_eq!(t.intern("b").as_u32(), 0);
        assert_eq!(t.intern("a").as_u32(), 1);
        // Insertion order, not lexicographic: "b" < "a" as symbols.
        assert!(t.get("b").unwrap() < t.get("a").unwrap());
    }

    #[test]
    fn try_resolve_is_total() {
        let t = SymTable::new();
        assert_eq!(t.try_resolve(Sym::from_u32(7)), None);
    }

    #[test]
    fn debug_is_compact() {
        assert_eq!(format!("{:?}", Sym::from_u32(3)), "s3");
    }

    #[test]
    fn try_intern_respects_limit() {
        let mut t = SymTable::with_limit(1);
        let a = t.try_intern("a").unwrap();
        assert_eq!(t.try_intern("a"), Ok(a));
        assert_eq!(
            t.try_intern("b"),
            Err(WicleanError::InternerFull { limit: 1 })
        );
        assert_eq!(t.resolve(a), "a");
    }

    #[test]
    fn serde_round_trip() {
        let mut t = SymTable::new();
        let x = t.intern("x");
        let json = serde_json::to_string(&t).unwrap();
        let back: SymTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.resolve(x), "x");
    }
}
