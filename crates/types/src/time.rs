//! Timestamps and time windows over the simulated revision timeline.
//!
//! The paper splits the Wikipedia revision timeline into non-overlapping
//! windows (§4.3) and mines each window independently. We model time as
//! seconds since an epoch at the start of the observed year ("2018-01-01"
//! in the experiments); calendar helpers below are deliberately simple —
//! months are modeled with their true 2018 lengths so that "the month of
//! August" from the paper's experiments is expressible.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds since the start of the observed timeline.
pub type Timestamp = u64;

/// One minute in seconds.
pub const MINUTE: u64 = 60;
/// One hour in seconds.
pub const HOUR: u64 = 60 * MINUTE;
/// One day in seconds.
pub const DAY: u64 = 24 * HOUR;
/// One week in seconds.
pub const WEEK: u64 = 7 * DAY;
/// One (non-leap) year in seconds.
pub const YEAR: u64 = 365 * DAY;

/// Day lengths of the months of a non-leap year (2018).
const MONTH_DAYS: [u64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Returns the timestamp of the first second of the 1-based `month` of the
/// first simulated year.
///
/// # Panics
/// Panics if `month` is not in `1..=12`.
pub fn month_start(month: u32) -> Timestamp {
    assert!((1..=12).contains(&month), "month must be 1..=12");
    MONTH_DAYS[..(month as usize - 1)].iter().sum::<u64>() * DAY
}

/// Returns the half-open window covering the 1-based `month` of the first
/// simulated year.
pub fn month_window(month: u32) -> Window {
    let start = month_start(month);
    let days = MONTH_DAYS[month as usize - 1];
    Window::new(start, start + days * DAY)
}

/// A half-open time window `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Window {
    /// Inclusive start of the window.
    pub start: Timestamp,
    /// Exclusive end of the window.
    pub end: Timestamp,
}

impl Window {
    /// Creates a window; `start` must not exceed `end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "window start after end");
        Self { start, end }
    }

    /// Window length in seconds.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the window covers zero seconds.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `t` falls within the window.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether two windows share any instant.
    pub fn overlaps(&self, other: &Window) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The smallest window covering both inputs (used when merging the rare
    /// overlapping meaningful windows, §4.3).
    pub fn merge(&self, other: &Window) -> Window {
        Window::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Splits the half-open span `[start, end)` into consecutive windows of
    /// `width` seconds; the final window is truncated at `end`.
    ///
    /// This is the timeline split of Algorithm 2 line 7.
    pub fn split_span(start: Timestamp, end: Timestamp, width: u64) -> Vec<Window> {
        assert!(width > 0, "window width must be positive");
        let mut out = Vec::new();
        let mut cur = start;
        while cur < end {
            let next = (cur + width).min(end);
            out.push(Window::new(cur, next));
            cur = next;
        }
        out
    }
}

impl fmt::Debug for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_day = |t: Timestamp| format!("d{}", t / DAY);
        write!(f, "[{}, {})", fmt_day(self.start), fmt_day(self.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_starts_accumulate() {
        assert_eq!(month_start(1), 0);
        assert_eq!(month_start(2), 31 * DAY);
        assert_eq!(month_start(3), (31 + 28) * DAY);
        // August starts after Jan..Jul = 31+28+31+30+31+30+31 = 212 days.
        assert_eq!(month_start(8), 212 * DAY);
    }

    #[test]
    fn august_window_is_31_days() {
        let w = month_window(8);
        assert_eq!(w.len(), 31 * DAY);
        assert!(w.contains(month_start(8)));
        assert!(!w.contains(month_start(9)));
    }

    #[test]
    #[should_panic(expected = "month")]
    fn month_zero_panics() {
        month_start(0);
    }

    #[test]
    fn contains_is_half_open() {
        let w = Window::new(10, 20);
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(!w.contains(9));
    }

    #[test]
    fn overlap_detection() {
        let a = Window::new(0, 10);
        let b = Window::new(10, 20);
        let c = Window::new(5, 15);
        assert!(!a.overlaps(&b), "adjacent half-open windows do not overlap");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn merge_covers_both() {
        let a = Window::new(0, 10);
        let b = Window::new(25, 30);
        let m = a.merge(&b);
        assert_eq!(m, Window::new(0, 30));
    }

    #[test]
    fn split_span_covers_and_truncates() {
        let ws = Window::split_span(0, 10 * WEEK + DAY, 2 * WEEK);
        assert_eq!(ws.len(), 6);
        assert_eq!(ws[0], Window::new(0, 2 * WEEK));
        assert_eq!(ws[5], Window::new(10 * WEEK, 10 * WEEK + DAY));
        // Consecutive and non-overlapping.
        for pair in ws.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
            assert!(!pair[0].overlaps(&pair[1]));
        }
    }

    #[test]
    fn split_span_empty_range() {
        assert!(Window::split_span(5, 5, WEEK).is_empty());
    }

    #[test]
    fn display_uses_days() {
        let w = Window::new(0, 2 * WEEK);
        assert_eq!(w.to_string(), "[d0, d14)");
    }
}
