//! Core identifier and vocabulary types for WiClean.
//!
//! This crate provides the foundational vocabulary shared by every other
//! WiClean crate:
//!
//! * cheap copyable identifiers for entities, entity types and relations
//!   ([`EntityId`], [`TypeId`], [`RelId`]),
//! * a string [`intern::Interner`] so that identifiers map back to names,
//! * page-local [`sym::SymTable`] symbols backing the interned extraction
//!   pipeline (link labels and titles as dense `u32`s),
//! * the DBpedia-style type [`taxonomy::Taxonomy`] with subtype tests and
//!   ancestor enumeration (the paper reports "typically around eight
//!   hierarchy levels"),
//! * an [`catalog::EntityCatalog`] with the inverse index from a type to
//!   `entities(t)` — all entities whose most specific type is `t` or a
//!   descendant of `t` — which the frequency definition (Def. 3.2 in the
//!   paper) divides by,
//! * a [`Universe`] bundling all of the above, and
//! * timestamps ([`Timestamp`]) and calendar helpers for the simulated
//!   revision timeline.

pub mod catalog;
pub mod error;
pub mod ids;
pub mod intern;
pub mod sym;
pub mod taxonomy;
pub mod time;
pub mod universe;

pub use catalog::EntityCatalog;
pub use error::{TypesError, WicleanError};
pub use ids::{EntityId, RelId, TypeId};
pub use intern::{Interner, KeyInterner};
pub use sym::{Sym, SymTable};
pub use taxonomy::Taxonomy;
pub use time::{Timestamp, Window, DAY, HOUR, MINUTE, WEEK, YEAR};
pub use universe::Universe;
