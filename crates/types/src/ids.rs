//! Copyable, densely allocated identifiers.
//!
//! All three identifier kinds are thin wrappers over `u32` indices into the
//! owning registry ([`crate::Taxonomy`], [`crate::EntityCatalog`], or a
//! relation [`crate::Interner`]). Keeping them distinct newtypes prevents
//! accidentally joining an entity column against a type column — a bug class
//! the relational layer would otherwise happily admit.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index. Indices are allocated densely from zero by
            /// the owning registry.
            #[inline]
            pub const fn from_u32(raw: u32) -> Self {
                Self(raw)
            }

            /// Wraps a `usize` index, panicking if it does not fit in `u32`.
            #[inline]
            pub fn from_usize(raw: usize) -> Self {
                Self(u32::try_from(raw).expect("id index overflows u32"))
            }

            /// The raw index.
            #[inline]
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// The raw index as a `usize`, for direct vector indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a Wikipedia entity (an article / graph node).
    EntityId,
    "e"
);
id_type!(
    /// Identifier of an entity type in the taxonomy (e.g. `SoccerPlayer`).
    TypeId,
    "t"
);
id_type!(
    /// Identifier of a relation label (e.g. `current_club`).
    RelId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let e = EntityId::from_u32(7);
        assert_eq!(e.as_u32(), 7);
        assert_eq!(e.index(), 7);
    }

    #[test]
    fn roundtrip_usize() {
        let t = TypeId::from_usize(12);
        assert_eq!(t.index(), 12);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn from_usize_overflow_panics() {
        let _ = RelId::from_usize(u32::MAX as usize + 1);
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(EntityId::from_u32(1) < EntityId::from_u32(2));
    }

    #[test]
    fn debug_and_display_are_prefixed() {
        assert_eq!(format!("{:?}", EntityId::from_u32(3)), "e3");
        assert_eq!(format!("{}", TypeId::from_u32(4)), "t4");
        assert_eq!(format!("{}", RelId::from_u32(5)), "r5");
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&EntityId::from_u32(9)).unwrap();
        assert_eq!(json, "9");
        let back: EntityId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, EntityId::from_u32(9));
    }
}
