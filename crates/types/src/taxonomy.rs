//! The entity-type taxonomy.
//!
//! Wikipedia types (derived in the paper through a DBpedia alignment) form a
//! tree-shaped taxonomy, e.g. `SoccerPlayer ≤ Athlete ≤ Person ≤ Agent ≤
//! Thing`. We write `t' ≤ t` when `t` equals or generalizes `t'`. Each
//! entity carries one *most specific* type; `entities(t)` then denotes all
//! entities labeled by some `t' ≤ t`.
//!
//! The taxonomy is used pervasively:
//! * enumerating the *abstractions* of a concrete action walks the ancestors
//!   of the source/target types (paper §3),
//! * the pattern specificity order `≺` generalizes variables upward, and
//! * the frequency denominator counts `entities(t)`.

use crate::error::TypesError;
use crate::ids::TypeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A rooted tree of entity types with O(depth) subtype tests.
///
/// The root type (`Thing` by convention) is created by [`Taxonomy::new`].
/// Types are added under an existing parent with [`Taxonomy::add`].
///
/// ```
/// use wiclean_types::Taxonomy;
///
/// let mut tax = Taxonomy::new("Thing");
/// let person = tax.add("Person", tax.root()).unwrap();
/// let player = tax.add_path(person, &["Athlete", "SoccerPlayer"]).unwrap();
/// assert!(tax.is_subtype(player, person)); // SoccerPlayer ≤ Person
/// assert_eq!(tax.ancestors(player).count(), 4); // up to Thing
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Taxonomy {
    names: Vec<String>,
    parents: Vec<Option<TypeId>>,
    depths: Vec<u32>,
    children: Vec<Vec<TypeId>>,
    by_name: HashMap<String, TypeId>,
}

impl Taxonomy {
    /// Creates a taxonomy containing only the given root type.
    pub fn new(root_name: &str) -> Self {
        let mut t = Self {
            names: Vec::new(),
            parents: Vec::new(),
            depths: Vec::new(),
            children: Vec::new(),
            by_name: HashMap::new(),
        };
        t.push(root_name.to_owned(), None, 0);
        t
    }

    fn push(&mut self, name: String, parent: Option<TypeId>, depth: u32) -> TypeId {
        let id = TypeId::from_usize(self.names.len());
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.parents.push(parent);
        self.depths.push(depth);
        self.children.push(Vec::new());
        if let Some(p) = parent {
            self.children[p.index()].push(id);
        }
        id
    }

    /// The root type.
    pub fn root(&self) -> TypeId {
        TypeId::from_u32(0)
    }

    /// Registers a new type under `parent`.
    pub fn add(&mut self, name: &str, parent: TypeId) -> Result<TypeId, TypesError> {
        if self.by_name.contains_key(name) {
            return Err(TypesError::DuplicateType(name.to_owned()));
        }
        if parent.index() >= self.names.len() {
            return Err(TypesError::UnknownType(format!("{parent:?}")));
        }
        let depth = self.depths[parent.index()] + 1;
        Ok(self.push(name.to_owned(), Some(parent), depth))
    }

    /// Registers a whole chain `names[0] / names[1] / ...` under `parent`,
    /// reusing segments that already exist. Returns the id of the last
    /// segment.
    pub fn add_path(&mut self, parent: TypeId, names: &[&str]) -> Result<TypeId, TypesError> {
        let mut cur = parent;
        for name in names {
            cur = match self.by_name.get(*name) {
                Some(&existing) => {
                    if !self.is_subtype(existing, cur) {
                        return Err(TypesError::CyclicTaxonomy((*name).to_owned()));
                    }
                    existing
                }
                None => self.add(name, cur)?,
            };
        }
        Ok(cur)
    }

    /// Looks a type up by name.
    pub fn lookup(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Looks a type up by name, erroring if absent.
    pub fn require(&self, name: &str) -> Result<TypeId, TypesError> {
        self.lookup(name)
            .ok_or_else(|| TypesError::UnknownType(name.to_owned()))
    }

    /// The name of a type.
    pub fn name(&self, t: TypeId) -> &str {
        &self.names[t.index()]
    }

    /// The parent of a type (`None` for the root).
    pub fn parent(&self, t: TypeId) -> Option<TypeId> {
        self.parents[t.index()]
    }

    /// Depth of a type; the root has depth 0.
    pub fn depth(&self, t: TypeId) -> u32 {
        self.depths[t.index()]
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Direct children of a type.
    pub fn children(&self, t: TypeId) -> &[TypeId] {
        &self.children[t.index()]
    }

    /// Tests `sub ≤ sup`: whether `sup` equals or generalizes `sub`.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        if self.depths[sub.index()] < self.depths[sup.index()] {
            return false;
        }
        let mut cur = sub;
        loop {
            if cur == sup {
                return true;
            }
            match self.parents[cur.index()] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Iterates `t` and all its ancestors up to the root, most specific
    /// first. This is the abstraction ladder for a concrete action endpoint.
    pub fn ancestors(&self, t: TypeId) -> Ancestors<'_> {
        Ancestors {
            taxonomy: self,
            next: Some(t),
        }
    }

    /// Iterates `t` and all its descendants in preorder.
    pub fn descendants(&self, t: TypeId) -> Vec<TypeId> {
        let mut out = Vec::new();
        let mut stack = vec![t];
        while let Some(cur) = stack.pop() {
            out.push(cur);
            stack.extend(self.children[cur.index()].iter().copied());
        }
        out
    }

    /// Least common ancestor of two types.
    pub fn lca(&self, a: TypeId, b: TypeId) -> TypeId {
        let (mut a, mut b) = (a, b);
        while self.depths[a.index()] > self.depths[b.index()] {
            a = self.parents[a.index()].expect("non-root type has parent");
        }
        while self.depths[b.index()] > self.depths[a.index()] {
            b = self.parents[b.index()].expect("non-root type has parent");
        }
        while a != b {
            a = self.parents[a.index()].expect("root reached before lca");
            b = self.parents[b.index()].expect("root reached before lca");
        }
        a
    }

    /// Iterates all type ids.
    pub fn iter(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.names.len()).map(TypeId::from_usize)
    }
}

/// Iterator over a type and its ancestors (see [`Taxonomy::ancestors`]).
pub struct Ancestors<'a> {
    taxonomy: &'a Taxonomy,
    next: Option<TypeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = TypeId;

    fn next(&mut self) -> Option<TypeId> {
        let cur = self.next?;
        self.next = self.taxonomy.parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Taxonomy, TypeId, TypeId, TypeId, TypeId) {
        let mut tax = Taxonomy::new("Thing");
        let root = tax.root();
        let person = tax.add("Person", root).unwrap();
        let athlete = tax.add("Athlete", person).unwrap();
        let player = tax.add("SoccerPlayer", athlete).unwrap();
        (tax, root, person, athlete, player)
    }

    #[test]
    fn depths_and_parents() {
        let (tax, root, person, athlete, player) = sample();
        assert_eq!(tax.depth(root), 0);
        assert_eq!(tax.depth(player), 3);
        assert_eq!(tax.parent(player), Some(athlete));
        assert_eq!(tax.parent(person), Some(root));
        assert_eq!(tax.parent(root), None);
    }

    #[test]
    fn subtype_is_reflexive_and_transitive() {
        let (tax, root, person, _athlete, player) = sample();
        assert!(tax.is_subtype(player, player));
        assert!(tax.is_subtype(player, person));
        assert!(tax.is_subtype(player, root));
        assert!(!tax.is_subtype(person, player));
    }

    #[test]
    fn unrelated_branches_are_not_subtypes() {
        let (mut tax, root, _person, _athlete, player) = sample();
        let org = tax.add("Organisation", root).unwrap();
        let club = tax.add("SoccerClub", org).unwrap();
        assert!(!tax.is_subtype(player, club));
        assert!(!tax.is_subtype(club, player));
        assert_eq!(tax.lca(player, club), root);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let (tax, root, person, athlete, player) = sample();
        let chain: Vec<_> = tax.ancestors(player).collect();
        assert_eq!(chain, vec![player, athlete, person, root]);
    }

    #[test]
    fn descendants_include_self_and_all_below() {
        let (tax, _root, person, athlete, player) = sample();
        let mut d = tax.descendants(person);
        d.sort();
        let mut expected = vec![person, athlete, player];
        expected.sort();
        assert_eq!(d, expected);
    }

    #[test]
    fn duplicate_type_rejected() {
        let (mut tax, root, ..) = sample();
        assert!(matches!(
            tax.add("Person", root),
            Err(TypesError::DuplicateType(_))
        ));
    }

    #[test]
    fn add_path_reuses_existing_segments() {
        let (mut tax, root, person, athlete, player) = sample();
        let again = tax
            .add_path(root, &["Person", "Athlete", "SoccerPlayer"])
            .unwrap();
        assert_eq!(again, player);
        let gk = tax.add_path(person, &["Athlete", "Goalkeeper"]).unwrap();
        assert_eq!(tax.parent(gk), Some(athlete));
    }

    #[test]
    fn add_path_detects_inconsistent_reuse() {
        let (mut tax, root, ..) = sample();
        let org = tax.add("Organisation", root).unwrap();
        // "Person" exists but is not under Organisation.
        assert!(matches!(
            tax.add_path(org, &["Person"]),
            Err(TypesError::CyclicTaxonomy(_))
        ));
    }

    #[test]
    fn lca_of_ancestor_is_ancestor() {
        let (tax, _root, person, _athlete, player) = sample();
        assert_eq!(tax.lca(player, person), person);
        assert_eq!(tax.lca(person, player), person);
    }

    #[test]
    fn lookup_and_require() {
        let (tax, ..) = sample();
        assert!(tax.lookup("Athlete").is_some());
        assert!(tax.require("Nope").is_err());
    }

    #[test]
    fn eight_level_hierarchy_supported() {
        // The paper notes the Wikipedia taxonomy typically has ~8 levels.
        let mut tax = Taxonomy::new("L0");
        let mut cur = tax.root();
        for i in 1..=8 {
            cur = tax.add(&format!("L{i}"), cur).unwrap();
        }
        assert_eq!(tax.depth(cur), 8);
        assert_eq!(tax.ancestors(cur).count(), 9);
    }
}
