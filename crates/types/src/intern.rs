//! Append-only interners.
//!
//! WiClean deals with bounded vocabularies (entity names, type names,
//! relation labels — and, in the miner, canonical patterns) that are
//! referenced from millions of revision actions. Interning turns every
//! occurrence into a 4-byte index and makes equality comparisons O(1).
//!
//! [`KeyInterner`] is the generic substrate: any `Clone + Eq + Hash` key type
//! gets dense `u32` ids, stable for the interner's lifetime and allocated in
//! insertion order. [`Interner`] is the string specialization used by
//! [`crate::Universe`]; `wiclean-core`'s `PatternInterner` builds on the
//! same substrate for canonical patterns.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// Append-only interner mapping keys of type `K` to dense `u32` indices.
///
/// The interner never forgets a key; indices are stable for the lifetime of
/// the interner and allocated in insertion order starting from zero.
#[derive(Debug, Clone)]
pub struct KeyInterner<K> {
    keys: Vec<K>,
    index: HashMap<K, u32>,
}

impl<K> Default for KeyInterner<K> {
    fn default() -> Self {
        Self {
            keys: Vec::new(),
            index: HashMap::new(),
        }
    }
}

impl<K: Clone + Eq + Hash> KeyInterner<K> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds an interner from its key list (insertion order preserved).
    pub fn from_keys(keys: Vec<K>) -> Self {
        let index = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        Self { keys, index }
    }

    /// Interns a key, returning its dense index. Re-interning an existing
    /// key returns the original index. `make` builds the owned key only on
    /// a miss, so the hot path (already interned) never allocates.
    pub fn intern_with<Q>(&mut self, key: &Q, make: impl FnOnce(&Q) -> K) -> u32
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if let Some(&ix) = self.index.get(key) {
            return ix;
        }
        let ix = u32::try_from(self.keys.len()).expect("interner overflow");
        let owned = make(key);
        self.keys.push(owned.clone());
        self.index.insert(owned, ix);
        ix
    }

    /// Interns an owned key directly.
    pub fn intern(&mut self, key: K) -> u32 {
        if let Some(&ix) = self.index.get(&key) {
            return ix;
        }
        let ix = u32::try_from(self.keys.len()).expect("interner overflow");
        self.keys.push(key.clone());
        self.index.insert(key, ix);
        ix
    }

    /// Looks up the index of a previously interned key.
    pub fn get<Q>(&self, key: &Q) -> Option<u32>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.index.get(key).copied()
    }

    /// Resolves an index back to its key. Panics on an out-of-range index,
    /// which always indicates a cross-interner mixup.
    pub fn resolve(&self, ix: u32) -> &K {
        &self.keys[ix as usize]
    }

    /// Resolves an index if it is in range.
    pub fn try_resolve(&self, ix: u32) -> Option<&K> {
        self.keys.get(ix as usize)
    }

    /// Number of distinct interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The interned keys in insertion order.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Iterates over `(index, key)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &K)> {
        self.keys.iter().enumerate().map(|(i, k)| (i as u32, k))
    }
}

/// Append-only string interner mapping strings to dense `u32` indices.
///
/// A thin specialization of [`KeyInterner`] over `Box<str>` that accepts
/// `&str` on the intern path. Serializes as the plain string list; the
/// reverse index is rebuilt on deserialization.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    inner: KeyInterner<Box<str>>,
}

impl Serialize for Interner {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.inner.keys().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Interner {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let strings: Vec<Box<str>> = Vec::deserialize(deserializer)?;
        Ok(Self {
            inner: KeyInterner::from_keys(strings),
        })
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its dense index. Re-interning an existing
    /// string returns the original index.
    pub fn intern(&mut self, s: &str) -> u32 {
        self.inner.intern_with(s, |s| s.into())
    }

    /// Looks up the index of a previously interned string.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.inner.get(s)
    }

    /// Resolves an index back to its string. Panics on an out-of-range
    /// index, which always indicates a cross-interner mixup.
    pub fn resolve(&self, ix: u32) -> &str {
        self.inner.resolve(ix)
    }

    /// Resolves an index if it is in range.
    pub fn try_resolve(&self, ix: u32) -> Option<&str> {
        self.inner.try_resolve(ix).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates over `(index, string)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.inner.iter().map(|(i, s)| (i, &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Neymar");
        let b = i.intern("Neymar");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("c"), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let ix = i.intern("current_club");
        assert_eq!(i.resolve(ix), "current_club");
        assert_eq!(i.get("current_club"), Some(ix));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn try_resolve_out_of_range() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(0), None);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let all: Vec<_> = i.iter().collect();
        assert_eq!(all, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let mut i = Interner::new();
        i.intern("alpha");
        i.intern("beta");
        let json = serde_json::to_string(&i).unwrap();
        assert_eq!(json, r#"["alpha","beta"]"#);
        let back: Interner = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("beta"), Some(1));
        assert_eq!(back.resolve(0), "alpha");
    }

    #[test]
    fn empty_checks() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        i.intern("z");
        assert!(!i.is_empty());
    }

    #[test]
    fn generic_interner_over_tuples() {
        let mut i: KeyInterner<(u32, u32)> = KeyInterner::new();
        assert_eq!(i.intern((1, 2)), 0);
        assert_eq!(i.intern((3, 4)), 1);
        assert_eq!(i.intern((1, 2)), 0);
        assert_eq!(i.resolve(1), &(3, 4));
        assert_eq!(i.get(&(3, 4)), Some(1));
        assert_eq!(i.keys(), &[(1, 2), (3, 4)]);
    }

    #[test]
    fn from_keys_rebuilds_index() {
        let i = KeyInterner::from_keys(vec!["a".to_string(), "b".to_string()]);
        assert_eq!(i.get("b"), Some(1));
        assert_eq!(i.len(), 2);
    }
}
