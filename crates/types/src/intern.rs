//! A simple append-only string interner.
//!
//! WiClean deals with a bounded vocabulary (entity names, type names,
//! relation labels) that is referenced from millions of revision actions.
//! Interning turns every occurrence into a 4-byte index and makes equality
//! comparisons O(1).

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::HashMap;

/// Append-only string interner mapping strings to dense `u32` indices.
///
/// The interner never forgets a string; indices are stable for the lifetime
/// of the interner and allocated in insertion order starting from zero.
/// Serializes as the plain string list; the reverse index is rebuilt on
/// deserialization.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl Serialize for Interner {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.strings.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Interner {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let strings: Vec<Box<str>> = Vec::deserialize(deserializer)?;
        let index = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        Ok(Self { strings, index })
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its dense index. Re-interning an existing
    /// string returns the original index.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&ix) = self.index.get(s) {
            return ix;
        }
        let ix = u32::try_from(self.strings.len()).expect("interner overflow");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, ix);
        ix
    }

    /// Looks up the index of a previously interned string.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Resolves an index back to its string. Panics on an out-of-range
    /// index, which always indicates a cross-interner mixup.
    pub fn resolve(&self, ix: u32) -> &str {
        &self.strings[ix as usize]
    }

    /// Resolves an index if it is in range.
    pub fn try_resolve(&self, ix: u32) -> Option<&str> {
        self.strings.get(ix as usize).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(index, string)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Neymar");
        let b = i.intern("Neymar");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("c"), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let ix = i.intern("current_club");
        assert_eq!(i.resolve(ix), "current_club");
        assert_eq!(i.get("current_club"), Some(ix));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn try_resolve_out_of_range() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(0), None);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let all: Vec<_> = i.iter().collect();
        assert_eq!(all, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let mut i = Interner::new();
        i.intern("alpha");
        i.intern("beta");
        let json = serde_json::to_string(&i).unwrap();
        assert_eq!(json, r#"["alpha","beta"]"#);
        let back: Interner = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("beta"), Some(1));
        assert_eq!(back.resolve(0), "alpha");
    }

    #[test]
    fn empty_checks() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        i.intern("z");
        assert!(!i.is_empty());
    }
}
