//! Append-only interners.
//!
//! WiClean deals with bounded vocabularies (entity names, type names,
//! relation labels — and, in the miner, canonical patterns) that are
//! referenced from millions of revision actions. Interning turns every
//! occurrence into a 4-byte index and makes equality comparisons O(1).
//!
//! [`KeyInterner`] is the generic substrate: any `Clone + Eq + Hash` key type
//! gets dense `u32` ids, stable for the interner's lifetime and allocated in
//! insertion order. [`Interner`] is the string specialization used by
//! [`crate::Universe`]; `wiclean-core`'s `PatternInterner` builds on the
//! same substrate for canonical patterns.

use crate::error::WicleanError;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// Append-only interner mapping keys of type `K` to dense `u32` indices.
///
/// The interner never forgets a key; indices are stable for the lifetime of
/// the interner and allocated in insertion order starting from zero.
///
/// Every interner has a capacity `limit` (the full `u32` id space by
/// default): indices are always in `0..limit`. The fallible
/// [`KeyInterner::try_intern`]/[`KeyInterner::try_intern_with`] path
/// reports an exhausted id space as [`WicleanError::InternerFull`]; the
/// infallible [`KeyInterner::intern`]/[`KeyInterner::intern_with`] path
/// panics instead, under the documented invariant that batch callers never
/// approach 2³² distinct symbols (and choose their own limits otherwise).
/// Long-running components — the suggestion server — must use the `try_*`
/// path so an oversized vocabulary is a rejected request, not an abort.
#[derive(Debug, Clone)]
pub struct KeyInterner<K> {
    keys: Vec<K>,
    index: HashMap<K, u32>,
    limit: u32,
}

impl<K> Default for KeyInterner<K> {
    fn default() -> Self {
        Self {
            keys: Vec::new(),
            index: HashMap::new(),
            limit: u32::MAX,
        }
    }
}

impl<K: Clone + Eq + Hash> KeyInterner<K> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner that holds at most `limit` distinct keys.
    pub fn with_limit(limit: u32) -> Self {
        Self {
            limit,
            ..Self::default()
        }
    }

    /// Rebuilds an interner from its key list (insertion order preserved).
    pub fn from_keys(keys: Vec<K>) -> Self {
        let index = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        Self {
            keys,
            index,
            limit: u32::MAX,
        }
    }

    /// The capacity limit (distinct keys this interner will hold).
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// The next index to be allocated, or `InternerFull` when the id space
    /// is exhausted.
    fn next_index(&self) -> Result<u32, WicleanError> {
        match u32::try_from(self.keys.len()) {
            Ok(ix) if ix < self.limit => Ok(ix),
            _ => Err(WicleanError::InternerFull { limit: self.limit }),
        }
    }

    /// Fallible intern: like [`KeyInterner::intern_with`], but reports an
    /// exhausted id space instead of panicking.
    pub fn try_intern_with<Q>(
        &mut self,
        key: &Q,
        make: impl FnOnce(&Q) -> K,
    ) -> Result<u32, WicleanError>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if let Some(&ix) = self.index.get(key) {
            return Ok(ix);
        }
        let ix = self.next_index()?;
        let owned = make(key);
        self.keys.push(owned.clone());
        self.index.insert(owned, ix);
        Ok(ix)
    }

    /// Fallible intern of an owned key.
    pub fn try_intern(&mut self, key: K) -> Result<u32, WicleanError> {
        if let Some(&ix) = self.index.get(&key) {
            return Ok(ix);
        }
        let ix = self.next_index()?;
        self.keys.push(key.clone());
        self.index.insert(key, ix);
        Ok(ix)
    }

    /// Interns a key, returning its dense index. Re-interning an existing
    /// key returns the original index. `make` builds the owned key only on
    /// a miss, so the hot path (already interned) never allocates.
    ///
    /// # Panics
    /// Panics when the interner's id space is exhausted — batch callers
    /// rely on the invariant that their vocabularies stay far below the
    /// limit; resident callers use [`KeyInterner::try_intern_with`].
    pub fn intern_with<Q>(&mut self, key: &Q, make: impl FnOnce(&Q) -> K) -> u32
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.try_intern_with(key, make).expect("interner overflow")
    }

    /// Interns an owned key directly.
    ///
    /// # Panics
    /// Panics when the interner's id space is exhausted (see
    /// [`KeyInterner::intern_with`]); resident callers use
    /// [`KeyInterner::try_intern`].
    pub fn intern(&mut self, key: K) -> u32 {
        self.try_intern(key).expect("interner overflow")
    }

    /// Looks up the index of a previously interned key.
    pub fn get<Q>(&self, key: &Q) -> Option<u32>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.index.get(key).copied()
    }

    /// Resolves an index back to its key. Panics on an out-of-range index,
    /// which always indicates a cross-interner mixup.
    pub fn resolve(&self, ix: u32) -> &K {
        &self.keys[ix as usize]
    }

    /// Resolves an index if it is in range.
    pub fn try_resolve(&self, ix: u32) -> Option<&K> {
        self.keys.get(ix as usize)
    }

    /// Number of distinct interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The interned keys in insertion order.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Iterates over `(index, key)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &K)> {
        self.keys.iter().enumerate().map(|(i, k)| (i as u32, k))
    }
}

/// Append-only string interner mapping strings to dense `u32` indices.
///
/// A thin specialization of [`KeyInterner`] over `Box<str>` that accepts
/// `&str` on the intern path. Serializes as the plain string list; the
/// reverse index is rebuilt on deserialization.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    inner: KeyInterner<Box<str>>,
}

impl Serialize for Interner {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.inner.keys().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Interner {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let strings: Vec<Box<str>> = Vec::deserialize(deserializer)?;
        Ok(Self {
            inner: KeyInterner::from_keys(strings),
        })
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner holding at most `limit` distinct strings.
    pub fn with_limit(limit: u32) -> Self {
        Self {
            inner: KeyInterner::with_limit(limit),
        }
    }

    /// Interns `s`, returning its dense index. Re-interning an existing
    /// string returns the original index.
    ///
    /// # Panics
    /// Panics when the id space is exhausted; resident callers use
    /// [`Interner::try_intern`].
    pub fn intern(&mut self, s: &str) -> u32 {
        self.inner.intern_with(s, |s| s.into())
    }

    /// Fallible intern: reports an exhausted id space as
    /// [`WicleanError::InternerFull`] instead of panicking.
    pub fn try_intern(&mut self, s: &str) -> Result<u32, WicleanError> {
        self.inner.try_intern_with(s, |s| s.into())
    }

    /// Looks up the index of a previously interned string.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.inner.get(s)
    }

    /// Resolves an index back to its string. Panics on an out-of-range
    /// index, which always indicates a cross-interner mixup.
    pub fn resolve(&self, ix: u32) -> &str {
        self.inner.resolve(ix)
    }

    /// Resolves an index if it is in range.
    pub fn try_resolve(&self, ix: u32) -> Option<&str> {
        self.inner.try_resolve(ix).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates over `(index, string)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.inner.iter().map(|(i, s)| (i, &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Neymar");
        let b = i.intern("Neymar");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("c"), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let ix = i.intern("current_club");
        assert_eq!(i.resolve(ix), "current_club");
        assert_eq!(i.get("current_club"), Some(ix));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn try_resolve_out_of_range() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(0), None);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let all: Vec<_> = i.iter().collect();
        assert_eq!(all, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let mut i = Interner::new();
        i.intern("alpha");
        i.intern("beta");
        let json = serde_json::to_string(&i).unwrap();
        assert_eq!(json, r#"["alpha","beta"]"#);
        let back: Interner = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("beta"), Some(1));
        assert_eq!(back.resolve(0), "alpha");
    }

    #[test]
    fn empty_checks() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        i.intern("z");
        assert!(!i.is_empty());
    }

    #[test]
    fn generic_interner_over_tuples() {
        let mut i: KeyInterner<(u32, u32)> = KeyInterner::new();
        assert_eq!(i.intern((1, 2)), 0);
        assert_eq!(i.intern((3, 4)), 1);
        assert_eq!(i.intern((1, 2)), 0);
        assert_eq!(i.resolve(1), &(3, 4));
        assert_eq!(i.get(&(3, 4)), Some(1));
        assert_eq!(i.keys(), &[(1, 2), (3, 4)]);
    }

    #[test]
    fn from_keys_rebuilds_index() {
        let i = KeyInterner::from_keys(vec!["a".to_string(), "b".to_string()]);
        assert_eq!(i.get("b"), Some(1));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn try_intern_reports_full_instead_of_panicking() {
        use crate::error::WicleanError;
        let mut i: KeyInterner<u64> = KeyInterner::with_limit(2);
        assert_eq!(i.try_intern(10), Ok(0));
        assert_eq!(i.try_intern(20), Ok(1));
        // Existing keys still resolve after the id space fills.
        assert_eq!(i.try_intern(10), Ok(0));
        assert_eq!(
            i.try_intern(30),
            Err(WicleanError::InternerFull { limit: 2 })
        );
        // The failed intern must not have corrupted the table.
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(1), &20);
        assert_eq!(i.limit(), 2);
    }

    #[test]
    fn string_interner_try_path() {
        let mut i = Interner::with_limit(1);
        assert_eq!(i.try_intern("only"), Ok(0));
        assert_eq!(i.try_intern("only"), Ok(0), "re-intern is not growth");
        assert!(i.try_intern("next").is_err());
        assert_eq!(i.resolve(0), "only");
    }

    #[test]
    #[should_panic(expected = "interner overflow")]
    fn infallible_intern_panics_at_limit() {
        let mut i: KeyInterner<u32> = KeyInterner::with_limit(1);
        i.intern(1);
        i.intern(2);
    }
}
