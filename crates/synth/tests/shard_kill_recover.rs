//! Kill-and-recover integration tests over sharded segment logs.
//!
//! The out-of-core corpus must compose with the crash-safety posture of
//! PR 6: a process death mid-append tears at most one shard's segment
//! tail, the other shards stay byte-intact, and the loss lands in
//! [`DegradedCoverage::shard_losses`] — per shard — all the way into the
//! serialized [`WcReport`]. Mining then completes over the surviving
//! data instead of aborting.

use std::path::PathBuf;
use std::sync::Arc;
use wiclean_core::{
    find_windows_and_patterns, ingest_sharded, open_sharded_corpus, DegradedCoverage, MiningPool,
    WcConfig, WcReport,
};
use wiclean_revstore::{
    FailKind, FailOp, FailSpec, FailpointFs, MemFs, MemoryBudget, RevisionStore, ShardPolicy,
    ShardedStore, SyncPolicy, Vfs,
};
use wiclean_synth::{build_bulk_universe, BulkConfig};
use wiclean_types::{WEEK, YEAR};

fn policy() -> ShardPolicy {
    ShardPolicy {
        shards: 4,
        snapshot_every: 4,
        sync: SyncPolicy::Never,
        ..ShardPolicy::default()
    }
}

fn budget() -> Arc<MemoryBudget> {
    Arc::new(MemoryBudget::new(4 << 20))
}

/// The bulk corpus as a plain in-memory store (the differential
/// reference) — small enough to hold both sides.
fn reference_store(world: &wiclean_synth::BulkWorld) -> RevisionStore {
    let mut store = RevisionStore::new();
    for (entity, history) in world.histories() {
        for (time, text) in history {
            store.record(entity, time, text);
        }
    }
    store
}

#[test]
fn kill_mid_append_fails_cleanly_and_recovery_serves_a_prefix() {
    let world = build_bulk_universe(BulkConfig::small(41));
    let source = reference_store(&world);

    // Simulated process death: the 57th append tears after 5 payload
    // bytes and the filesystem halts — nothing later lands either.
    let mem = Arc::new(MemFs::new());
    let fs = FailpointFs::new(
        mem.clone(),
        FailSpec::once(FailOp::Append, 57, FailKind::TornWrite { keep: 5 }),
    );
    let dir = PathBuf::from("/corpus");
    let dest = ShardedStore::create(&fs, &dir, policy(), budget()).unwrap();
    let pool = MiningPool::new(1);
    assert!(
        ingest_sharded(&pool, &source, &dest).is_err(),
        "the injected kill must surface as an error, not a panic"
    );
    drop(dest);
    drop(fs);

    // Reopen what actually reached "disk". Damage must be confined to
    // the shard that was mid-append; every materialized revision must be
    // one the source really contains.
    let corpus = open_sharded_corpus(mem, &dir, policy(), budget()).unwrap();
    assert!(corpus.recovery.losses.len() <= 1, "at most the torn shard");
    for entity in corpus.store.entities() {
        let got = corpus.store.materialize(entity).unwrap().unwrap();
        let want = source.peek(entity).unwrap();
        assert!(got.len() <= want.len());
        for rev in got.revisions() {
            assert!(
                want.revisions().contains(rev),
                "recovered revision must exist in the source history"
            );
        }
    }
}

#[test]
fn torn_shard_is_isolated_and_lands_in_the_report_per_shard() {
    let world = build_bulk_universe(BulkConfig::small(43));
    let source = reference_store(&world);

    let mem = Arc::new(MemFs::new());
    let dir = PathBuf::from("/corpus");
    {
        let dest = ShardedStore::create(mem.clone(), &dir, policy(), budget()).unwrap();
        let pool = MiningPool::new(2);
        ingest_sharded(&pool, &source, &dest).unwrap();
    }

    // Tear the tail of one shard — a torn write the moment the power went.
    let victim = 2u32;
    let seg = dir.join(format!("shard-{victim:04}.seg"));
    let len = mem.len(&seg).unwrap();
    mem.truncate(&seg, len - 7).unwrap();

    let corpus = open_sharded_corpus(mem, &dir, policy(), budget()).unwrap();
    assert!(!corpus.recovery.is_clean());
    assert!(corpus.recovery.losses.iter().all(|l| l.shard == victim));

    // Every other shard is byte-identical to the reference.
    let mut damaged_entities = 0usize;
    for entity in corpus.store.entities() {
        let got = corpus.store.materialize(entity).unwrap().unwrap();
        let want = source.peek(entity).unwrap();
        if corpus.store.shard_of(entity) == victim {
            if got.revisions() != want.revisions() {
                damaged_entities += 1;
            }
        } else {
            assert_eq!(got.revisions(), want.revisions(), "undamaged shard changed");
        }
    }
    assert!(damaged_entities <= 1, "a torn tail costs at most one frame");

    // Mining completes over the recovered store, and the per-shard loss
    // flows through DegradedCoverage into the serialized report.
    let wc = WcConfig {
        w_min: 2 * WEEK,
        timeline_start: 0,
        timeline_end: YEAR,
        threads: 1,
        ..WcConfig::default()
    };
    let mut result =
        find_windows_and_patterns(&corpus.store, &world.universe, world.seed_type, &wc);
    corpus.stamp(&mut result.degraded);
    corpus.stamp_stats(&mut result.stats);
    assert!(
        result
            .discovered
            .iter()
            .any(|d| d.pattern.display(&world.universe).contains("current_club")),
        "the transfer pattern must survive a one-shard tail loss; got {:?}",
        result
            .discovered
            .iter()
            .map(|d| d.pattern.display(&world.universe))
            .collect::<Vec<_>>()
    );

    let report = WcReport::from_result(&result, &world.universe);
    assert_eq!(report.degraded.shard_losses.len(), 1);
    assert_eq!(report.degraded.shard_losses[0].shard, victim);
    assert!(report.stats.bytes_on_disk > 0);

    let back = WcReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back.degraded.shard_losses, report.degraded.shard_losses);
    assert_eq!(back.stats.bytes_on_disk, report.stats.bytes_on_disk);

    // A fresh DegradedCoverage stamped directly also reports per shard.
    let mut degraded = DegradedCoverage::default();
    corpus.stamp(&mut degraded);
    assert!(!degraded.is_empty());
    assert_eq!(degraded.shard_losses[0].shard, victim);
}
