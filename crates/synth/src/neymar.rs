//! The paper's running example (Figure 1) as a scripted micro-world:
//! Neymar's 2017 move from Barcelona F.C. to PSG F.C., plus Mbappé's
//! parallel Monaco-to-PSG transfer, with the rumor-and-revert churn that
//! makes the reduction column `R` of Figure 1 interesting.

use wiclean_revstore::RevisionStore;
use wiclean_types::{EntityId, TypeId, Universe, Window, DAY, HOUR};
use wiclean_wikitext::render::render_links;
use wiclean_wikitext::PageLinks;

/// The micro-world of Figure 1.
pub struct NeymarScenario {
    /// Vocabulary and entities.
    pub universe: Universe,
    /// The revision store with the scripted timeline.
    pub store: RevisionStore,
    /// The seed type (`SoccerPlayer`).
    pub player_ty: TypeId,
    /// The transfer-window span covering all scripted edits.
    pub window: Window,
    /// Neymar's entity id.
    pub neymar: EntityId,
    /// PSG's entity id.
    pub psg: EntityId,
    /// Barcelona's entity id.
    pub barcelona: EntityId,
}

/// Builds the Figure 1 world. The timeline includes a revert pair on
/// Neymar's `current_club` link (rows whose `R` column the paper shows as
/// `0`), so that reduction visibly removes churn.
pub fn neymar_scenario() -> NeymarScenario {
    let mut u = Universe::new("Thing");
    let root = u.taxonomy().root();
    let player_ty = u
        .taxonomy_mut()
        .add_path(root, &["Agent", "Person", "Athlete", "SoccerPlayer"])
        .unwrap();
    let club_ty = u
        .taxonomy_mut()
        .add_path(root, &["Agent", "Organisation", "SportsTeam", "SoccerClub"])
        .unwrap();
    let league_ty = u
        .taxonomy_mut()
        .add_path(
            root,
            &["Agent", "Organisation", "SportsLeague", "SoccerLeague"],
        )
        .unwrap();

    for rel in ["current_club", "squad", "in_league"] {
        u.relation(rel);
    }

    let neymar = u.add_entity("Neymar", player_ty).unwrap();
    let buffon = u.add_entity("Gianluigi Buffon", player_ty).unwrap();
    let mbappe = u.add_entity("Kylian Mbappe", player_ty).unwrap();
    let barcelona = u.add_entity("Barcelona F.C.", club_ty).unwrap();
    let psg = u.add_entity("PSG F.C.", club_ty).unwrap();
    let juventus = u.add_entity("Juventus F.C.", club_ty).unwrap();
    let monaco = u.add_entity("Monaco F.C.", club_ty).unwrap();
    let la_liga = u.add_entity("La Liga", league_ty).unwrap();
    let ligue1 = u.add_entity("Ligue 1", league_ty).unwrap();
    let serie_a = u.add_entity("Serie A", league_ty).unwrap();
    let _ = (juventus, monaco, la_liga, ligue1, serie_a, buffon);

    let mut store = RevisionStore::new();
    let mut state: std::collections::HashMap<EntityId, PageLinks> = Default::default();
    let snap = |state: &std::collections::HashMap<EntityId, PageLinks>,
                store: &mut RevisionStore,
                u: &Universe,
                e: EntityId,
                t: u64| {
        let text = render_links(u.entity_name(e), "page", &state[&e]);
        store.record(e, t, text);
    };

    // Initial state (t = 0): Neymar at Barcelona in La Liga; Buffon at
    // Juventus in Serie A; Mbappé at Monaco in Ligue 1.
    let mut set = |e: EntityId, links: Vec<(&str, EntityId)>| {
        let mut p = PageLinks::new();
        for (rel, t) in links {
            p.insert(rel, u.entity_name(t));
        }
        state.insert(e, p);
    };
    set(
        neymar,
        vec![("current_club", barcelona), ("in_league", la_liga)],
    );
    set(
        buffon,
        vec![("current_club", juventus), ("in_league", serie_a)],
    );
    set(
        mbappe,
        vec![("current_club", monaco), ("in_league", ligue1)],
    );
    set(barcelona, vec![("squad", neymar), ("in_league", la_liga)]);
    set(psg, vec![("in_league", ligue1)]);
    set(juventus, vec![("squad", buffon), ("in_league", serie_a)]);
    set(monaco, vec![("squad", mbappe), ("in_league", ligue1)]);
    set(la_liga, vec![]);
    set(ligue1, vec![]);
    set(serie_a, vec![]);
    for (i, e) in [
        neymar, buffon, mbappe, barcelona, psg, juventus, monaco, la_liga, ligue1, serie_a,
    ]
    .into_iter()
    .enumerate()
    {
        snap(&state, &mut store, &u, e, i as u64 * 60);
    }

    // The transfer saga, inside the window [day 1, day 14).
    let base = DAY;
    let mut edit = |e: EntityId, t: u64, f: &dyn Fn(&mut PageLinks, &Universe)| {
        let p = state.get_mut(&e).unwrap();
        f(p, &u);
        snap(&state, &mut store, &u, e, t);
    };

    // t1: rumor — Neymar's Barca link removed.
    edit(neymar, base + HOUR, &|p, u| {
        p.links
            .remove(&("current_club".into(), u.entity_name(barcelona).into()));
    });
    // t2: revert — link restored (this pair reduces away, R = 0).
    edit(neymar, base + 2 * HOUR, &|p, u| {
        p.insert("current_club", u.entity_name(barcelona));
    });
    // t3: the real transfer: Barca removed again, PSG added, league swap.
    edit(neymar, base + DAY, &|p, u| {
        p.links
            .remove(&("current_club".into(), u.entity_name(barcelona).into()));
        p.insert("current_club", u.entity_name(psg));
    });
    edit(neymar, base + DAY + HOUR, &|p, u| {
        p.links
            .remove(&("in_league".into(), u.entity_name(la_liga).into()));
        p.insert("in_league", u.entity_name(ligue1));
    });
    // t4: club pages follow.
    edit(psg, base + 2 * DAY, &|p, u| {
        p.insert("squad", u.entity_name(neymar));
    });
    edit(barcelona, base + 2 * DAY + HOUR, &|p, u| {
        p.links
            .remove(&("squad".into(), u.entity_name(neymar).into()));
    });
    // t5: Mbappé's parallel transfer (Monaco → PSG), fully coordinated.
    edit(mbappe, base + 3 * DAY, &|p, u| {
        p.links
            .remove(&("current_club".into(), u.entity_name(monaco).into()));
        p.insert("current_club", u.entity_name(psg));
    });
    edit(psg, base + 3 * DAY + HOUR, &|p, u| {
        p.insert("squad", u.entity_name(mbappe));
    });
    edit(monaco, base + 3 * DAY + 2 * HOUR, &|p, u| {
        p.links
            .remove(&("squad".into(), u.entity_name(mbappe).into()));
    });

    NeymarScenario {
        universe: u,
        store,
        player_ty,
        window: Window::new(DAY, 14 * DAY),
        neymar,
        psg,
        barcelona,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiclean_revstore::{extract_actions_for, reduce_actions};

    #[test]
    fn revert_pair_reduces_away() {
        let s = neymar_scenario();
        let players = s.universe.entities_of(s.player_ty);
        let out = extract_actions_for(&s.store, &s.universe, &players, &s.window);
        let raw = out.actions.len();
        let reduced = reduce_actions(&out.actions);
        assert!(raw > reduced.len(), "reverts must cancel");
        // Neymar's net player-page effect: −Barca, +PSG, −LaLiga, +Ligue1.
        let neymar_actions: Vec<_> = reduced.iter().filter(|a| a.source == s.neymar).collect();
        assert_eq!(neymar_actions.len(), 4);
    }

    #[test]
    fn transfers_are_complete_in_final_state() {
        let s = neymar_scenario();
        let h = s.store.peek(s.psg).unwrap();
        let last = &h.revisions().last().unwrap().text;
        assert!(last.contains("Neymar"));
        assert!(last.contains("Kylian Mbappe"));
        let barca = &s
            .store
            .peek(s.barcelona)
            .unwrap()
            .revisions()
            .last()
            .unwrap()
            .text;
        assert!(!barca.contains("squad"), "Neymar removed from Barca squad");
    }
}
