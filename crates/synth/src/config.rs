//! Generator configuration.

use serde::{Deserialize, Serialize};

/// Knobs of the synthetic-corpus generator.
///
/// Defaults are calibrated so that the evaluation harness lands near the
/// paper's §6.3 quality numbers; the calibration targets are documented on
/// each field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of seed-type entities to generate (the paper samples
    /// 100–1000 seeds per domain).
    pub seed_count: usize,
    /// RNG seed for reproducibility.
    pub rng_seed: u64,
    /// Probability that a performed action is accompanied by a revert pair
    /// (action, inverse, action) — the noise reduction removes.
    pub revert_rate: f64,
    /// Expected vandalism edits (red-link insert + revert) per hundred
    /// entities.
    pub vandalism_per_100_entities: f64,
    /// Spurious one-sided edits, as a fraction of planted errors. These are
    /// *intentional* partial-looking edits; they keep the verified-error
    /// fraction below 100% (paper: 78–82%).
    pub spurious_factor: f64,
    /// Fraction of planted errors corrected during the second year
    /// (paper: 67.8–71.6% per domain; domains override this).
    pub correction_rate: f64,
    /// Number of distractor entities (cities, bands, albums) whose churn
    /// inflates the full edits graph the `PM−inc` baselines must
    /// materialize.
    pub distractor_entities: usize,
    /// Expected number of distractor link edits per distractor entity over
    /// the year.
    pub distractor_edits_per_entity: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            seed_count: 500,
            rng_seed: 0xC1EA11,
            revert_rate: 0.12,
            vandalism_per_100_entities: 4.0,
            spurious_factor: 0.035,
            correction_rate: 0.70,
            distractor_entities: 200,
            distractor_edits_per_entity: 3.0,
        }
    }
}

impl SynthConfig {
    /// A smaller, faster corpus for unit tests.
    pub fn tiny(rng_seed: u64) -> Self {
        Self {
            seed_count: 40,
            rng_seed,
            distractor_entities: 20,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SynthConfig::default();
        assert!(c.seed_count >= 100);
        assert!((0.0..=1.0).contains(&c.revert_rate));
        assert!((0.0..=1.0).contains(&c.correction_rate));
    }

    #[test]
    fn tiny_is_smaller() {
        let t = SynthConfig::tiny(1);
        assert!(t.seed_count < SynthConfig::default().seed_count);
        assert_eq!(t.rng_seed, 1);
    }
}
