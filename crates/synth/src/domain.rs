//! Domain specifications: taxonomy branches, populations, initial state
//! rules and event templates for one Wikipedia domain.

use crate::template::{EventTemplate, RoleBinding, TemplateAction};
use serde::{Deserialize, Serialize};
use wiclean_core::abstract_action::AbstractAction;
use wiclean_core::pattern::Pattern;
use wiclean_core::var::Var;
use wiclean_types::{TypeId, Universe};

/// How many entities a population gets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Count {
    /// Exactly this many.
    Fixed(usize),
    /// `max(min, seed_count × ratio)`.
    PerSeed {
        /// Entities per seed entity.
        ratio: f64,
        /// Lower bound.
        min: usize,
    },
}

impl Count {
    /// Resolves the count for a given seed population size.
    pub fn resolve(&self, seed_count: usize) -> usize {
        match *self {
            Count::Fixed(n) => n,
            Count::PerSeed { ratio, min } => ((seed_count as f64 * ratio) as usize).max(min),
        }
    }
}

/// One entity population of a domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// Path of type names from the taxonomy root (created if missing).
    pub ty_path: Vec<String>,
    /// Entity name prefix, e.g. `Soccer Player`.
    pub name_prefix: String,
    /// Population size.
    pub count: Count,
}

/// Initial-state rule: every entity of `src_ty` starts with `per_entity`
/// links via `rel` to random entities of `tgt_ty`; if `reciprocal` is set,
/// the target page links back via that relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitLink {
    /// Source entity type name.
    pub src_ty: String,
    /// Relation label.
    pub rel: String,
    /// Target entity type name.
    pub tgt_ty: String,
    /// Links per source entity.
    pub per_entity: usize,
    /// Optional reciprocal relation on the target page.
    pub reciprocal: Option<String>,
}

/// A complete domain description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Domain name (`soccer`, `cinematography`, `us_politicians`).
    pub name: String,
    /// Seed type name (must match one population's leaf type).
    pub seed_type: String,
    /// Entity populations (the first must be the seed population).
    pub populations: Vec<Population>,
    /// All relation labels the domain uses.
    pub relations: Vec<String>,
    /// Initial-state rules applied before the simulated year starts.
    pub init: Vec<InitLink>,
    /// The scripted event templates — the domain's ground-truth "expert
    /// pattern list".
    pub templates: Vec<EventTemplate>,
}

impl DomainSpec {
    /// Validates all templates.
    pub fn validate(&self) {
        assert!(
            self.populations
                .first()
                .is_some_and(|p| p.ty_path.last() == Some(&self.seed_type)),
            "domain `{}`: first population must be the seed type",
            self.name
        );
        for t in &self.templates {
            t.validate();
        }
    }

    /// The type name a role binds to (base-template roles only).
    pub fn role_type<'a>(&'a self, template: &'a EventTemplate, role: usize) -> &'a str {
        match &template.roles[role].1 {
            RoleBinding::Seed => &self.seed_type,
            RoleBinding::Fresh { ty, .. } => ty,
            RoleBinding::ExistingTarget { ty, .. } => ty,
        }
    }

    /// The canonical expert pattern of a template (over the leaf types the
    /// roles declare), as the miner should discover it.
    pub fn expert_pattern(&self, template: &EventTemplate, universe: &Universe) -> Pattern {
        let actions = template_abstract_actions(
            &self.seed_type,
            &template.roles,
            &template.actions,
            universe,
        );
        Pattern::canonical_from(&actions)
    }

    /// The expert pattern of a template extension: parent actions plus the
    /// extension's, over the combined role list.
    pub fn expert_extension_pattern(
        &self,
        template: &EventTemplate,
        ext_ix: usize,
        universe: &Universe,
    ) -> Pattern {
        let ext = &template.extensions[ext_ix];
        let mut roles = template.roles.clone();
        roles.extend(ext.roles.iter().cloned());
        let mut actions = template.actions.clone();
        actions.extend(ext.actions.iter().cloned());
        let abstract_actions =
            template_abstract_actions(&self.seed_type, &roles, &actions, universe);
        Pattern::canonical_from(&abstract_actions)
    }

    /// All expert patterns with their names and windowed-ness — the list
    /// handed to the evaluation as the paper handed expert lists to WC.
    pub fn expert_list(&self, universe: &Universe) -> Vec<(String, Pattern, bool)> {
        self.templates
            .iter()
            .map(|t| {
                (
                    t.name.clone(),
                    self.expert_pattern(t, universe),
                    t.window.is_windowed(),
                )
            })
            .collect()
    }
}

/// Maps template roles to typed variables (one index per same-type role)
/// and template actions to abstract actions.
fn template_abstract_actions(
    seed_type: &str,
    roles: &[(String, RoleBinding)],
    actions: &[TemplateAction],
    universe: &Universe,
) -> Vec<AbstractAction> {
    let tax = universe.taxonomy();
    let type_of_role = |r: &RoleBinding| -> TypeId {
        let name = match r {
            RoleBinding::Seed => seed_type,
            RoleBinding::Fresh { ty, .. } => ty,
            RoleBinding::ExistingTarget { ty, .. } => ty,
        };
        tax.require(name)
            .unwrap_or_else(|_| panic!("unknown role type `{name}`"))
    };
    // Assign per-type indices in role order.
    let mut counters: std::collections::HashMap<TypeId, u8> = std::collections::HashMap::new();
    let vars: Vec<Var> = roles
        .iter()
        .map(|(_, b)| {
            let ty = type_of_role(b);
            let c = counters.entry(ty).or_insert(0);
            let v = Var::new(ty, *c);
            *c += 1;
            v
        })
        .collect();
    actions
        .iter()
        .map(|a| {
            let rel = universe
                .lookup_relation(&a.rel)
                .unwrap_or_else(|| panic!("unknown relation `{}`", a.rel));
            AbstractAction::new(a.op, vars[a.source], rel, vars[a.target])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::WindowSpec;
    use wiclean_wikitext::EditOp;

    fn mini_domain() -> DomainSpec {
        DomainSpec {
            name: "mini".into(),
            seed_type: "SoccerPlayer".into(),
            populations: vec![
                Population {
                    ty_path: vec!["Agent".into(), "Person".into(), "SoccerPlayer".into()],
                    name_prefix: "Player".into(),
                    count: Count::PerSeed { ratio: 1.0, min: 1 },
                },
                Population {
                    ty_path: vec!["Agent".into(), "Organisation".into(), "SoccerClub".into()],
                    name_prefix: "Club".into(),
                    count: Count::Fixed(4),
                },
            ],
            relations: vec!["current_club".into(), "squad".into()],
            init: vec![],
            templates: vec![EventTemplate {
                name: "transfer".into(),
                roles: vec![
                    ("player".into(), RoleBinding::Seed),
                    (
                        "club".into(),
                        RoleBinding::Fresh {
                            ty: "SoccerClub".into(),
                            from_role: 0,
                            rel: "current_club".into(),
                        },
                    ),
                ],
                actions: vec![
                    TemplateAction::new(EditOp::Add, 0, "current_club", 1),
                    TemplateAction::new(EditOp::Add, 1, "squad", 0),
                ],
                window: WindowSpec::Annual {
                    start_day: 212,
                    len_days: 14,
                },
                fire_rate: 0.5,
                completion: 0.9,
                extensions: vec![],
                exclusive_group: None,
            }],
        }
    }

    fn mini_universe() -> Universe {
        let mut u = Universe::new("Thing");
        let root = u.taxonomy().root();
        u.taxonomy_mut()
            .add_path(root, &["Agent", "Person", "SoccerPlayer"])
            .unwrap();
        u.taxonomy_mut()
            .add_path(root, &["Agent", "Organisation", "SoccerClub"])
            .unwrap();
        u.relation("current_club");
        u.relation("squad");
        u
    }

    #[test]
    fn count_resolution() {
        assert_eq!(Count::Fixed(7).resolve(1000), 7);
        assert_eq!(Count::PerSeed { ratio: 0.1, min: 4 }.resolve(1000), 100);
        assert_eq!(Count::PerSeed { ratio: 0.1, min: 4 }.resolve(10), 4);
    }

    #[test]
    fn expert_pattern_is_canonical_two_action_pattern() {
        let d = mini_domain();
        d.validate();
        let u = mini_universe();
        let p = d.expert_pattern(&d.templates[0], &u);
        assert_eq!(p.len(), 2);
        // Both directions present: player→club and club→player.
        let player = u.taxonomy().lookup("SoccerPlayer").unwrap();
        assert!(p.is_connected(u.taxonomy(), player));
    }

    #[test]
    fn expert_list_reports_windowedness() {
        let d = mini_domain();
        let u = mini_universe();
        let list = d.expert_list(&u);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].0, "transfer");
        assert!(list[0].2);
    }

    #[test]
    #[should_panic(expected = "first population must be the seed type")]
    fn validate_checks_seed_population() {
        let mut d = mini_domain();
        d.populations.swap(0, 1);
        d.validate();
    }

    #[test]
    fn same_type_roles_get_distinct_vars() {
        let mut d = mini_domain();
        // Add an old-club role of the same type.
        d.templates[0].roles.push((
            "old_club".into(),
            RoleBinding::ExistingTarget {
                of_role: 0,
                rel: "current_club".into(),
                ty: "SoccerClub".into(),
                avoid_cofiring: false,
            },
        ));
        d.templates[0]
            .actions
            .push(TemplateAction::new(EditOp::Remove, 0, "current_club", 2));
        let u = mini_universe();
        let p = d.expert_pattern(&d.templates[0], &u);
        assert_eq!(p.len(), 3);
        let club = u.taxonomy().lookup("SoccerClub").unwrap();
        assert_eq!(p.vars_of_type(club).len(), 2, "two distinct club vars");
    }
}
