//! The paper's three evaluation domains as domain specifications.
//!
//! Template counts match the paper's expert lists — **11** soccer patterns,
//! **8** cinematography patterns, **5** US-politician patterns — and, per
//! domain, all but the window-less ones are discoverable (the paper's
//! recall: 9/11, 7/8, 4/5, with the misses being exactly the patterns "not
//! clearly associated with any time window").
//!
//! Scheduling policy (keeps the evaluation predictable — see DESIGN.md):
//! * every windowed template occupies its own two-week window aligned to
//!   the 14-day mining grid (`start_day` is a multiple of 14, no two
//!   windowed templates share a slot);
//! * all windowed templates fire at rate 0.50 with completion 0.98, so
//!   every full pattern clears the τ = 0.41 refinement band; the search
//!   then goes barren and Algorithm 2 terminates *before* the
//!   large-window/low-threshold regime where cross-template union patterns
//!   (pairwise rate ≈ 0.25) would appear — exactly the degeneracy the
//!   paper's Table 1 attributes to over-aggressive refinement policies;
//! * window-less templates fire at 0.12, never frequent in any window.

use crate::domain::{Count, DomainSpec, InitLink, Population};
use crate::template::{EventTemplate, RoleBinding, TemplateAction, TemplateExtension, WindowSpec};
use wiclean_wikitext::EditOp;

fn pop(path: &[&str], prefix: &str, count: Count) -> Population {
    Population {
        ty_path: path.iter().map(|s| (*s).to_owned()).collect(),
        name_prefix: prefix.to_owned(),
        count,
    }
}

fn init(src: &str, rel: &str, tgt: &str, n: usize, reciprocal: Option<&str>) -> InitLink {
    InitLink {
        src_ty: src.to_owned(),
        rel: rel.to_owned(),
        tgt_ty: tgt.to_owned(),
        per_entity: n,
        reciprocal: reciprocal.map(str::to_owned),
    }
}

fn seed_role() -> (String, RoleBinding) {
    ("seed".to_owned(), RoleBinding::Seed)
}

fn fresh(name: &str, ty: &str, from_role: usize, rel: &str) -> (String, RoleBinding) {
    (
        name.to_owned(),
        RoleBinding::Fresh {
            ty: ty.to_owned(),
            from_role,
            rel: rel.to_owned(),
        },
    )
}

fn existing(name: &str, of_role: usize, rel: &str, ty: &str) -> (String, RoleBinding) {
    (
        name.to_owned(),
        RoleBinding::ExistingTarget {
            of_role,
            rel: rel.to_owned(),
            ty: ty.to_owned(),
            avoid_cofiring: false,
        },
    )
}

/// Like [`existing`], but the bound entity must not itself fire this
/// template in the same window (prevents frequent "chained" events —
/// see the binding's docs).
fn existing_noncofiring(name: &str, of_role: usize, rel: &str, ty: &str) -> (String, RoleBinding) {
    (
        name.to_owned(),
        RoleBinding::ExistingTarget {
            of_role,
            rel: rel.to_owned(),
            ty: ty.to_owned(),
            avoid_cofiring: true,
        },
    )
}

fn add(source: usize, rel: &str, target: usize) -> TemplateAction {
    TemplateAction::new(EditOp::Add, source, rel, target)
}

fn del(source: usize, rel: &str, target: usize) -> TemplateAction {
    TemplateAction::new(EditOp::Remove, source, rel, target)
}

fn windowed(start_day: u64) -> WindowSpec {
    WindowSpec::Annual {
        start_day,
        len_days: 14,
    }
}

/// A wider occurrence window: events spread over `len_days`, so at the
/// minimal two-week mining width the pattern's per-window frequency falls
/// below the threshold floor and only window widening recovers it — the
/// patterns the paper's Table 1 shows the never-widen policy missing.
fn windowed_long(start_day: u64, len_days: u64) -> WindowSpec {
    WindowSpec::Annual {
        start_day,
        len_days,
    }
}

#[allow(clippy::too_many_arguments)]
fn template(
    name: &str,
    roles: Vec<(String, RoleBinding)>,
    actions: Vec<TemplateAction>,
    window: WindowSpec,
    fire_rate: f64,
    completion: f64,
    extensions: Vec<TemplateExtension>,
) -> EventTemplate {
    EventTemplate {
        name: name.to_owned(),
        roles,
        actions,
        window,
        fire_rate,
        completion,
        extensions,
        exclusive_group: None,
    }
}

/// The soccer domain: players, clubs, leagues, awards, tournaments — 11
/// expert patterns (9 windowed, 2 window-less).
pub fn soccer() -> DomainSpec {
    let templates = vec![
        // 1. The flagship: the paper's summer transfer (Example 1.1 /
        //    Figure 3), with the league-change sub-flow as the planted
        //    relative pattern.
        template(
            "summer_transfer",
            vec![
                seed_role(),
                fresh("new_club", "SoccerClub", 0, "current_club"),
                existing("old_club", 0, "current_club", "SoccerClub"),
            ],
            vec![
                add(0, "current_club", 1),
                del(0, "current_club", 2),
                add(1, "squad", 0),
                del(2, "squad", 0),
            ],
            windowed(210), // first two weeks of August
            0.50,
            0.98,
            vec![TemplateExtension {
                probability: 0.45,
                roles: vec![
                    existing("old_league", 0, "in_league", "SoccerLeague"),
                    existing("new_league", 1, "in_league", "SoccerLeague"),
                ],
                actions: vec![del(0, "in_league", 3), add(0, "in_league", 4)],
            }],
        ),
        // 2. The winter loan window spans six weeks — long enough that no
        //    two-week mining window captures a frequent share; only the
        //    widened windows of Algorithm 2 discover it.
        template(
            "winter_loan",
            vec![
                seed_role(),
                fresh("loan_club", "SoccerClub", 0, "loaned_to"),
            ],
            vec![add(0, "loaned_to", 1), add(1, "loan_squad", 0)],
            windowed_long(28, 42),
            0.50,
            0.98,
            vec![],
        ),
        // 3. End-of-season award (the "Goal of the Month" expert pattern).
        template(
            "season_award",
            vec![seed_role(), fresh("award", "FootballAward", 0, "award_won")],
            vec![add(0, "award_won", 1), add(1, "award_winner", 0)],
            windowed(140),
            0.50,
            0.98,
            vec![],
        ),
        // 4. Captaincy handover (three pages involved). The club is drawn
        //    fresh so the event can be re-rolled when the displaced
        //    captain is itself firing (a deterministic binding could not
        //    redraw); without the non-cofiring constraint, two same-club
        //    captaincies in one window would cancel each other's
        //    `+captain` edit under reduction and litter the ground truth
        //    with unverifiable flags.
        template(
            "captaincy_change",
            vec![
                seed_role(),
                fresh("club", "SoccerClub", 0, "captain_of"),
                existing_noncofiring("old_captain", 1, "captain", "SoccerPlayer"),
            ],
            vec![
                add(0, "captain_of", 1),
                add(1, "captain", 0),
                del(1, "captain", 2),
            ],
            windowed(182),
            0.50,
            0.98,
            vec![],
        ),
        // 5. Retirement — scheduled after the transfer window so that
        //    removing `current_club` does not starve the transfer
        //    template's bindings.
        template(
            "retirement",
            vec![
                seed_role(),
                existing("club", 0, "current_club", "SoccerClub"),
            ],
            vec![
                del(0, "current_club", 1),
                del(1, "squad", 0),
                add(0, "former_club", 1),
            ],
            windowed(294),
            0.50,
            0.98,
            vec![],
        ),
        // 6. Youth-academy promotion.
        template(
            "youth_promotion",
            vec![
                seed_role(),
                fresh("academy", "YouthAcademy", 0, "promoted_from"),
            ],
            vec![add(0, "promoted_from", 1), add(1, "academy_graduates", 0)],
            windowed(112),
            0.50,
            0.98,
            vec![],
        ),
        // 7. National-team call-up.
        template(
            "national_callup",
            vec![seed_role(), fresh("nt", "NationalTeam", 0, "national_team")],
            vec![add(0, "national_team", 1), add(1, "nt_squad", 0)],
            windowed(238),
            0.50,
            0.98,
            vec![],
        ),
        // 8. Tournament squad registration.
        template(
            "tournament_squad",
            vec![
                seed_role(),
                fresh("tournament", "FootballTournament", 0, "tournament_squad"),
            ],
            vec![add(0, "tournament_squad", 1), add(1, "squad_member", 0)],
            windowed(168),
            0.50,
            0.98,
            vec![],
        ),
        // 9. Signing unveiling — deliberately shares the transfer window
        //    (rate product 0.14 < the 0.2 floor, so no cross pattern).
        template(
            "stadium_unveiling",
            vec![seed_role(), fresh("stadium", "Stadium", 0, "unveiled_at")],
            vec![add(0, "unveiled_at", 1), add(1, "hosted_unveiling", 0)],
            windowed(98),
            0.50,
            0.98,
            vec![],
        ),
        // 10. Window-less: historical career backfill (missed by design).
        template(
            "career_backfill",
            vec![seed_role(), fresh("club", "SoccerClub", 0, "former_club")],
            vec![add(0, "former_club", 1), add(1, "former_players", 0)],
            WindowSpec::Uniform,
            0.12,
            0.90,
            vec![],
        ),
        // 11. Window-less: teammate cross-linking (missed by design).
        template(
            "teammate_crosslink",
            vec![
                seed_role(),
                fresh("teammate", "SoccerPlayer", 0, "linked_teammate"),
            ],
            vec![add(0, "linked_teammate", 1), add(1, "linked_teammate", 0)],
            WindowSpec::Uniform,
            0.12,
            0.90,
            vec![],
        ),
    ];

    DomainSpec {
        name: "soccer".to_owned(),
        seed_type: "SoccerPlayer".to_owned(),
        populations: vec![
            pop(
                &["Agent", "Person", "Athlete", "SoccerPlayer"],
                "Soccer Player",
                Count::PerSeed { ratio: 1.0, min: 1 },
            ),
            pop(
                &["Agent", "Organisation", "SportsTeam", "SoccerClub"],
                "Soccer Club",
                Count::PerSeed {
                    ratio: 2.5,
                    min: 16,
                },
            ),
            pop(
                &["Agent", "Organisation", "SportsLeague", "SoccerLeague"],
                "Soccer League",
                Count::Fixed(6),
            ),
            pop(
                &["Award", "SportsAward", "FootballAward"],
                "Football Award",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
            pop(
                &["Agent", "Organisation", "SportsTeam", "YouthAcademy"],
                "Youth Academy",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
            pop(
                &["Agent", "Organisation", "SportsTeam", "NationalTeam"],
                "National Team",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
            pop(
                &["Event", "SportsEvent", "FootballTournament"],
                "Football Tournament",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
            pop(
                &["Place", "Venue", "Stadium"],
                "Stadium",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
        ],
        relations: [
            "current_club",
            "squad",
            "in_league",
            "captain",
            "captain_of",
            "former_club",
            "former_players",
            "loaned_to",
            "loan_squad",
            "award_won",
            "award_winner",
            "promoted_from",
            "academy_graduates",
            "national_team",
            "nt_squad",
            "tournament_squad",
            "squad_member",
            "unveiled_at",
            "hosted_unveiling",
            "linked_teammate",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect(),
        init: vec![
            init(
                "SoccerPlayer",
                "current_club",
                "SoccerClub",
                1,
                Some("squad"),
            ),
            init("SoccerPlayer", "in_league", "SoccerLeague", 1, None),
            init("SoccerClub", "in_league", "SoccerLeague", 1, None),
            init(
                "SoccerClub",
                "captain",
                "SoccerPlayer",
                1,
                Some("captain_of"),
            ),
        ],
        templates,
    }
}

/// The cinematography domain: actors, films, shows, awards, festivals — 8
/// expert patterns (7 windowed, 1 window-less).
pub fn cinema() -> DomainSpec {
    let templates = vec![
        // 1. Flagship: awards-season movie release consuming an announced
        //    project.
        template(
            "movie_release",
            vec![
                seed_role(),
                existing("movie", 0, "upcoming_project", "Film"),
            ],
            vec![
                add(0, "starred_in", 1),
                add(1, "cast_member", 0),
                del(0, "upcoming_project", 1),
            ],
            windowed(308),
            0.50,
            0.98,
            vec![TemplateExtension {
                probability: 0.45,
                roles: vec![],
                actions: vec![add(0, "latest_work", 1)],
            }],
        ),
        // 2. The paper's Oscar example: winner and award link each other.
        template(
            "award_win",
            vec![
                seed_role(),
                fresh("award", "CinematographyAward", 0, "award_won"),
            ],
            vec![add(0, "award_won", 1), add(1, "award_winner", 0)],
            windowed(56),
            0.50,
            0.98,
            vec![],
        ),
        // 3. Casting announcements.
        template(
            "casting_announcement",
            vec![seed_role(), fresh("movie", "Film", 0, "upcoming_project")],
            vec![add(0, "upcoming_project", 1), add(1, "announced_cast", 0)],
            windowed(126),
            0.50,
            0.98,
            vec![],
        ),
        // 4. New TV season cast list.
        template(
            "tv_season_cast",
            vec![
                seed_role(),
                fresh("season", "TelevisionSeason", 0, "appears_in_season"),
            ],
            vec![add(0, "appears_in_season", 1), add(1, "season_cast", 0)],
            windowed(252),
            0.50,
            0.98,
            vec![],
        ),
        // 5. Joining a show as a regular.
        template(
            "series_regular",
            vec![
                seed_role(),
                fresh("show", "TelevisionShow", 0, "stars_in_show"),
            ],
            vec![add(0, "stars_in_show", 1), add(1, "series_regulars", 0)],
            windowed(182),
            0.50,
            0.98,
            vec![],
        ),
        // 6. Directorial debut.
        template(
            "directorial_debut",
            vec![seed_role(), fresh("movie", "Film", 0, "directed")],
            vec![add(0, "directed", 1), add(1, "director", 0)],
            windowed(28),
            0.50,
            0.98,
            vec![],
        ),
        // 7. Festival appearances — shares the casting window (product
        //    0.084 < floor).
        template(
            "festival_guest",
            vec![
                seed_role(),
                fresh("festival", "FilmFestival", 0, "premiered_at"),
            ],
            vec![add(0, "premiered_at", 1), add(1, "festival_guests", 0)],
            windowed(154),
            0.50,
            0.98,
            vec![],
        ),
        // 8. Window-less filmography backfill (missed by design).
        template(
            "filmography_backfill",
            vec![seed_role(), fresh("movie", "Film", 0, "early_work")],
            vec![add(0, "early_work", 1), add(1, "archive_cast", 0)],
            WindowSpec::Uniform,
            0.12,
            0.90,
            vec![],
        ),
    ];

    DomainSpec {
        name: "cinematography".to_owned(),
        seed_type: "Actor".to_owned(),
        populations: vec![
            pop(
                &["Agent", "Person", "Artist", "Actor"],
                "Actor",
                Count::PerSeed { ratio: 1.0, min: 1 },
            ),
            pop(
                &["Work", "Film"],
                "Film",
                Count::PerSeed {
                    ratio: 2.4,
                    min: 30,
                },
            ),
            pop(
                &["Work", "TelevisionShow"],
                "TV Show",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
            pop(
                &["Work", "TelevisionSeason"],
                "TV Season",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
            pop(
                &["Award", "CinematographyAward"],
                "Film Award",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
            pop(
                &["Event", "FilmFestival"],
                "Film Festival",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
        ],
        relations: [
            "starred_in",
            "cast_member",
            "upcoming_project",
            "announced_cast",
            "latest_work",
            "award_won",
            "award_winner",
            "appears_in_season",
            "season_cast",
            "stars_in_show",
            "series_regulars",
            "directed",
            "director",
            "premiered_at",
            "festival_guests",
            "early_work",
            "archive_cast",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect(),
        init: vec![init(
            "Actor",
            "upcoming_project",
            "Film",
            1,
            Some("announced_cast"),
        )],
        templates,
    }
}

/// The US-politicians domain: senators, states, committees, bills — 5
/// expert patterns (4 windowed, 1 window-less).
pub fn politics() -> DomainSpec {
    let templates = vec![
        // 1. Flagship: the paper's senator-election pattern — new senator
        //    and state link each other, the old senator's link is removed
        //    from the state (but the old senator keeps pointing at the
        //    state), and the new senator records a predecessor.
        template(
            "election",
            vec![
                seed_role(),
                fresh("state", "USState", 0, "senator_of"),
                existing_noncofiring("old_senator", 1, "senators", "Senator"),
            ],
            vec![
                add(0, "senator_of", 1),
                add(1, "senators", 0),
                del(1, "senators", 2),
                add(0, "preceded_by", 2),
            ],
            windowed(308), // November
            0.50,
            0.98,
            vec![],
        ),
        // 2. Committee assignments at session start.
        template(
            "committee_assignment",
            vec![
                seed_role(),
                fresh("committee", "Committee", 0, "member_of_committee"),
            ],
            vec![
                add(0, "member_of_committee", 1),
                add(1, "committee_members", 0),
            ],
            windowed(14),
            0.50,
            0.98,
            vec![],
        ),
        // 3. Leadership elections (three pages).
        template(
            "leadership_election",
            vec![
                seed_role(),
                fresh("office", "SenateOffice", 0, "holds_office"),
                existing_noncofiring("old_holder", 1, "held_by", "Senator"),
            ],
            vec![
                add(0, "holds_office", 1),
                add(1, "held_by", 0),
                del(1, "held_by", 2),
            ],
            windowed(42),
            0.50,
            0.98,
            vec![],
        ),
        // 4. Bill sponsorships.
        template(
            "bill_sponsorship",
            vec![seed_role(), fresh("bill", "Bill", 0, "sponsored_bill")],
            vec![add(0, "sponsored_bill", 1), add(1, "bill_sponsor", 0)],
            windowed(70),
            0.50,
            0.98,
            vec![],
        ),
        // 5. Window-less archive updates (missed by design).
        template(
            "archive_backfill",
            vec![
                seed_role(),
                fresh("committee", "Committee", 0, "former_committee"),
            ],
            vec![add(0, "former_committee", 1), add(1, "former_member", 0)],
            WindowSpec::Uniform,
            0.12,
            0.90,
            vec![],
        ),
    ];

    DomainSpec {
        name: "us_politicians".to_owned(),
        seed_type: "Senator".to_owned(),
        populations: vec![
            pop(
                &["Agent", "Person", "Politician", "Senator"],
                "Senator",
                Count::PerSeed { ratio: 1.0, min: 1 },
            ),
            pop(
                &["Place", "AdministrativeRegion", "USState"],
                "US State",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 50,
                },
            ),
            pop(
                &["Agent", "Organisation", "Committee"],
                "Committee",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 24,
                },
            ),
            pop(
                &["Work", "Bill"],
                "Senate Bill",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 20,
                },
            ),
            pop(
                &["Agent", "Organisation", "SenateOffice"],
                "Senate Office",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 12,
                },
            ),
        ],
        relations: [
            "senator_of",
            "senators",
            "preceded_by",
            "member_of_committee",
            "committee_members",
            "holds_office",
            "held_by",
            "sponsored_bill",
            "bill_sponsor",
            "former_committee",
            "former_member",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect(),
        init: vec![
            init("USState", "senators", "Senator", 2, Some("senator_of")),
            init(
                "SenateOffice",
                "held_by",
                "Senator",
                1,
                Some("holds_office"),
            ),
        ],
        templates,
    }
}

/// The software-repository domain — the paper's future-work transfer
/// target ("applying our ideas to other domains where revision histories
/// are available and link consistency is important (e.g., software
/// repositories)"). Seed type: software projects; coordinated edits are
/// releases, maintainer handovers, dependency adoptions and license
/// changes, each of which must be mirrored on two or more pages.
pub fn software() -> DomainSpec {
    let templates = vec![
        // 1. Flagship: cutting a release — the project page gains the
        //    release and swaps its "latest" pointer; the release page
        //    points back.
        template(
            "release_cut",
            vec![
                seed_role(),
                fresh("release", "SoftwareRelease", 0, "has_release"),
                existing("old_latest", 0, "latest_release", "SoftwareRelease"),
            ],
            vec![
                add(0, "has_release", 1),
                add(1, "release_of", 0),
                del(0, "latest_release", 2),
                add(0, "latest_release", 1),
            ],
            windowed(210),
            0.50,
            0.98,
            vec![],
        ),
        // 2. Maintainer handover (four pages/links).
        template(
            "maintainer_change",
            vec![
                seed_role(),
                fresh("new_maintainer", "Developer", 0, "maintained_by"),
                existing("old_maintainer", 0, "maintained_by", "Developer"),
            ],
            vec![
                add(0, "maintained_by", 1),
                add(1, "maintains", 0),
                del(0, "maintained_by", 2),
                del(2, "maintains", 0),
            ],
            windowed(14),
            0.50,
            0.98,
            vec![],
        ),
        // 3. Dependency adoption — a seed-to-seed link pair.
        template(
            "dependency_adoption",
            vec![
                seed_role(),
                fresh("dependency", "SoftwareProject", 0, "depends_on"),
            ],
            vec![add(0, "depends_on", 1), add(1, "dependents", 0)],
            windowed(70),
            0.50,
            0.98,
            vec![],
        ),
        // 4. License change.
        template(
            "license_change",
            vec![
                seed_role(),
                fresh("new_license", "License", 0, "licensed_under"),
                existing("old_license", 0, "licensed_under", "License"),
            ],
            vec![
                add(0, "licensed_under", 1),
                del(0, "licensed_under", 2),
                add(1, "licensees", 0),
            ],
            windowed(126),
            0.50,
            0.98,
            vec![],
        ),
        // 5. Window-less archive backfill (missed by design).
        template(
            "history_backfill",
            vec![
                seed_role(),
                fresh("emeritus", "Developer", 0, "former_maintainer"),
            ],
            vec![
                add(0, "former_maintainer", 1),
                add(1, "formerly_maintained", 0),
            ],
            WindowSpec::Uniform,
            0.12,
            0.90,
            vec![],
        ),
    ];

    DomainSpec {
        name: "software_repos".to_owned(),
        seed_type: "SoftwareProject".to_owned(),
        populations: vec![
            pop(
                &["Work", "Software", "SoftwareProject"],
                "Project",
                Count::PerSeed { ratio: 1.0, min: 1 },
            ),
            pop(
                &["Work", "Software", "SoftwareRelease"],
                "Release",
                Count::PerSeed {
                    ratio: 2.4,
                    min: 30,
                },
            ),
            pop(
                &["Agent", "Person", "Developer"],
                "Developer",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 12,
                },
            ),
            pop(
                &["Work", "License"],
                "License",
                Count::PerSeed {
                    ratio: 1.2,
                    min: 10,
                },
            ),
        ],
        relations: [
            "has_release",
            "release_of",
            "latest_release",
            "maintained_by",
            "maintains",
            "depends_on",
            "dependents",
            "licensed_under",
            "licensees",
            "former_maintainer",
            "formerly_maintained",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect(),
        init: vec![
            init(
                "SoftwareProject",
                "latest_release",
                "SoftwareRelease",
                1,
                Some("release_of"),
            ),
            init(
                "SoftwareProject",
                "maintained_by",
                "Developer",
                1,
                Some("maintains"),
            ),
            init("SoftwareProject", "licensed_under", "License", 1, None),
        ],
        templates,
    }
}

/// All three paper domains, in the paper's order.
pub fn all_domains() -> Vec<DomainSpec> {
    vec![soccer(), cinema(), politics()]
}

/// The paper domains plus the future-work software-repository domain.
pub fn all_domains_extended() -> Vec<DomainSpec> {
    vec![soccer(), cinema(), politics(), software()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_counts_match_paper() {
        assert_eq!(soccer().templates.len(), 11);
        assert_eq!(cinema().templates.len(), 8);
        assert_eq!(politics().templates.len(), 5);
        assert_eq!(software().templates.len(), 5);
    }

    #[test]
    fn windowless_counts_match_paper_recall() {
        let misses = |d: &DomainSpec| {
            d.templates
                .iter()
                .filter(|t| !t.window.is_windowed())
                .count()
        };
        assert_eq!(misses(&soccer()), 2); // recall 9/11
        assert_eq!(misses(&cinema()), 1); // recall 7/8
        assert_eq!(misses(&politics()), 1); // recall 4/5
    }

    #[test]
    fn all_domains_validate() {
        for d in all_domains_extended() {
            d.validate();
        }
    }

    #[test]
    fn windows_are_grid_aligned() {
        for d in all_domains() {
            for t in &d.templates {
                if let WindowSpec::Annual {
                    start_day,
                    len_days,
                } = t.window
                {
                    assert_eq!(start_day % 14, 0, "{} misaligned", t.name);
                    assert_eq!(len_days % 14, 0, "{} length off-grid", t.name);
                    assert!(start_day >= 14, "{} inside creation period", t.name);
                }
            }
        }
    }

    #[test]
    fn software_domain_keeps_the_calibration_contract() {
        let d = software();
        for t in d.templates.iter().filter(|t| t.window.is_windowed()) {
            let full = t.fire_rate * t.completion.powi(t.actions.len() as i32 - 1);
            assert!(full >= 0.44, "{} below the 0.41 band", t.name);
        }
    }

    #[test]
    fn rate_policy_supports_early_stopping() {
        // The calibration contract (see module docs): every windowed full
        // pattern clears the τ = 0.41 refinement band, while every
        // cross-template pair stays below the τ = 0.328 band — so
        // Algorithm 2 discovers all planted patterns and then terminates
        // before union patterns can appear.
        for d in all_domains_extended() {
            let windowed: Vec<&EventTemplate> = d
                .templates
                .iter()
                .filter(|t| t.window.is_windowed())
                .collect();
            for a in &windowed {
                let full_freq = a.fire_rate * a.completion.powi(a.actions.len() as i32 - 1);
                assert!(
                    full_freq >= 0.44,
                    "{}: full-pattern frequency {full_freq:.3} below the 0.41 band",
                    a.name
                );
                for b in &windowed {
                    if a.name != b.name {
                        assert!(
                            a.fire_rate * b.fire_rate <= 0.31,
                            "{} × {} union could reach the 0.328 band",
                            a.name,
                            b.name
                        );
                    }
                }
            }
            for t in d.templates.iter().filter(|t| !t.window.is_windowed()) {
                assert!(t.fire_rate < 0.2, "window-less {} discoverable", t.name);
            }
        }
    }

    #[test]
    fn windowed_templates_have_disjoint_slots() {
        for d in all_domains_extended() {
            let mut slots = std::collections::HashSet::new();
            for t in d.templates.iter().filter(|t| t.window.is_windowed()) {
                if let WindowSpec::Annual { start_day, .. } = t.window {
                    assert!(
                        slots.insert(start_day),
                        "{}: template {} shares slot day {}",
                        d.name,
                        t.name,
                        start_day
                    );
                }
            }
        }
    }

    #[test]
    fn flagship_extension_stays_below_absolute_floor() {
        let d = soccer();
        let transfer = &d.templates[0];
        let ext = &transfer.extensions[0];
        // Never frequent in absolute terms at the search's stopping
        // threshold (≈ 0.33) …
        assert!(transfer.fire_rate * ext.probability < 0.33 * 0.9);
        // … but clears a relative threshold of 0.3.
        assert!(ext.probability >= 0.3);
    }
}
