//! Synthetic Wikipedia generator — WiClean's data substitution.
//!
//! The paper evaluates on crawled 2018/2019 English-Wikipedia revision
//! logs; those are not available offline, so this crate generates an
//! equivalent corpus that exercises the identical code path
//! (wikitext snapshots → parse → diff → reduce → mine):
//!
//! * three domains matching the paper's — **soccer**, **cinematography**
//!   and **US politicians** — each with a type taxonomy branch, entity
//!   populations, and a list of scripted [`template::EventTemplate`]s
//!   (the "expert pattern lists": 11 / 8 / 5 templates);
//! * coordinated multi-page events that fire inside per-template time
//!   windows, with **incomplete completions** (the planted errors),
//!   **revert noise** (the `R = 0` rows of the paper's Figure 1),
//!   **vandalism** (red links) and **distractor** entity churn;
//! * a second simulated year in which a calibrated fraction of the planted
//!   errors is corrected (the paper's corrected-in-2019 measurements), plus
//!   deliberate *spurious* one-sided edits that look like errors but are
//!   intentional (driving the verified-fraction below 100%, as the paper's
//!   expert audits found);
//! * exact [`truth::GroundTruth`] bookkeeping so the evaluation crate can
//!   score precision/recall/F1 and error statistics without human experts.

pub mod bulk;
pub mod config;
pub mod domain;
pub mod generator;
pub mod neymar;
pub mod persist;
pub mod scenarios;
pub mod template;
pub mod truth;

pub use bulk::{build_bulk_universe, BulkConfig, BulkWorld};
pub use config::SynthConfig;
pub use domain::DomainSpec;
pub use generator::{generate, SynthWorld};
pub use persist::{Corpus, CorpusError, CorpusHeader};
pub use template::{EventTemplate, RoleBinding, TemplateAction, WindowSpec};
pub use truth::{GroundTruth, PlantedError, PlantedEvent, SpuriousEdit};
