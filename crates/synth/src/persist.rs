//! Corpus persistence: save/load a generated world as JSON.
//!
//! A persisted corpus carries everything a downstream consumer needs to
//! re-run mining and detection — the universe (taxonomy, relations,
//! entities), the full two-year revision store, and (optionally) the
//! ground truth for evaluation. The `wiclean` CLI's `generate` / `mine` /
//! `detect` subcommands communicate through this format.

use crate::config::SynthConfig;
use crate::domain::DomainSpec;
use crate::generator::SynthWorld;
use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use wiclean_revstore::RevisionStore;
use wiclean_types::{TypeId, Universe};

/// A self-contained, serializable corpus.
#[derive(Serialize, Deserialize)]
pub struct Corpus {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Vocabulary and entity catalog.
    pub universe: Universe,
    /// The revision store.
    pub store: RevisionStore,
    /// Name of the seed type to mine for.
    pub seed_type: String,
    /// Ground truth (present for synthetic corpora; absent for corpora
    /// assembled from real revision logs).
    pub truth: Option<GroundTruth>,
    /// The generating domain spec, if synthetic.
    pub domain: Option<DomainSpec>,
    /// The generator configuration, if synthetic.
    pub synth_config: Option<SynthConfig>,
}

/// Current corpus format version.
pub const CORPUS_VERSION: u32 = 1;

impl Corpus {
    /// Wraps a generated world.
    pub fn from_world(world: SynthWorld) -> Self {
        Self {
            version: CORPUS_VERSION,
            seed_type: world.universe.type_name(world.seed_type).to_owned(),
            universe: world.universe,
            store: world.store,
            truth: Some(world.truth),
            domain: Some(world.domain),
            synth_config: Some(world.config),
        }
    }

    /// Resolves the seed type id in this corpus' universe.
    pub fn seed_type_id(&self) -> TypeId {
        self.universe
            .taxonomy()
            .require(&self.seed_type)
            .expect("corpus seed type must exist in its own universe")
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("corpus serializes")
    }

    /// Parses from JSON, validating the version.
    pub fn from_json(json: &str) -> Result<Self, CorpusError> {
        let corpus: Corpus = serde_json::from_str(json)?;
        if corpus.version != CORPUS_VERSION {
            return Err(CorpusError::Version(corpus.version));
        }
        Ok(corpus)
    }

    /// Writes the corpus to a file atomically: the JSON is written to a
    /// sibling temporary file and renamed into place, so a crash mid-write
    /// never leaves a truncated corpus at `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CorpusError> {
        self.save_with(&wiclean_revstore::RealFs, path.as_ref())
    }

    /// [`Corpus::save`] through an explicit filesystem, so fault-injection
    /// tests can fail the write at chosen points. The temporary file is
    /// cleaned up on *every* failure branch — a failed save leaves neither
    /// a truncated corpus nor `.tmp` litter behind.
    ///
    /// The JSON is *streamed*: the revision store — by far the largest
    /// section — is appended page by page in bounded chunks instead of
    /// being rendered into one giant in-memory string first. Serializing
    /// the whole corpus at once would briefly hold both the store and its
    /// JSON rendering resident, a ~2× peak-RSS spike exactly when a big
    /// generation run is already at its high-water mark. Pages are emitted
    /// in entity-id order, so the bytes are deterministic for a given
    /// corpus; the format is unchanged (a streamed file parses with
    /// [`Corpus::from_json`], and vice versa).
    pub fn save_with(
        &self,
        fs: &impl wiclean_revstore::Vfs,
        path: &Path,
    ) -> Result<(), CorpusError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        if let Err(e) = self.stream_json(fs, &tmp) {
            // A partial write (disk full, injected fault) may have created
            // the file before erroring.
            fs.remove(&tmp).ok();
            return Err(e);
        }
        if let Err(e) = fs.sync(&tmp) {
            fs.remove(&tmp).ok();
            return Err(e.into());
        }
        if let Err(e) = fs.rename(&tmp, path) {
            fs.remove(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }

    /// Streams the corpus JSON to `tmp`, flushing the buffer to the
    /// filesystem whenever it exceeds a fixed chunk size. Field layout
    /// mirrors the derived [`Serialize`] impl (the store serializes only
    /// its `pages`; crawl counters are process-local and skipped).
    fn stream_json(&self, fs: &impl wiclean_revstore::Vfs, tmp: &Path) -> Result<(), CorpusError> {
        use std::fmt::Write as _;
        const FLUSH_BYTES: usize = 4 << 20;
        fs.write(tmp, b"")?;
        let mut buf = String::with_capacity(FLUSH_BYTES + (64 << 10));
        buf.push_str("{\"version\":");
        let _ = write!(buf, "{}", self.version);
        buf.push_str(",\"universe\":");
        buf.push_str(&serde_json::to_string(&self.universe)?);
        buf.push_str(",\"store\":{\"pages\":{");
        let mut entities: Vec<wiclean_types::EntityId> = self.store.entities().collect();
        entities.sort_by_key(|e| e.as_u32());
        let mut first = true;
        for entity in entities {
            let history = self
                .store
                .peek(entity)
                .expect("listed entity has a history");
            if !first {
                buf.push(',');
            }
            first = false;
            let _ = write!(buf, "\"{}\":", entity.as_u32());
            buf.push_str(&serde_json::to_string(history)?);
            if buf.len() >= FLUSH_BYTES {
                fs.append(tmp, buf.as_bytes())?;
                buf.clear();
            }
        }
        buf.push_str("}},\"seed_type\":");
        buf.push_str(&serde_json::to_string(&self.seed_type)?);
        buf.push_str(",\"truth\":");
        buf.push_str(&serde_json::to_string(&self.truth)?);
        buf.push_str(",\"domain\":");
        buf.push_str(&serde_json::to_string(&self.domain)?);
        buf.push_str(",\"synth_config\":");
        buf.push_str(&serde_json::to_string(&self.synth_config)?);
        buf.push('}');
        fs.append(tmp, buf.as_bytes())?;
        Ok(())
    }

    /// Loads a corpus from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CorpusError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

/// The corpus' static side — universe and seed type, no revision data —
/// persisted next to an out-of-core store directory (`universe.json`) so
/// that `mine --backend disk` can resolve names and types without loading
/// a full corpus blob. The revisions live in the sharded segment files.
#[derive(Serialize, Deserialize)]
pub struct CorpusHeader {
    /// Format version, shared with [`Corpus`].
    pub version: u32,
    /// Vocabulary and entity catalog.
    pub universe: Universe,
    /// Name of the seed type to mine for.
    pub seed_type: String,
}

impl CorpusHeader {
    /// Extracts the header of a corpus.
    pub fn of(corpus: &Corpus) -> Self {
        Self {
            version: corpus.version,
            universe: corpus.universe.clone(),
            seed_type: corpus.seed_type.clone(),
        }
    }

    /// Resolves the seed type id in this header's universe.
    pub fn seed_type_id(&self) -> TypeId {
        self.universe
            .taxonomy()
            .require(&self.seed_type)
            .expect("header seed type must exist in its own universe")
    }

    /// Writes the header atomically (tmp + rename), like [`Corpus::save`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CorpusError> {
        let path = path.as_ref();
        let json = serde_json::to_string(self)?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, json.as_bytes())?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }

    /// Loads a header, validating the version.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CorpusError> {
        let header: CorpusHeader = serde_json::from_str(&std::fs::read_to_string(path)?)?;
        if header.version != CORPUS_VERSION {
            return Err(CorpusError::Version(header.version));
        }
        Ok(header)
    }
}

/// Errors loading or saving a corpus.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem error.
    Io(io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Unknown format version.
    Version(u32),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "corpus i/o error: {e}"),
            Self::Json(e) => write!(f, "corpus parse error: {e}"),
            Self::Version(v) => write!(
                f,
                "unsupported corpus version {v} (expected {CORPUS_VERSION})"
            ),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for CorpusError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, scenarios};

    #[test]
    fn corpus_round_trips_through_json() {
        let world = generate(scenarios::politics(), SynthConfig::tiny(31));
        let seed_type = world.seed_type;
        let pages = world.store.page_count();
        let revisions = world.store.revision_count();
        let events = world.truth.events.len();

        let corpus = Corpus::from_world(world);
        let json = corpus.to_json();
        let back = Corpus::from_json(&json).unwrap();

        assert_eq!(back.seed_type_id(), seed_type);
        assert_eq!(back.store.page_count(), pages);
        assert_eq!(back.store.revision_count(), revisions);
        assert_eq!(back.truth.as_ref().unwrap().events.len(), events);
        assert_eq!(back.domain.as_ref().unwrap().name, "us_politicians");
    }

    #[test]
    fn version_mismatch_rejected() {
        let world = generate(scenarios::politics(), SynthConfig::tiny(32));
        let mut corpus = Corpus::from_world(world);
        corpus.version = 99;
        let json = corpus.to_json();
        assert!(matches!(
            Corpus::from_json(&json),
            Err(CorpusError::Version(99))
        ));
    }

    #[test]
    fn save_and_load_file() {
        let world = generate(scenarios::politics(), SynthConfig::tiny(33));
        let corpus = Corpus::from_world(world);
        let dir = std::env::temp_dir().join("wiclean_corpus_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        corpus.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        assert_eq!(back.seed_type, corpus.seed_type);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let world = generate(scenarios::politics(), SynthConfig::tiny(36));
        let corpus = Corpus::from_world(world);
        let dir = std::env::temp_dir().join("wiclean_corpus_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        corpus.save(&path).unwrap();
        assert!(path.exists());
        assert!(!dir.join("corpus.json.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_save_cleans_up_its_temp_file() {
        use std::path::PathBuf;
        use std::sync::Arc;
        use wiclean_revstore::{FailKind, FailOp, FailSpec, FailpointFs, MemFs, Vfs};

        let world = generate(scenarios::politics(), SynthConfig::tiny(37));
        let corpus = Corpus::from_world(world);
        let dir = PathBuf::from("/out");
        let path = dir.join("corpus.json");

        // Fail the very write of the temporary file (e.g. disk full): the
        // partial tmp must be removed, not left behind.
        for (op, kind) in [
            (FailOp::Write, FailKind::ErrOnly),
            (FailOp::Rename, FailKind::ErrOnly),
        ] {
            let mem = Arc::new(MemFs::new());
            mem.create_dir_all(&dir).unwrap();
            let fs = FailpointFs::new(mem.clone(), FailSpec::once(op, 0, kind));
            assert!(corpus.save_with(&fs, &path).is_err());
            assert!(
                !mem.exists(&dir.join("corpus.json.tmp")),
                "{op:?} failure left the temp file behind"
            );
            assert!(!mem.exists(&path), "no corpus must appear either");
        }

        // And a fault-free save through the same path round-trips.
        let mem = Arc::new(MemFs::new());
        mem.create_dir_all(&dir).unwrap();
        corpus.save_with(&*mem, &path).unwrap();
        assert!(!mem.exists(&dir.join("corpus.json.tmp")));
        let back =
            Corpus::from_json(std::str::from_utf8(&mem.read(&path).unwrap()).unwrap()).unwrap();
        assert_eq!(back.seed_type, corpus.seed_type);
    }

    #[test]
    fn streamed_save_parses_identically_to_derived_json() {
        use std::path::PathBuf;
        use std::sync::Arc;
        use wiclean_revstore::{MemFs, Vfs};

        let world = generate(scenarios::politics(), SynthConfig::tiny(38));
        let corpus = Corpus::from_world(world);
        let mem = Arc::new(MemFs::new());
        let dir = PathBuf::from("/out");
        mem.create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        corpus.save_with(&*mem, &path).unwrap();
        let streamed = String::from_utf8(mem.read(&path).unwrap()).unwrap();
        let from_stream = Corpus::from_json(&streamed).unwrap();
        let from_derive = Corpus::from_json(&corpus.to_json()).unwrap();
        assert_eq!(from_stream.store, from_derive.store);
        assert_eq!(from_stream.seed_type, from_derive.seed_type);
        assert_eq!(
            from_stream.truth.as_ref().unwrap().events.len(),
            from_derive.truth.as_ref().unwrap().events.len()
        );
        assert_eq!(
            from_stream.universe.entities().len(),
            from_derive.universe.entities().len()
        );
    }

    #[test]
    fn truncated_corpus_is_a_parse_error_not_a_panic() {
        let world = generate(scenarios::politics(), SynthConfig::tiny(35));
        let corpus = Corpus::from_world(world);
        let json = corpus.to_json();
        // Simulate a corpus file cut short by a crash mid-write.
        let mut cut = json.len() / 2;
        while !json.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &json[..cut];
        let dir = std::env::temp_dir().join("wiclean_corpus_truncated_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        std::fs::write(&path, truncated).unwrap();
        assert!(matches!(Corpus::load(&path), Err(CorpusError::Json(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mining_a_reloaded_corpus_matches_the_original() {
        use wiclean_core::config::MinerConfig;
        use wiclean_core::miner::WindowMiner;
        use wiclean_types::{Window, DAY};

        let world = generate(scenarios::politics(), SynthConfig::tiny(34));
        let config = MinerConfig {
            tau: 0.3,
            max_abstraction_height: 1,
            mine_relative: false,
            ..MinerConfig::default()
        };
        let window = Window::new(14 * DAY, 28 * DAY);

        let before: Vec<_> = {
            let miner = WindowMiner::new(&world.store, &world.universe, config);
            miner
                .mine_window(world.seed_type, &window)
                .most_specific()
                .map(|p| p.pattern.clone())
                .collect()
        };

        let corpus = Corpus::from_world(world);
        let back = Corpus::from_json(&corpus.to_json()).unwrap();
        let miner = WindowMiner::new(&back.store, &back.universe, config);
        let after: Vec<_> = miner
            .mine_window(back.seed_type_id(), &window)
            .most_specific()
            .map(|p| p.pattern.clone())
            .collect();

        assert_eq!(before, after);
    }
}
