//! Streaming million-entity corpus generator.
//!
//! The template-driven generator ([`crate::generate`]) materializes the
//! whole world — universe, ground truth, and every revision — in memory,
//! which is exactly right for correctness corpora and exactly wrong for
//! scale testing: a million entities of wikitext do not fit next to the
//! miner. This module generates the same *shape* of corpus (soccer
//! players transferring between clubs, the paper's running example) as a
//! stream: the universe is built once (names and types only), and page
//! histories are produced one entity at a time, deterministically from
//! the seed, so the caller can append each history to an out-of-core
//! [`wiclean_revstore::ShardedStore`] and drop it before the next is
//! generated. Peak memory is one history, not one corpus.
//!
//! Every player performs a club transfer inside a fixed two-week window
//! (`[BulkConfig::transfer_window]`), so mining the seed type over that
//! window discovers the change pattern (remove `current_club(Club_a)`,
//! add `current_club(Club_b)`) with frequency ≈ 1 — a deterministic target
//! for the backend-differential check, at any corpus size. The remaining
//! revisions are single-line statistics edits: they exercise the
//! delta-encoder's best case (Wikipedia's dominant edit shape) without
//! adding link actions that could perturb mining.

use rand::prelude::*;
use rand::rngs::StdRng;
use wiclean_revstore::mix64;
use wiclean_types::{EntityId, Timestamp, TypeId, Universe, DAY, HOUR};
use wiclean_wikitext::render::render_links;
use wiclean_wikitext::PageLinks;

/// Knobs of the streaming generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkConfig {
    /// Seed-type entities (soccer players). Each gets its own history.
    pub players: u32,
    /// Transfer-target entities (soccer clubs). Each gets a small page.
    pub clubs: u32,
    /// Revisions per player page, including the creation revision and the
    /// transfer edit (≥ 2).
    pub revisions_per_player: u32,
    /// Master seed; the whole corpus is a pure function of it.
    pub seed: u64,
}

impl BulkConfig {
    /// A configuration sized for tests: small enough to diff against an
    /// in-memory store exhaustively.
    pub fn small(seed: u64) -> Self {
        Self {
            players: 200,
            clubs: 16,
            revisions_per_player: 8,
            seed,
        }
    }

    /// Start of the two-week transfer window every player's club change
    /// falls inside.
    pub const fn transfer_window_start() -> Timestamp {
        210 * DAY
    }

    /// End of the transfer window.
    pub const fn transfer_window_end() -> Timestamp {
        224 * DAY
    }

    /// Total entities the universe will contain.
    pub fn entity_total(&self) -> u64 {
        u64::from(self.players) + u64::from(self.clubs)
    }

    /// Validates the knob values.
    pub fn validate(&self) -> Result<(), String> {
        if self.players == 0 {
            return Err("bulk config: players must be at least 1".to_owned());
        }
        if self.clubs < 2 {
            return Err("bulk config: need at least 2 clubs to transfer between".to_owned());
        }
        if self.revisions_per_player < 2 {
            return Err("bulk config: revisions_per_player must be at least 2".to_owned());
        }
        Ok(())
    }
}

/// The streamed corpus' static side: the universe and resolved type ids.
pub struct BulkWorld {
    /// Names, taxonomy, and relations for every entity.
    pub universe: Universe,
    /// The seed type to mine (`SoccerPlayer`).
    pub seed_type: TypeId,
    /// The transfer-target type (`SoccerClub`).
    pub club_type: TypeId,
    /// The generating configuration.
    pub config: BulkConfig,
    /// Player entity ids, in generation order (dense, clubs follow).
    players: Vec<EntityId>,
    /// Club entity ids.
    clubs: Vec<EntityId>,
}

/// Builds the universe for `config`: players and clubs with deterministic
/// names, the `current_club` relation, and the two-level soccer taxonomy
/// the template scenarios use. Histories are *not* generated here — see
/// [`BulkWorld::histories`].
pub fn build_bulk_universe(config: BulkConfig) -> BulkWorld {
    config.validate().expect("valid bulk config");
    let mut universe = Universe::new("Thing");
    let root = universe.taxonomy().root();
    universe.relation("current_club");
    let player_type = universe
        .taxonomy_mut()
        .add_path(root, &["Agent", "Person", "Athlete", "SoccerPlayer"])
        .unwrap();
    let club_type = universe
        .taxonomy_mut()
        .add_path(root, &["Agent", "Organisation", "SportsTeam", "SoccerClub"])
        .unwrap();
    let mut players = Vec::with_capacity(config.players as usize);
    for i in 0..config.players {
        players.push(
            universe
                .add_entity(&format!("Player {i:07}"), player_type)
                .unwrap(),
        );
    }
    let mut clubs = Vec::with_capacity(config.clubs as usize);
    for i in 0..config.clubs {
        clubs.push(
            universe
                .add_entity(&format!("Club {i:04}"), club_type)
                .unwrap(),
        );
    }
    BulkWorld {
        universe,
        seed_type: player_type,
        club_type,
        config,
        players,
        clubs,
    }
}

impl BulkWorld {
    /// All player ids, in generation order.
    pub fn players(&self) -> &[EntityId] {
        &self.players
    }

    /// Iterator over every entity's revision history, one entity at a
    /// time: `(entity, [(time, text)])`, revisions in chronological
    /// order. Each history is generated on demand and owned by the
    /// caller — dropping it before the next keeps peak memory at one
    /// history regardless of corpus size.
    pub fn histories(&self) -> impl Iterator<Item = (EntityId, Vec<(Timestamp, String)>)> + '_ {
        let players = self
            .players
            .iter()
            .map(move |&e| (e, self.player_history(e)));
        let clubs = self.clubs.iter().map(move |&e| (e, self.club_history(e)));
        players.chain(clubs)
    }

    /// The deterministic history of one player page: creation (with the
    /// initial club link), single-line statistics edits spread over the
    /// year, and exactly one club transfer inside the transfer window.
    fn player_history(&self, entity: EntityId) -> Vec<(Timestamp, String)> {
        let mut rng =
            StdRng::seed_from_u64(mix64(self.config.seed ^ (u64::from(entity.as_u32()) << 1)));
        let name = self.universe.entity_name(entity).to_owned();
        let from_ix = (rng.gen_range(0..u64::from(self.config.clubs))) as usize;
        let mut to_ix = (rng.gen_range(0..u64::from(self.config.clubs - 1))) as usize;
        if to_ix >= from_ix {
            to_ix += 1;
        }
        let transfer_at = BulkConfig::transfer_window_start()
            + rng.gen_range(0..(7 * DAY))
            + rng.gen_range(0..DAY);

        let mut links = PageLinks::default();
        links.links.insert((
            "current_club".to_owned(),
            self.universe.entity_name(self.clubs[from_ix]).to_owned(),
        ));

        let noise = self.config.revisions_per_player - 2;
        let mut revisions = Vec::with_capacity(self.config.revisions_per_player as usize);
        let created = rng.gen_range(0..DAY);
        revisions.push((created, page_text(&name, &links, 0)));
        // Noise edits at strictly increasing times across the year,
        // avoiding the transfer timestamp so the edit sequence is
        // unambiguous.
        let mut edits_before_transfer = 0;
        for i in 0..noise {
            let t = created + 1 + u64::from(i) * (360 * DAY / u64::from(noise.max(1)));
            let t = if t == transfer_at { t + HOUR } else { t };
            if t < transfer_at {
                edits_before_transfer = i + 1;
            }
            revisions.push((
                t,
                page_text(&name, &links_at(&links, t, transfer_at, self, to_ix), i + 1),
            ));
        }
        // The transfer edit touches ONLY the infobox club link: it keeps
        // the chronologically previous revision's statistics counter, so
        // its line-splice delta stays one line, like a real editor's edit.
        revisions.push((
            transfer_at,
            page_text(
                &name,
                &links_at(&links, transfer_at, transfer_at, self, to_ix),
                edits_before_transfer,
            ),
        ));
        revisions.sort_by_key(|&(t, _)| t);
        revisions
    }

    /// The deterministic history of one club page: a creation revision and
    /// one later touch-up, both tiny.
    fn club_history(&self, entity: EntityId) -> Vec<(Timestamp, String)> {
        let mut rng = StdRng::seed_from_u64(mix64(
            self.config.seed ^ (u64::from(entity.as_u32()) << 1) ^ 1,
        ));
        let name = self.universe.entity_name(entity).to_owned();
        let links = PageLinks::default();
        let created = rng.gen_range(0..DAY);
        vec![
            (created, page_text(&name, &links, 0)),
            (created + 30 * DAY, page_text(&name, &links, 1)),
        ]
    }
}

/// The link state of a player page at `time`: the initial club before the
/// transfer, the destination club at and after it.
fn links_at(
    initial: &PageLinks,
    time: Timestamp,
    transfer_at: Timestamp,
    world: &BulkWorld,
    to_ix: usize,
) -> PageLinks {
    if time < transfer_at {
        return initial.clone();
    }
    let mut links = PageLinks::default();
    links.links.insert((
        "current_club".to_owned(),
        world.universe.entity_name(world.clubs[to_ix]).to_owned(),
    ));
    links
}

/// Renders a page revision: the structured link section (what mining
/// sees), a static prose body sized like a real article (what makes
/// full-text snapshots expensive), and an appended single statistics line
/// that changes every revision (what the delta encoder sees — one spliced
/// line, the dominant Wikipedia edit shape).
fn page_text(name: &str, links: &PageLinks, edit: u32) -> String {
    let mut text = render_links(name, "football biography", links);
    text.push_str("\n== Biography ==\n");
    for paragraph in [
        "was born into a footballing family and joined the local academy at a young age,",
        "progressing through every youth level before signing professional terms.",
        "Scouts praised an unusual combination of vision, work rate, and composure",
        "under pressure, and a first-team debut followed within two seasons.",
        "",
        "== Style of play ==",
        "Deployed across several attacking positions, the player is noted for",
        "intelligent movement between the lines and a high pressing intensity,",
        "with set-piece delivery considered a particular strength by coaches.",
        "",
        "== Personal life ==",
        "Away from the pitch the player supports several community initiatives",
        "around the home town and has spoken publicly about grassroots funding.",
    ] {
        if paragraph.starts_with("==") || paragraph.is_empty() {
            text.push_str(paragraph);
        } else {
            text.push_str(name);
            text.push(' ');
            text.push_str(paragraph);
        }
        text.push('\n');
    }
    text.push_str("\nCareer statistics last updated in revision ");
    text.push_str(&edit.to_string());
    text.push_str(".\n");
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_corpus_is_deterministic() {
        let a = build_bulk_universe(BulkConfig::small(7));
        let b = build_bulk_universe(BulkConfig::small(7));
        let ha: Vec<_> = a.histories().collect();
        let hb: Vec<_> = b.histories().collect();
        assert_eq!(ha, hb);
        assert_eq!(
            ha.len() as u64,
            BulkConfig::small(7).entity_total(),
            "every entity gets a history"
        );
    }

    #[test]
    fn every_player_transfers_inside_the_window() {
        let world = build_bulk_universe(BulkConfig::small(11));
        for &player in world.players() {
            let history = world
                .histories()
                .find(|(e, _)| *e == player)
                .map(|(_, h)| h)
                .unwrap();
            assert!(history.len() >= 2);
            // Exactly one revision changes the club link, inside the window.
            let mut changes = 0;
            for pair in history.windows(2) {
                let before = wiclean_wikitext::parse_page(&pair[0].1);
                let after = wiclean_wikitext::parse_page(&pair[1].1);
                if before.links != after.links {
                    changes += 1;
                    assert!(pair[1].0 >= BulkConfig::transfer_window_start());
                    assert!(pair[1].0 < BulkConfig::transfer_window_end());
                }
            }
            assert_eq!(changes, 1, "one club transfer per player");
        }
    }

    #[test]
    fn consecutive_revisions_differ_by_few_lines() {
        let world = build_bulk_universe(BulkConfig::small(13));
        let (_, history) = world.histories().next().unwrap();
        for pair in history.windows(2) {
            let before: Vec<&str> = pair[0].1.lines().collect();
            let after: Vec<&str> = pair[1].1.lines().collect();
            let changed = before
                .iter()
                .zip(after.iter())
                .filter(|(a, b)| a != b)
                .count()
                + before.len().abs_diff(after.len());
            assert!(
                changed <= 3,
                "bulk edits must be small for delta encoding, saw {changed} changed lines"
            );
        }
    }
}
