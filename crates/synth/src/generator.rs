//! The corpus generator: turns a [`DomainSpec`] into a universe, a
//! two-year revision store, and exact ground truth.
//!
//! Everything the miner sees goes through the real pipeline: the generator
//! keeps a live [`PageLinks`] state per page, and after every link edit it
//! re-renders the page to wikitext and appends a revision — exactly like
//! editors saving pages. Planted event instances are scheduled on a global
//! clock, so per-page revision timestamps are naturally monotone.

use crate::config::SynthConfig;
use crate::domain::{DomainSpec, InitLink};
use crate::template::{EventTemplate, RoleBinding, TemplateAction, WindowSpec};
use crate::truth::{ConcreteEdit, GroundTruth, PlantedError, PlantedEvent, SpuriousEdit};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;
use wiclean_revstore::RevisionStore;
use wiclean_types::{EntityId, Timestamp, TypeId, Universe, DAY, HOUR, MINUTE, WEEK, YEAR};
use wiclean_wikitext::render::render_links;
use wiclean_wikitext::{EditOp, PageLinks};

/// A generated world: universe + two-year revision store + ground truth.
pub struct SynthWorld {
    /// The vocabulary and entity catalog.
    pub universe: Universe,
    /// Two years of page revisions.
    pub store: RevisionStore,
    /// What was planted.
    pub truth: GroundTruth,
    /// The domain that produced it.
    pub domain: DomainSpec,
    /// The generator configuration used.
    pub config: SynthConfig,
    /// Resolved seed type.
    pub seed_type: TypeId,
    /// The seed entities.
    pub seeds: Vec<EntityId>,
}

impl SynthWorld {
    /// The mining timeline of "year one": starts after the page-creation
    /// period (first two weeks) so creation edits don't masquerade as
    /// coordinated patterns; ends at the year boundary.
    pub fn mining_span(&self) -> (Timestamp, Timestamp) {
        (2 * WEEK, YEAR)
    }

    /// The second-year span (the "2019" correction log).
    pub fn year2_span(&self) -> (Timestamp, Timestamp) {
        (YEAR, 2 * YEAR)
    }

    /// The expert pattern list for this world's domain.
    pub fn expert_list(&self) -> Vec<(String, wiclean_core::pattern::Pattern, bool)> {
        self.domain.expert_list(&self.universe)
    }
}

/// Mutable world-building state.
struct Engine {
    universe: Universe,
    store: RevisionStore,
    state: HashMap<EntityId, PageLinks>,
    infobox: HashMap<EntityId, String>,
    rng: StdRng,
    truth: GroundTruth,
}

impl Engine {
    /// Records the current state of `e` as a revision at `time` (bumped to
    /// stay monotone per page — `PageHistory` enforces this).
    fn snapshot(&mut self, e: EntityId, time: Timestamp) {
        let t = self
            .store
            .peek(e)
            .and_then(|h| h.revisions().last().map(|r| r.time + 1))
            .map_or(time, |min| time.max(min));
        let kind = self.infobox.get(&e).cloned().unwrap_or_default();
        let text = render_links(
            self.universe.entity_name(e),
            &kind,
            self.state.get(&e).unwrap_or(&PageLinks::default()),
        );
        self.store.record(e, t, text);
    }

    /// Whether `edit` is applicable to the current state.
    fn applicable(&self, edit: &ConcreteEdit) -> bool {
        let rel = self
            .universe
            .relation_name(wiclean_types::RelId::from_u32(edit.rel))
            .to_owned();
        let target = self.universe.entity_name(edit.target).to_owned();
        let has = self
            .state
            .get(&edit.source)
            .is_some_and(|p| p.contains(&rel, &target));
        match edit.op {
            EditOp::Add => !has,
            EditOp::Remove => has,
        }
    }

    /// Applies `edit` to the page state and records the new revision.
    /// Panics if inapplicable (callers must check).
    fn apply(&mut self, edit: &ConcreteEdit, time: Timestamp) {
        let rel = self
            .universe
            .relation_name(wiclean_types::RelId::from_u32(edit.rel))
            .to_owned();
        let target = self.universe.entity_name(edit.target).to_owned();
        let page = self.state.entry(edit.source).or_default();
        match edit.op {
            EditOp::Add => {
                assert!(page.insert(&rel, &target), "inapplicable add");
            }
            EditOp::Remove => {
                assert!(
                    page.links.remove(&(rel.clone(), target.clone())),
                    "inapplicable remove"
                );
            }
        }
        self.snapshot(edit.source, time);
    }

    /// Applies `edit`, optionally wrapped in revert noise: the edit, its
    /// inverse, and the edit again — the `R = 0` churn of Figure 1.
    fn apply_noisy(&mut self, edit: &ConcreteEdit, time: Timestamp, revert_rate: f64) {
        self.apply(edit, time);
        if self.rng.gen_bool(revert_rate) {
            let inverse = ConcreteEdit {
                op: edit.op.inverse(),
                ..*edit
            };
            self.apply(&inverse, time + 23 * MINUTE);
            self.apply(edit, time + 61 * MINUTE);
        }
    }

    /// Entities of a type (by name), exact leaf populations included.
    fn entities_of(&self, ty_name: &str) -> Vec<EntityId> {
        let ty = self
            .universe
            .taxonomy()
            .require(ty_name)
            .unwrap_or_else(|e| panic!("{e}"));
        self.universe.entities_of(ty)
    }

    /// The entities currently linked from `page` via `rel`.
    fn linked_targets(&self, page: EntityId, rel: &str) -> Vec<EntityId> {
        let Some(links) = self.state.get(&page) else {
            return Vec::new();
        };
        links
            .links
            .iter()
            .filter(|(r, _)| r == rel)
            .filter_map(|(_, t)| self.universe.entities().lookup(t))
            .collect()
    }

    /// Whether `page` links to `target` via `rel`.
    fn has_link(&self, page: EntityId, rel: &str, target: EntityId) -> bool {
        self.state
            .get(&page)
            .is_some_and(|p| p.contains(rel, self.universe.entity_name(target)))
    }
}

/// One scheduled job on the simulation clock.
enum Job {
    Event { template_ix: usize, seed: EntityId },
    Spurious { template_ix: usize },
    Vandalism,
    DistractorEdit,
}

/// Generates a world from a domain spec and configuration.
pub fn generate(domain: DomainSpec, config: SynthConfig) -> SynthWorld {
    domain.validate();
    let mut rng = StdRng::seed_from_u64(config.rng_seed);

    // ---- Universe -------------------------------------------------------
    let mut universe = Universe::new("Thing");
    let root = universe.taxonomy().root();
    for rel in &domain.relations {
        universe.relation(rel);
    }
    for rel in ["located_in", "band_member", "released_album"] {
        universe.relation(rel);
    }

    let mut infobox: HashMap<EntityId, String> = HashMap::new();
    let mut populations: HashMap<String, Vec<EntityId>> = HashMap::new();
    for pop in &domain.populations {
        let ty = {
            let path: Vec<&str> = pop.ty_path.iter().map(String::as_str).collect();
            universe.taxonomy_mut().add_path(root, &path).unwrap()
        };
        let n = pop.count.resolve(config.seed_count);
        let leaf = pop.ty_path.last().unwrap().clone();
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            let e = universe
                .add_entity(&format!("{} {i:04}", pop.name_prefix), ty)
                .unwrap();
            infobox.insert(e, leaf.to_lowercase());
            ids.push(e);
        }
        populations.insert(leaf, ids);
    }

    // Distractor populations shared by every domain.
    let mut distractors: Vec<EntityId> = Vec::new();
    for (i, (path, prefix)) in [
        (vec!["Place", "City"], "City"),
        (vec!["Agent", "Organisation", "MusicBand"], "Band"),
        (vec!["Work", "Album"], "Album"),
    ]
    .into_iter()
    .enumerate()
    {
        let ty = universe.taxonomy_mut().add_path(root, &path).unwrap();
        let n = config.distractor_entities / 3 + usize::from(i == 0);
        for j in 0..n {
            let e = universe
                .add_entity(&format!("{prefix} {j:04}"), ty)
                .unwrap();
            infobox.insert(e, prefix.to_lowercase());
            distractors.push(e);
        }
    }

    let seed_type = universe.taxonomy().require(&domain.seed_type).unwrap();
    let seeds = populations[&domain.seed_type].clone();

    let mut engine = Engine {
        universe,
        store: RevisionStore::new(),
        state: HashMap::new(),
        infobox,
        rng: StdRng::seed_from_u64(config.rng_seed.wrapping_add(1)),
        truth: GroundTruth::default(),
    };

    // ---- Initial state (day 0) ------------------------------------------
    apply_init_rules(&mut engine, &domain.init, &populations, &mut rng);
    // Creation revisions for every page within the first hour.
    let mut all_entities: Vec<EntityId> = engine.universe.entities().iter().collect();
    all_entities.sort_unstable();
    for &e in &all_entities {
        engine.state.entry(e).or_default();
        let t = rng.gen_range(0..HOUR);
        engine.snapshot(e, t);
    }

    // ---- Schedule year-one jobs -----------------------------------------
    // Templates in the same exclusivity group draw *disjoint* seed samples
    // (a player transfers or retires in a year, never both) so that
    // year-wide reduction cannot cancel one event's edits against the
    // other's. Each group keeps a shuffled pool and templates take their
    // quota from its front.
    let mut group_pools: HashMap<String, Vec<EntityId>> = HashMap::new();
    for template in &domain.templates {
        if let Some(g) = &template.exclusive_group {
            group_pools.entry(g.clone()).or_insert_with(|| {
                let mut pool = seeds.clone();
                pool.shuffle(&mut rng);
                pool
            });
        }
    }

    let mut jobs: Vec<(Timestamp, Job)> = Vec::new();
    let mut expected_errors = 0.0f64;
    let mut firing_sets: Vec<std::collections::HashSet<EntityId>> =
        vec![Default::default(); domain.templates.len()];
    engine.truth.planned_events = vec![0; domain.templates.len()];
    engine.truth.skipped_events = vec![0; domain.templates.len()];
    for (tix, template) in domain.templates.iter().enumerate() {
        let (span_start, span_end) = match template.window {
            WindowSpec::Annual { .. } => template.window.span(0),
            // Window-less templates spread over the year, after creation.
            WindowSpec::Uniform => (2 * WEEK, YEAR),
        };
        // Leave room for per-action jitter at the window tail.
        let jitter_budget = ((span_end - span_start) / 5).max(HOUR);

        let firing: Vec<EntityId> = match &template.exclusive_group {
            Some(g) => {
                let pool = group_pools.get_mut(g).expect("group pool exists");
                let quota = ((seeds.len() as f64) * template.fire_rate).round() as usize;
                let take = quota.min(pool.len());
                pool.split_off(pool.len() - take)
            }
            None => seeds
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(template.fire_rate))
                .collect(),
        };
        for seed in firing {
            engine.truth.planned_events[tix] += 1;
            firing_sets[tix].insert(seed);
            let base = rng.gen_range(span_start..span_end - jitter_budget);
            jobs.push((
                base,
                Job::Event {
                    template_ix: tix,
                    seed,
                },
            ));
            expected_errors += (template.actions.len() - 1) as f64 * (1.0 - template.completion);
        }
    }

    // Spurious one-sided edits, calibrated as a fraction of the expected
    // planted errors (§6.3: they keep the verified fraction below 100%).
    let windowed: Vec<usize> = domain
        .templates
        .iter()
        .enumerate()
        .filter(|(_, t)| t.window.is_windowed() && t.actions.len() >= 2)
        .map(|(i, _)| i)
        .collect();
    let spurious_target = (expected_errors * config.spurious_factor).round() as usize;
    for _ in 0..spurious_target {
        if windowed.is_empty() {
            break;
        }
        let tix = windowed[rng.gen_range(0..windowed.len())];
        let (s, e) = domain.templates[tix].window.span(0);
        let t = rng.gen_range(s..e);
        jobs.push((t, Job::Spurious { template_ix: tix }));
    }

    // Vandalism and distractor churn.
    let vandal_count =
        (all_entities.len() as f64 * config.vandalism_per_100_entities / 100.0) as usize;
    for _ in 0..vandal_count {
        jobs.push((rng.gen_range(2 * WEEK..YEAR), Job::Vandalism));
    }
    let distractor_edits = (distractors.len() as f64 * config.distractor_edits_per_entity) as usize;
    for _ in 0..distractor_edits {
        jobs.push((rng.gen_range(2 * WEEK..YEAR), Job::DistractorEdit));
    }

    jobs.sort_by_key(|(t, _)| *t);

    // ---- Execute year one -----------------------------------------------
    for (time, job) in jobs {
        match job {
            Job::Event { template_ix, seed } => {
                fire_event(
                    &mut engine,
                    &domain,
                    template_ix,
                    seed,
                    time,
                    &config,
                    &firing_sets[template_ix],
                );
            }
            Job::Spurious { template_ix } => {
                fire_spurious(
                    &mut engine,
                    &domain,
                    template_ix,
                    &seeds,
                    time,
                    &firing_sets[template_ix],
                );
            }
            Job::Vandalism => {
                fire_vandalism(&mut engine, &all_entities, &domain, time);
            }
            Job::DistractorEdit => {
                fire_distractor(&mut engine, &distractors, time);
            }
        }
    }

    // ---- Year two: corrections ------------------------------------------
    let mut corrections: Vec<(Timestamp, usize)> = Vec::new();
    for (ix, _) in engine.truth.errors.iter().enumerate() {
        if engine.rng.gen_bool(config.correction_rate) {
            corrections.push((engine.rng.gen_range(YEAR..2 * YEAR - DAY), ix));
        }
    }
    corrections.sort_unstable();
    for (time, ix) in corrections {
        let missing = engine.truth.errors[ix].missing;
        if engine.applicable(&missing) {
            engine.apply(&missing, time);
            engine.truth.errors[ix].corrected_in_y2 = true;
            engine.truth.errors[ix].correction_time = Some(time);
        }
    }

    SynthWorld {
        universe: engine.universe,
        store: engine.store,
        truth: engine.truth,
        domain,
        config,
        seed_type,
        seeds,
    }
}

/// Applies the domain's initial-state link rules (before any revision is
/// recorded — the creation snapshot includes them).
fn apply_init_rules(
    engine: &mut Engine,
    rules: &[InitLink],
    populations: &HashMap<String, Vec<EntityId>>,
    rng: &mut StdRng,
) {
    for rule in rules {
        let sources = populations
            .get(&rule.src_ty)
            .unwrap_or_else(|| panic!("init rule: unknown type `{}`", rule.src_ty))
            .clone();
        let targets = populations
            .get(&rule.tgt_ty)
            .unwrap_or_else(|| panic!("init rule: unknown type `{}`", rule.tgt_ty))
            .clone();
        assert!(
            !targets.is_empty(),
            "init rule with empty target population"
        );
        for &src in &sources {
            let mut chosen: Vec<EntityId> = Vec::new();
            let mut guard = 0;
            while chosen.len() < rule.per_entity && guard < 50 {
                guard += 1;
                let t = targets[rng.gen_range(0..targets.len())];
                if t != src && !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            for t in chosen {
                let tname = engine.universe.entity_name(t).to_owned();
                engine
                    .state
                    .entry(src)
                    .or_default()
                    .insert(&rule.rel, &tname);
                if let Some(rec) = &rule.reciprocal {
                    let sname = engine.universe.entity_name(src).to_owned();
                    engine.state.entry(t).or_default().insert(rec, &sname);
                }
            }
        }
    }
}

/// Resolves a role binding to an entity, given the already-bound roles.
fn resolve_role(
    engine: &mut Engine,
    binding: &RoleBinding,
    bound: &[EntityId],
    seed: EntityId,
    firing: &std::collections::HashSet<EntityId>,
) -> Option<EntityId> {
    match binding {
        RoleBinding::Seed => Some(seed),
        RoleBinding::Fresh { ty, from_role, rel } => {
            let from = *bound.get(*from_role)?;
            let pool = engine.entities_of(ty);
            if pool.is_empty() {
                return None;
            }
            for _ in 0..30 {
                let cand = pool[engine.rng.gen_range(0..pool.len())];
                if !bound.contains(&cand) && !engine.has_link(from, rel, cand) {
                    return Some(cand);
                }
            }
            None
        }
        RoleBinding::ExistingTarget {
            of_role,
            rel,
            avoid_cofiring,
            ..
        } => {
            let of = *bound.get(*of_role)?;
            let mut targets = engine.linked_targets(of, rel);
            targets.retain(|t| !bound.contains(t));
            if *avoid_cofiring {
                targets.retain(|t| !firing.contains(t));
            }
            if targets.is_empty() {
                None
            } else {
                Some(targets[engine.rng.gen_range(0..targets.len())])
            }
        }
    }
}

/// Resolves a template action against bound roles into a concrete edit.
fn concretize(engine: &Engine, action: &TemplateAction, bound: &[EntityId]) -> ConcreteEdit {
    let rel = engine
        .universe
        .lookup_relation(&action.rel)
        .unwrap_or_else(|| panic!("unknown relation `{}`", action.rel))
        .as_u32();
    ConcreteEdit {
        op: action.op,
        source: bound[action.source],
        rel,
        target: bound[action.target],
    }
}

/// Fires one event instance: resolves roles, checks applicability, applies
/// the performed actions, and records the ground truth.
#[allow(clippy::too_many_arguments)]
fn fire_event(
    engine: &mut Engine,
    domain: &DomainSpec,
    template_ix: usize,
    seed: EntityId,
    base_time: Timestamp,
    config: &SynthConfig,
    firing: &std::collections::HashSet<EntityId>,
) {
    let template: &EventTemplate = &domain.templates[template_ix];

    // Resolve base roles and check applicability, redrawing the random
    // bindings on failure (e.g. an `avoid_cofiring` target whose only
    // candidate is itself firing, or a Fresh draw colliding with state):
    // a blocked editor would simply pick a different page, not abandon the
    // edit. Give up after a few attempts so impossible events still skip.
    let mut resolved: Option<(Vec<EntityId>, Vec<ConcreteEdit>)> = None;
    for _attempt in 0..10 {
        let mut bound: Vec<EntityId> = Vec::with_capacity(template.roles.len());
        let mut ok = true;
        for (_, binding) in &template.roles {
            match resolve_role(engine, binding, &bound, seed, firing) {
                Some(e) => bound.push(e),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // All base actions must be applicable for the instance to fire
        // (keeps the ground truth free of state-conflict noise). Point
        // checks suffice: template actions touch distinct link slots.
        let edits: Vec<ConcreteEdit> = template
            .actions
            .iter()
            .map(|a| concretize(engine, a, &bound))
            .collect();
        if edits.iter().all(|e| engine.applicable(e)) {
            resolved = Some((bound, edits));
            break;
        }
    }
    let Some((mut bound, edits)) = resolved else {
        engine.truth.skipped_events[template_ix] += 1;
        return; // unresolvable — the event does not happen
    };

    // Decide which sub-flows fire and resolve their roles.
    let mut ext_fired = Vec::with_capacity(template.extensions.len());
    let mut ext_edits: Vec<Vec<ConcreteEdit>> = Vec::new();
    for ext in &template.extensions {
        let mut fired = engine.rng.gen_bool(ext.probability);
        let mut resolved = Vec::new();
        if fired {
            let mut ext_bound = bound.clone();
            for (_, binding) in &ext.roles {
                match resolve_role(engine, binding, &ext_bound, seed, firing) {
                    Some(e) => ext_bound.push(e),
                    None => {
                        fired = false;
                        break;
                    }
                }
            }
            if fired {
                resolved = ext
                    .actions
                    .iter()
                    .map(|a| concretize(engine, a, &ext_bound))
                    .collect();
                if !resolved.iter().all(|e| engine.applicable(e)) {
                    fired = false;
                    resolved = Vec::new();
                }
                bound = ext_bound;
            }
        }
        ext_fired.push(fired);
        ext_edits.push(resolved);
    }

    // Perform the base actions with per-action jitter; skip non-trigger
    // actions with probability 1 − completion (planting errors).
    let event_ix = engine.truth.events.len();
    let mut performed = Vec::with_capacity(edits.len());
    let mut t = base_time;
    for (i, edit) in edits.iter().enumerate() {
        let done = i == 0 || engine.rng.gen_bool(template.completion);
        performed.push(done);
        if done {
            engine.apply_noisy(edit, t, config.revert_rate);
        } else {
            engine.truth.errors.push(PlantedError {
                event_ix,
                action_ix: i,
                missing: *edit,
                corrected_in_y2: false,
                correction_time: None,
            });
        }
        t += engine.rng.gen_range(10 * MINUTE..4 * HOUR);
    }

    // Extension actions are fully performed when the sub-flow fires.
    for resolved in &ext_edits {
        for edit in resolved {
            engine.apply_noisy(edit, t, config.revert_rate);
            t += engine.rng.gen_range(10 * MINUTE..2 * HOUR);
        }
    }

    engine.truth.events.push(PlantedEvent {
        template_ix,
        seed,
        bindings: bound,
        time: base_time,
        performed,
        extensions_fired: ext_fired,
    });
}

/// Fires one spurious one-sided edit mimicking `template`'s second action,
/// choosing participants so that no matching trigger exists.
fn fire_spurious(
    engine: &mut Engine,
    domain: &DomainSpec,
    template_ix: usize,
    seeds: &[EntityId],
    time: Timestamp,
    firing: &std::collections::HashSet<EntityId>,
) {
    let template = &domain.templates[template_ix];
    // Mimic the first non-trigger action.
    let Some((action_ix, action)) = template
        .actions
        .iter()
        .enumerate()
        .find(|(i, a)| *i > 0 && a.source != 0)
    else {
        return;
    };
    let _ = action_ix;

    // Resolve the roles the action touches: the seed role with a seed that
    // did NOT fire this template, others via their bindings.
    let fired_seeds: std::collections::HashSet<EntityId> = engine
        .truth
        .events_of_template(template_ix)
        .map(|e| e.seed)
        .collect();
    let candidates: Vec<EntityId> = seeds
        .iter()
        .copied()
        .filter(|s| !fired_seeds.contains(s))
        .collect();
    if candidates.is_empty() {
        return;
    }
    let seed = candidates[engine.rng.gen_range(0..candidates.len())];

    let mut bound: Vec<EntityId> = Vec::new();
    for (_, binding) in &template.roles {
        match resolve_role(engine, binding, &bound, seed, firing) {
            Some(e) => bound.push(e),
            None => return,
        }
    }
    let edit = concretize(engine, action, &bound);
    if !engine.applicable(&edit) {
        return;
    }
    engine.apply(&edit, time);
    engine.truth.spurious.push(SpuriousEdit {
        template_ix,
        edit,
        time,
    });
}

/// Adds a red link to a random page, reverted an hour later.
fn fire_vandalism(
    engine: &mut Engine,
    entities: &[EntityId],
    domain: &DomainSpec,
    time: Timestamp,
) {
    let e = entities[engine.rng.gen_range(0..entities.len())];
    let rel = domain.relations[engine.rng.gen_range(0..domain.relations.len())].clone();
    let n = engine.truth.vandalism_count;
    let red = format!("Vandal Target {n}");
    let inserted = engine.state.entry(e).or_default().insert(&rel, &red);
    if !inserted {
        return;
    }
    engine.snapshot(e, time);
    engine.state.get_mut(&e).unwrap().links.remove(&(rel, red));
    engine.snapshot(e, time + HOUR);
    engine.truth.vandalism_count += 1;
}

/// Toggles a random distractor-to-distractor link.
fn fire_distractor(engine: &mut Engine, distractors: &[EntityId], time: Timestamp) {
    if distractors.len() < 2 {
        return;
    }
    let a = distractors[engine.rng.gen_range(0..distractors.len())];
    let mut b = a;
    while b == a {
        b = distractors[engine.rng.gen_range(0..distractors.len())];
    }
    let rel =
        ["located_in", "band_member", "released_album"][engine.rng.gen_range(0..3usize)].to_owned();
    let bname = engine.universe.entity_name(b).to_owned();
    let page = engine.state.entry(a).or_default();
    if page.contains(&rel, &bname) {
        page.links.remove(&(rel, bname));
    } else {
        page.insert(&rel, &bname);
    }
    engine.snapshot(a, time);
    engine.truth.distractor_edit_count += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn generates_consistent_soccer_world() {
        let world = generate(scenarios::soccer(), SynthConfig::tiny(7));
        assert_eq!(world.seeds.len(), 40);
        assert!(world.store.page_count() > 40);
        assert!(!world.truth.events.is_empty(), "events fired");
        assert!(!world.truth.errors.is_empty(), "errors planted");
        // Every planted error's event exists and skipped the right action.
        for err in &world.truth.errors {
            let ev = &world.truth.events[err.event_ix];
            assert!(!ev.performed[err.action_ix]);
        }
    }

    #[test]
    fn corrections_land_in_year_two() {
        let world = generate(scenarios::soccer(), SynthConfig::tiny(11));
        let corrected: Vec<_> = world
            .truth
            .errors
            .iter()
            .filter(|e| e.corrected_in_y2)
            .collect();
        assert!(!corrected.is_empty());
        for e in &corrected {
            let t = e.correction_time.unwrap();
            assert!((YEAR..2 * YEAR).contains(&t));
        }
        // Correction fraction lands near the configured rate.
        let frac = world.truth.correction_fraction();
        assert!(
            (frac - world.config.correction_rate).abs() < 0.2,
            "correction fraction {frac} far from target"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(scenarios::politics(), SynthConfig::tiny(42));
        let b = generate(scenarios::politics(), SynthConfig::tiny(42));
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.store.revision_count(), b.store.revision_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(scenarios::cinema(), SynthConfig::tiny(1));
        let b = generate(scenarios::cinema(), SynthConfig::tiny(2));
        assert_ne!(a.truth, b.truth);
    }

    #[test]
    fn revision_timestamps_are_monotone_per_page() {
        let world = generate(scenarios::soccer(), SynthConfig::tiny(3));
        for e in world.store.entities() {
            let h = world.store.peek(e).unwrap();
            let times: Vec<_> = h.revisions().iter().map(|r| r.time).collect();
            for w in times.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn exclusive_groups_draw_disjoint_seeds() {
        let mut domain = scenarios::soccer();
        // Put transfer and retirement in one group and check disjointness.
        domain.templates[0].exclusive_group = Some("career".into());
        domain.templates[4].exclusive_group = Some("career".into());
        assert_eq!(domain.templates[4].name, "retirement");
        let world = generate(domain, SynthConfig::tiny(9));
        let transfer_seeds: std::collections::HashSet<_> =
            world.truth.events_of_template(0).map(|e| e.seed).collect();
        let retire_seeds: std::collections::HashSet<_> =
            world.truth.events_of_template(4).map(|e| e.seed).collect();
        assert!(
            transfer_seeds.is_disjoint(&retire_seeds),
            "exclusive templates fired for a shared seed"
        );
        assert!(!transfer_seeds.is_empty());
        assert!(!retire_seeds.is_empty());
    }

    #[test]
    fn skip_accounting_is_consistent() {
        let world = generate(scenarios::politics(), SynthConfig::tiny(5));
        for (tix, _) in world.domain.templates.iter().enumerate() {
            let fired = world.truth.events_of_template(tix).count();
            assert_eq!(
                fired + world.truth.skipped_events[tix],
                world.truth.planned_events[tix],
                "template {tix}: fired + skipped must equal planned"
            );
        }
    }

    #[test]
    fn vandalism_targets_are_unresolvable() {
        let world = generate(scenarios::soccer(), SynthConfig::tiny(5));
        assert!(world.truth.vandalism_count > 0);
        // Red-link names are not registered entities.
        assert!(world
            .universe
            .entities()
            .lookup("Vandal Target 0")
            .is_none());
    }
}
