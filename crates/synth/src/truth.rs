//! Ground-truth bookkeeping: what the generator planted, so the evaluation
//! can score WiClean without human experts.

use serde::{Deserialize, Serialize};
use wiclean_types::{EntityId, Timestamp};
use wiclean_wikitext::EditOp;

/// One concrete edit a template action resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConcreteEdit {
    /// Add or remove.
    pub op: EditOp,
    /// Page edited.
    pub source: EntityId,
    /// Relation (resolved id lives in the universe; the label is stored by
    /// the generator for readability).
    pub rel: u32,
    /// Link target.
    pub target: EntityId,
}

/// One fired event instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedEvent {
    /// Index of the template in the domain's list.
    pub template_ix: usize,
    /// The firing seed entity.
    pub seed: EntityId,
    /// Role bindings (entity per role, base roles then extension roles).
    pub bindings: Vec<EntityId>,
    /// Base time of the instance.
    pub time: Timestamp,
    /// Whether each base action was performed.
    pub performed: Vec<bool>,
    /// Which extension sub-flows fired.
    pub extensions_fired: Vec<bool>,
}

impl PlantedEvent {
    /// Whether the instance is complete (no planted error).
    pub fn is_complete(&self) -> bool {
        self.performed.iter().all(|&p| p)
    }
}

/// One planted error: a template action that should have happened but was
/// skipped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedError {
    /// Index into [`GroundTruth::events`].
    pub event_ix: usize,
    /// Which action of the template was skipped.
    pub action_ix: usize,
    /// The concrete edit that is missing.
    pub missing: ConcreteEdit,
    /// Whether the year-2 pass corrected it.
    pub corrected_in_y2: bool,
    /// When it was corrected.
    pub correction_time: Option<Timestamp>,
}

/// A deliberate one-sided edit that *looks* like a partial pattern but is
/// intentional — the generator's stand-in for the flagged-but-not-actually-
/// wrong cases the paper's experts rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpuriousEdit {
    /// Template whose window/relations it mimics.
    pub template_ix: usize,
    /// The edit performed.
    pub edit: ConcreteEdit,
    /// When.
    pub time: Timestamp,
}

/// Everything the generator planted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Every fired event instance.
    pub events: Vec<PlantedEvent>,
    /// Every planted error.
    pub errors: Vec<PlantedError>,
    /// Every spurious (intentional) one-sided edit.
    pub spurious: Vec<SpuriousEdit>,
    /// Events planned per template (before resolution skips).
    #[serde(default)]
    pub planned_events: Vec<usize>,
    /// Events skipped per template (unresolvable bindings / state
    /// conflicts after retries).
    #[serde(default)]
    pub skipped_events: Vec<usize>,
    /// Vandalism edits performed (red links; counted, not scored).
    pub vandalism_count: usize,
    /// Distractor edits performed.
    pub distractor_edit_count: usize,
}

impl GroundTruth {
    /// Errors not corrected in year 2 (the paper's "remaining cases").
    pub fn uncorrected_errors(&self) -> impl Iterator<Item = &PlantedError> {
        self.errors.iter().filter(|e| !e.corrected_in_y2)
    }

    /// Fraction of errors corrected in year 2.
    pub fn correction_fraction(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().filter(|e| e.corrected_in_y2).count() as f64 / self.errors.len() as f64
    }

    /// Events fired from a given template.
    pub fn events_of_template(&self, template_ix: usize) -> impl Iterator<Item = &PlantedEvent> {
        self.events
            .iter()
            .filter(move |e| e.template_ix == template_ix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edit(s: u32, t: u32) -> ConcreteEdit {
        ConcreteEdit {
            op: EditOp::Add,
            source: EntityId::from_u32(s),
            rel: 0,
            target: EntityId::from_u32(t),
        }
    }

    #[test]
    fn correction_fraction_counts() {
        let mut gt = GroundTruth::default();
        assert_eq!(gt.correction_fraction(), 0.0);
        for i in 0..4 {
            gt.errors.push(PlantedError {
                event_ix: 0,
                action_ix: 1,
                missing: edit(i, i + 10),
                corrected_in_y2: i < 3,
                correction_time: (i < 3).then_some(1000),
            });
        }
        assert!((gt.correction_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(gt.uncorrected_errors().count(), 1);
    }

    #[test]
    fn event_completeness() {
        let e = PlantedEvent {
            template_ix: 0,
            seed: EntityId::from_u32(1),
            bindings: vec![EntityId::from_u32(1)],
            time: 5,
            performed: vec![true, false],
            extensions_fired: vec![],
        };
        assert!(!e.is_complete());
    }

    #[test]
    fn template_filter() {
        let mut gt = GroundTruth::default();
        for tix in [0, 1, 0] {
            gt.events.push(PlantedEvent {
                template_ix: tix,
                seed: EntityId::from_u32(0),
                bindings: vec![],
                time: 0,
                performed: vec![],
                extensions_fired: vec![],
            });
        }
        assert_eq!(gt.events_of_template(0).count(), 2);
        assert_eq!(gt.events_of_template(1).count(), 1);
    }
}
