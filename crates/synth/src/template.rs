//! Event templates: the scripted coordinated-edit patterns the generator
//! plants (and the ground-truth "expert pattern lists").

use serde::{Deserialize, Serialize};
use wiclean_types::{Timestamp, DAY, YEAR};
use wiclean_wikitext::EditOp;

/// How a role is bound to a concrete entity when an event instance fires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoleBinding {
    /// The firing seed entity itself (role 0 is always `Seed`).
    Seed,
    /// A fresh random entity of the named type, distinct from the other
    /// bound roles and not currently linked from `from_role` via `rel`
    /// (so that the template's additions are valid).
    Fresh {
        /// Type name of the entity to draw.
        ty: String,
        /// Role whose page must not already link to the drawn entity.
        from_role: usize,
        /// The relation checked for absence.
        rel: String,
    },
    /// The entity currently linked from `of_role`'s page via `rel` (so
    /// that the template's removals are valid). If the page holds several
    /// such links one is chosen at random; if none, the event does not
    /// fire for this seed.
    ExistingTarget {
        /// Role whose page is inspected.
        of_role: usize,
        /// The relation followed.
        rel: String,
        /// Declared type name of the bound entity (for the expert-pattern
        /// rendering of the template).
        ty: String,
        /// When true, never bind an entity that itself fires this template
        /// in the same occurrence window. This models the real-world
        /// constraint that e.g. a displaced senator is not simultaneously
        /// winning another seat — without it, "chained" event patterns
        /// (A displaces B while B fires elsewhere) become frequent enough
        /// to pollute the most-specific pattern set.
        #[serde(default)]
        avoid_cofiring: bool,
    },
}

/// One abstract action of a template, over role indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemplateAction {
    /// Add or remove.
    pub op: EditOp,
    /// Source role (whose page is edited).
    pub source: usize,
    /// Relation label.
    pub rel: String,
    /// Target role.
    pub target: usize,
}

impl TemplateAction {
    /// Shorthand constructor.
    pub fn new(op: EditOp, source: usize, rel: &str, target: usize) -> Self {
        Self {
            op,
            source,
            rel: rel.to_owned(),
            target,
        }
    }
}

/// When a template's occurrence window(s) fall within a year.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowSpec {
    /// One window per year: `[start_day, start_day + len_days)` days from
    /// the year's start.
    Annual {
        /// Day offset of the window start within the year.
        start_day: u64,
        /// Window length in days.
        len_days: u64,
    },
    /// No window: instances are spread uniformly over the whole year.
    /// Window-less templates are exactly the patterns the paper reports
    /// WiClean (by design) does not discover.
    Uniform,
}

impl WindowSpec {
    /// The half-open timestamp span of this spec's occurrence within the
    /// year starting at `year_start`.
    pub fn span(&self, year_start: Timestamp) -> (Timestamp, Timestamp) {
        match *self {
            WindowSpec::Annual {
                start_day,
                len_days,
            } => (
                year_start + start_day * DAY,
                year_start + (start_day + len_days) * DAY,
            ),
            WindowSpec::Uniform => (year_start, year_start + YEAR),
        }
    }

    /// Whether the template has a meaningful window.
    pub fn is_windowed(&self) -> bool {
        matches!(self, WindowSpec::Annual { .. })
    }
}

/// An optional conditional sub-flow of a template: extra actions performed
/// with some probability when the parent event fires — the source of the
/// paper's *relative frequent* patterns (e.g. a transfer that also changes
/// the player's league links).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateExtension {
    /// Probability the sub-flow accompanies a fired event.
    pub probability: f64,
    /// Additional roles (indices continue after the parent's roles).
    pub roles: Vec<(String, RoleBinding)>,
    /// Additional actions, indexing the combined role list.
    pub actions: Vec<TemplateAction>,
}

/// A scripted coordinated-edit event class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventTemplate {
    /// Template name, e.g. `summer_transfer`.
    pub name: String,
    /// Roles: `(name, binding)`. Role 0 must be [`RoleBinding::Seed`].
    pub roles: Vec<(String, RoleBinding)>,
    /// The coordinated actions. Action 0 is the *trigger* on the seed's
    /// page and is always performed; the others are each dropped with
    /// probability `1 - completion` (planting an error).
    pub actions: Vec<TemplateAction>,
    /// Occurrence window.
    pub window: WindowSpec,
    /// Fraction of seed entities firing per occurrence.
    pub fire_rate: f64,
    /// Per-action completion probability.
    pub completion: f64,
    /// Conditional sub-flows (relative patterns).
    pub extensions: Vec<TemplateExtension>,
    /// Templates sharing a non-`None` group get *disjoint* seed samples —
    /// e.g. a player transfers or retires in a given year, never both.
    /// Without this, year-wide reduction cancels one event's edits against
    /// the other's and the planted pattern loses its support.
    #[serde(default)]
    pub exclusive_group: Option<String>,
}

impl EventTemplate {
    /// Validates internal consistency (role indices, seed role).
    pub fn validate(&self) {
        assert!(
            matches!(self.roles.first(), Some((_, RoleBinding::Seed))),
            "template `{}`: role 0 must be Seed",
            self.name
        );
        assert!(
            !self.actions.is_empty(),
            "template `{}` has no actions",
            self.name
        );
        let n = self.roles.len();
        for a in &self.actions {
            assert!(
                a.source < n && a.target < n,
                "template `{}`: action references missing role",
                self.name
            );
        }
        assert_eq!(
            self.actions[0].source, 0,
            "template `{}`: the trigger action must edit the seed page",
            self.name
        );
        for ext in &self.extensions {
            let m = n + ext.roles.len();
            for a in &ext.actions {
                assert!(
                    a.source < m && a.target < m,
                    "template `{}` extension references missing role",
                    self.name
                );
            }
            assert!((0.0..=1.0).contains(&ext.probability));
        }
        assert!((0.0..=1.0).contains(&self.fire_rate));
        assert!((0.0..=1.0).contains(&self.completion));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventTemplate {
        EventTemplate {
            name: "t".into(),
            roles: vec![
                ("player".into(), RoleBinding::Seed),
                (
                    "new_club".into(),
                    RoleBinding::Fresh {
                        ty: "SoccerClub".into(),
                        from_role: 0,
                        rel: "current_club".into(),
                    },
                ),
            ],
            actions: vec![
                TemplateAction::new(EditOp::Add, 0, "current_club", 1),
                TemplateAction::new(EditOp::Add, 1, "squad", 0),
            ],
            window: WindowSpec::Annual {
                start_day: 212,
                len_days: 14,
            },
            fire_rate: 0.5,
            completion: 0.9,
            extensions: vec![],
            exclusive_group: None,
        }
    }

    #[test]
    fn annual_span() {
        let w = WindowSpec::Annual {
            start_day: 212,
            len_days: 14,
        };
        let (s, e) = w.span(0);
        assert_eq!(s, 212 * DAY);
        assert_eq!(e, 226 * DAY);
        assert!(w.is_windowed());
    }

    #[test]
    fn uniform_span_covers_year() {
        let w = WindowSpec::Uniform;
        let (s, e) = w.span(100);
        assert_eq!(e - s, YEAR);
        assert!(!w.is_windowed());
    }

    #[test]
    fn validate_accepts_well_formed() {
        sample().validate();
    }

    #[test]
    #[should_panic(expected = "role 0 must be Seed")]
    fn validate_rejects_non_seed_role0() {
        let mut t = sample();
        t.roles[0].1 = RoleBinding::ExistingTarget {
            of_role: 0,
            rel: "x".into(),
            ty: "SoccerClub".into(),
            avoid_cofiring: false,
        };
        t.validate();
    }

    #[test]
    #[should_panic(expected = "missing role")]
    fn validate_rejects_bad_role_index() {
        let mut t = sample();
        t.actions.push(TemplateAction::new(EditOp::Add, 0, "r", 7));
        t.validate();
    }

    #[test]
    #[should_panic(expected = "trigger action")]
    fn validate_rejects_non_seed_trigger() {
        let mut t = sample();
        t.actions[0].source = 1;
        t.validate();
    }
}
