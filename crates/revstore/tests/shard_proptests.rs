//! Property-based tests for the out-of-core sharded store: delta-encoded
//! segment logs must be an invisible representation change. Whatever
//! revision sequence is ingested — out of order, with non-append-only
//! edits (text shrinking, lines vanishing), at any shard count or
//! checkpoint cadence — materializing an entity must return bytes
//! identical to what the plain in-memory [`RevisionStore`] holds, and
//! per-shard crash damage must stay confined to the damaged shard.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wiclean_revstore::{
    MemFs, MemoryBudget, RevisionStore, ShardPolicy, ShardedStore, SyncPolicy, Vfs,
};
use wiclean_types::{EntityId, Timestamp};

/// A revision text assembled from a small line vocabulary, so consecutive
/// revisions share lines (the delta encoder's working regime) but can also
/// shrink, empty out, or change completely (non-append-only edits).
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec((0usize..6, 0u32..4), 0..6).prop_map(|parts| {
        let lines: Vec<String> = parts
            .into_iter()
            .map(|(kind, n)| match kind {
                0 => format!("| current_club = [[Club {n}]]"),
                1 => format!("* [[Player {n}]]"),
                2 => "== Career ==".to_owned(),
                3 => format!("Appearances: {n}"),
                4 => String::new(),
                _ => format!("prose about [[City {n}]] and more"),
            })
            .collect();
        lines.join("\n")
    })
}

/// `(entity, time, text)` appends over a tiny entity space so per-entity
/// chains get long enough to cross checkpoint boundaries, with timestamps
/// drawn unsorted so out-of-order ingestion occurs constantly.
fn append_strategy() -> impl Strategy<Value = Vec<(u32, Timestamp, String)>> {
    proptest::collection::vec((0u32..5, 0u64..1_000, text_strategy()), 0..40)
}

fn policy(shards: u32, snapshot_every: u32) -> ShardPolicy {
    ShardPolicy {
        shards,
        snapshot_every,
        sync: SyncPolicy::Never,
        ..ShardPolicy::default()
    }
}

fn budget() -> Arc<MemoryBudget> {
    Arc::new(MemoryBudget::new(1 << 20))
}

/// Ingests the same appends into a reference in-memory store and a sharded
/// store, returning both.
fn ingest(
    fs: Arc<MemFs>,
    dir: &Path,
    appends: &[(u32, Timestamp, String)],
    shards: u32,
    snapshot_every: u32,
) -> (RevisionStore, ShardedStore<Arc<MemFs>>) {
    let mut reference = RevisionStore::new();
    let sharded = ShardedStore::create(fs, dir, policy(shards, snapshot_every), budget()).unwrap();
    for (e, t, text) in appends {
        let entity = EntityId::from_u32(*e);
        reference.record(entity, *t, text.clone());
        sharded.append(entity, *t, text).unwrap();
    }
    sharded.flush().unwrap();
    (reference, sharded)
}

proptest! {
    /// Delta-encode → materialize is byte-identical to the in-memory store
    /// for arbitrary sequences, at any shard count and checkpoint cadence
    /// (including 1 = deltas disabled).
    #[test]
    fn materialize_matches_in_memory_store(
        appends in append_strategy(),
        shards in 1u32..5,
        snapshot_every in 1u32..6,
    ) {
        let fs = Arc::new(MemFs::new());
        let dir = PathBuf::from("/store");
        let (reference, sharded) = ingest(fs, &dir, &appends, shards, snapshot_every);
        prop_assert_eq!(sharded.page_count(), reference.page_count());
        for entity in sharded.entities() {
            let got = sharded.materialize(entity).unwrap().unwrap();
            let want = reference.peek(entity).unwrap();
            prop_assert_eq!(got.revisions(), want.revisions());
        }
    }

    /// Reopening the store from its segment bytes — the crash-recovery
    /// read path — serves the same histories as the original in-memory
    /// reference, and reports a clean recovery when nothing was damaged.
    #[test]
    fn reopen_round_trips_byte_identical(
        appends in append_strategy(),
        shards in 1u32..4,
        snapshot_every in 1u32..5,
    ) {
        let fs = Arc::new(MemFs::new());
        let dir = PathBuf::from("/store");
        let (reference, sharded) = ingest(fs.clone(), &dir, &appends, shards, snapshot_every);
        drop(sharded);
        let (reopened, recovery) =
            ShardedStore::open(fs, &dir, policy(shards, snapshot_every), budget()).unwrap();
        prop_assert!(recovery.is_clean());
        prop_assert_eq!(reopened.page_count(), reference.page_count());
        for entity in reopened.entities() {
            let got = reopened.materialize(entity).unwrap().unwrap();
            let want = reference.peek(entity).unwrap();
            prop_assert_eq!(got.revisions(), want.revisions());
        }
    }

    /// Tearing an arbitrary number of bytes off one shard's segment tail —
    /// a crash mid-append — must (a) reopen successfully, (b) report the
    /// loss against that shard only, and (c) leave every *other* shard's
    /// histories byte-identical to the reference. The damaged shard serves
    /// a prefix of its appends: every materialized revision it still has
    /// must appear in the reference history.
    #[test]
    fn torn_shard_tail_is_contained(
        appends in append_strategy(),
        shards in 2u32..4,
        snapshot_every in 1u32..5,
        victim in 0u32..4,
        cut in 1u64..200,
    ) {
        let fs = Arc::new(MemFs::new());
        let dir = PathBuf::from("/store");
        let (reference, sharded) = ingest(fs.clone(), &dir, &appends, shards, snapshot_every);
        drop(sharded);

        let victim = victim % shards;
        let seg = dir.join(format!("shard-{victim:04}.seg"));
        prop_assume!(fs.exists(&seg));
        let len = fs.len(&seg).unwrap();
        prop_assume!(len > 0);
        let cut = cut.min(len);
        fs.truncate(&seg, len - cut).unwrap();

        let (reopened, recovery) =
            ShardedStore::open(fs, &dir, policy(shards, snapshot_every), budget()).unwrap();
        for loss in &recovery.losses {
            prop_assert_eq!(loss.shard, victim, "loss must land on the damaged shard");
        }
        for entity in reopened.entities() {
            let got = reopened.materialize(entity).unwrap().unwrap();
            let want = reference.peek(entity).unwrap();
            if reopened.shard_of(entity) == victim {
                // Damaged shard: a (possibly complete) subset of the
                // reference — never an invented or corrupted revision.
                prop_assert!(got.len() <= want.len());
                for rev in got.revisions() {
                    prop_assert!(
                        want.revisions().contains(rev),
                        "revision not in reference history"
                    );
                }
            } else {
                prop_assert_eq!(got.revisions(), want.revisions());
            }
        }
    }
}
