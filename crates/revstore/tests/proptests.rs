//! Property-based tests for action reduction and the preprocessing cache.

use proptest::prelude::*;
use wiclean_revstore::reduce::net_effect;
use wiclean_revstore::{
    is_reduced, reduce_actions, try_extract_actions, try_extract_actions_with, Action, ActionCache,
    CacheLookup, EditOp, ExtractMode, FaultPlan, FaultyStore, GarbleMode, RevisionStore,
};
use wiclean_types::{EntityId, RelId, Universe, Window};

/// Arbitrary actions over a tiny id space so that edge collisions (and thus
/// cancellations) actually occur.
fn action_strategy() -> impl Strategy<Value = Action> {
    (prop::bool::ANY, 0u32..4, 0u32..3, 0u32..4, 0u64..1000).prop_map(|(add, s, r, t, time)| {
        Action::new(
            if add { EditOp::Add } else { EditOp::Remove },
            EntityId::from_u32(s),
            RelId::from_u32(r),
            EntityId::from_u32(t),
            time,
        )
    })
}

/// An *alternating* per-edge action sequence, as snapshot diffing actually
/// produces: a link toggles between present and absent.
fn alternating_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec((0u32..3, 0u32..2, 0u32..3, prop::bool::ANY), 0..24).prop_map(
        |edges| {
            use std::collections::HashMap;
            let mut present: HashMap<(u32, u32, u32), bool> = HashMap::new();
            let mut out = Vec::new();
            let mut time = 0u64;
            for (s, r, t, _seed) in edges {
                let slot = present.entry((s, r, t)).or_insert(false);
                let op = if *slot { EditOp::Remove } else { EditOp::Add };
                *slot = !*slot;
                time += 7;
                out.push(Action::new(
                    op,
                    EntityId::from_u32(s),
                    RelId::from_u32(r),
                    EntityId::from_u32(t),
                    time,
                ));
            }
            out
        },
    )
}

proptest! {
    /// Reduction output is always reduced (idempotence).
    #[test]
    fn reduction_idempotent(actions in proptest::collection::vec(action_strategy(), 0..32)) {
        let once = reduce_actions(&actions);
        prop_assert!(is_reduced(&once));
        prop_assert_eq!(reduce_actions(&once), once);
    }

    /// Reduction preserves the net graph effect (the paper's equivalence).
    #[test]
    fn reduction_preserves_net_effect(actions in alternating_actions()) {
        let red = reduce_actions(&actions);
        prop_assert_eq!(net_effect(&actions), net_effect(&red));
    }

    /// On alternating histories the reduced set is exactly the net effect:
    /// one action per surviving edge, matching op.
    #[test]
    fn reduced_matches_net_effect_exactly(actions in alternating_actions()) {
        let red = reduce_actions(&actions);
        let net = net_effect(&actions);
        prop_assert_eq!(red.len(), net.len());
        for a in &red {
            prop_assert_eq!(net.get(&a.triple()).copied(), Some(a.op));
        }
    }

    /// Reduction never invents actions: survivors are a subset of input.
    #[test]
    fn reduction_is_subset(actions in proptest::collection::vec(action_strategy(), 0..32)) {
        let red = reduce_actions(&actions);
        for a in &red {
            prop_assert!(actions.contains(a));
        }
        prop_assert!(red.len() <= actions.len());
    }

    /// The size deficit is always even: cancellations remove pairs.
    #[test]
    fn cancellations_come_in_pairs(actions in proptest::collection::vec(action_strategy(), 0..32)) {
        let red = reduce_actions(&actions);
        prop_assert_eq!((actions.len() - red.len()) % 2, 0);
    }
}

/// A tiny universe of 4 source pages and 5 target pages joined by one
/// relation, so arbitrary revision streams produce resolvable links.
fn link_universe() -> (Universe, Vec<EntityId>) {
    use wiclean_types::TypeId;
    let mut u = Universe::new("Thing");
    let page = u.taxonomy_mut().add("Page", TypeId::from_u32(0)).unwrap();
    u.relation("linked_to");
    let sources: Vec<EntityId> = (0..4)
        .map(|i| u.add_entity(&format!("P{i}"), page).unwrap())
        .collect();
    for k in 0..5 {
        u.add_entity(&format!("T{k}"), page).unwrap();
    }
    (u, sources)
}

fn link_text(target: usize) -> String {
    format!("{{{{Infobox x\n| linked_to = [[T{target}]]\n}}}}\n")
}

/// An arbitrary revision stream: (source index, timestamp, target index).
fn revision_stream() -> impl Strategy<Value = Vec<(usize, u64, usize)>> {
    proptest::collection::vec((0usize..4, 0u64..200, 0usize..5), 1..40)
}

fn build_store(sources: &[EntityId], stream: &[(usize, u64, usize)]) -> RevisionStore {
    let mut store = RevisionStore::new();
    for &(src, time, target) in stream {
        store.record(sources[src], time, link_text(target));
    }
    store
}

fn assert_same_outcome(
    cached: &wiclean_revstore::ExtractOutcome,
    direct: &wiclean_revstore::ExtractOutcome,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&cached.actions, &direct.actions);
    prop_assert_eq!(cached.unresolved_targets, direct.unresolved_targets);
    prop_assert_eq!(cached.unresolved_relations, direct.unresolved_relations);
    prop_assert_eq!(cached.parse_issues, direct.parse_issues);
    prop_assert_eq!(cached.base_parse_issues, direct.base_parse_issues);
    Ok(())
}

/// Multi-line pages — leading comment, infobox, bullet section, prose — so
/// the incremental splice path gets real line structure to work with.
fn rich_text(targets: &[usize]) -> String {
    let mut s = String::from("<!-- autogenerated snapshot -->\n");
    match targets.split_first() {
        None => s.push_str("An empty stub.\n"),
        Some((first, rest)) => {
            s.push_str(&format!(
                "{{{{Infobox x\n| linked_to = [[T{first}]]\n}}}}\n"
            ));
            if !rest.is_empty() {
                s.push_str("== linked_to ==\n");
                for t in rest {
                    s.push_str(&format!("* [[T{t}]]\n"));
                }
            }
            s.push_str("Closing prose mentioning [[P0]].\n");
        }
    }
    s
}

/// A revision stream of multi-line pages: (source, timestamp, targets).
/// Timestamps are arbitrary, so `record` ingests revisions out of order.
fn rich_stream() -> impl Strategy<Value = Vec<(usize, u64, Vec<usize>)>> {
    proptest::collection::vec(
        (
            0usize..4,
            0u64..200,
            proptest::collection::vec(0usize..5, 0..5),
        ),
        1..30,
    )
}

fn build_rich_store(sources: &[EntityId], stream: &[(usize, u64, Vec<usize>)]) -> RevisionStore {
    let mut store = RevisionStore::new();
    for (src, time, targets) in stream {
        store.record(sources[*src], *time, rich_text(targets));
    }
    store
}

proptest! {
    /// The tentpole differential at the extraction boundary: the interned
    /// incremental pipeline produces byte-identical actions and counters to
    /// the frozen full-reparse pipeline, over out-of-order ingested
    /// multi-line histories and arbitrary windows.
    #[test]
    fn incremental_extraction_equals_full_reparse(
        stream in rich_stream(),
        cut in 1u64..200,
    ) {
        let (u, sources) = link_universe();
        let store = build_rich_store(&sources, &stream);
        for &e in &sources {
            for w in [Window::new(0, cut), Window::new(cut, 200), Window::new(0, 200)] {
                let incr = try_extract_actions_with(&store, &u, e, &w, ExtractMode::Incremental)
                    .unwrap();
                let full = try_extract_actions_with(&store, &u, e, &w, ExtractMode::FullReparse)
                    .unwrap();
                assert_same_outcome(&incr, &full)?;
            }
        }
    }

    /// Same differential through a fault-injecting source: garbled
    /// (truncated or scrambled) and permanently missing pages must degrade
    /// both pipelines identically.
    #[test]
    fn incremental_equals_full_reparse_under_faults(
        stream in rich_stream(),
        seed in 0u64..1000,
        scramble in prop::bool::ANY,
        garble_rate in 0.0f64..1.0,
        gone_rate in 0.0f64..0.5,
    ) {
        let (u, sources) = link_universe();
        let store = build_rich_store(&sources, &stream);
        let plan = FaultPlan {
            seed,
            garble_rate,
            gone_rate,
            garble_mode: if scramble { GarbleMode::Scramble } else { GarbleMode::Truncate },
            ..FaultPlan::default()
        };
        let faulty = FaultyStore::new(&store, plan);
        let w = Window::new(0, 200);
        for &e in &sources {
            let incr = try_extract_actions_with(&faulty, &u, e, &w, ExtractMode::Incremental);
            let full = try_extract_actions_with(&faulty, &u, e, &w, ExtractMode::FullReparse);
            match (incr, full) {
                (Ok(a), Ok(b)) => assert_same_outcome(&a, &b)?,
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "modes disagree on fallibility: {:?} vs {:?}", a, b),
            }
        }
    }

    /// Cache + incremental mode vs direct frozen extraction: the composed
    /// path, the cached path, and both extraction modes all agree.
    #[test]
    fn cached_incremental_equals_direct_full_reparse(
        stream in rich_stream(),
        cut in 1u64..200,
    ) {
        let (u, sources) = link_universe();
        let store = build_rich_store(&sources, &stream);
        let cache = ActionCache::new();
        let (lo, hi, full) = (Window::new(0, cut), Window::new(cut, 200), Window::new(0, 200));
        for &e in &sources {
            for w in [&lo, &hi] {
                cache.extract(&store, &u, e, w).unwrap();
            }
            let (got, lookup) = cache.extract(&store, &u, e, &full).unwrap();
            prop_assert_eq!(lookup, CacheLookup::Composed);
            let frozen = try_extract_actions_with(&store, &u, e, &full, ExtractMode::FullReparse)
                .unwrap();
            assert_same_outcome(&got, &frozen)?;
        }
    }
}

proptest! {
    /// Cached extraction — including windows assembled by composing cached
    /// sub-windows — is byte-identical to a direct extraction.
    #[test]
    fn cached_extraction_equals_direct(stream in revision_stream(), cut in 1u64..200) {
        let (u, sources) = link_universe();
        let store = build_store(&sources, &stream);
        let cache = ActionCache::new();
        let (lo, hi, full) = (Window::new(0, cut), Window::new(cut, 200), Window::new(0, 200));
        for &e in &sources {
            for w in [&lo, &hi] {
                let (got, _) = cache.extract(&store, &u, e, w).unwrap();
                assert_same_outcome(&got, &try_extract_actions(&store, &u, e, w).unwrap())?;
            }
            // The full window must now be served by composition, not re-diffed.
            let (got, lookup) = cache.extract(&store, &u, e, &full).unwrap();
            prop_assert_eq!(lookup, CacheLookup::Composed);
            assert_same_outcome(&got, &try_extract_actions(&store, &u, e, &full).unwrap())?;
        }
    }

    /// Appending a revision invalidates exactly the appended entity's cached
    /// extractions: it recomputes (fresh, correct), everyone else still hits.
    #[test]
    fn append_invalidates_only_that_entity(
        stream in revision_stream(),
        victim in 0usize..4,
        new_time in 0u64..200,
        new_target in 0usize..5,
    ) {
        let (u, sources) = link_universe();
        let mut store = build_store(&sources, &stream);
        let cache = ActionCache::new();
        let w = Window::new(0, 200);
        for &e in &sources {
            cache.extract(&store, &u, e, &w).unwrap();
        }

        store.record(sources[victim], new_time, link_text(new_target));

        for (i, &e) in sources.iter().enumerate() {
            let (got, lookup) = cache.extract(&store, &u, e, &w).unwrap();
            if i == victim {
                prop_assert_eq!(lookup, CacheLookup::Miss, "version bump must force recompute");
            } else {
                prop_assert_eq!(lookup, CacheLookup::Hit, "untouched entities must stay cached");
            }
            assert_same_outcome(&got, &try_extract_actions(&store, &u, e, &w).unwrap())?;
        }
    }
}
