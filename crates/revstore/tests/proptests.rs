//! Property-based tests for action reduction.

use proptest::prelude::*;
use wiclean_revstore::{is_reduced, reduce_actions, Action, EditOp};
use wiclean_revstore::reduce::net_effect;
use wiclean_types::{EntityId, RelId};

/// Arbitrary actions over a tiny id space so that edge collisions (and thus
/// cancellations) actually occur.
fn action_strategy() -> impl Strategy<Value = Action> {
    (
        prop::bool::ANY,
        0u32..4,
        0u32..3,
        0u32..4,
        0u64..1000,
    )
        .prop_map(|(add, s, r, t, time)| {
            Action::new(
                if add { EditOp::Add } else { EditOp::Remove },
                EntityId::from_u32(s),
                RelId::from_u32(r),
                EntityId::from_u32(t),
                time,
            )
        })
}

/// An *alternating* per-edge action sequence, as snapshot diffing actually
/// produces: a link toggles between present and absent.
fn alternating_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec((0u32..3, 0u32..2, 0u32..3, prop::bool::ANY), 0..24).prop_map(
        |edges| {
            use std::collections::HashMap;
            let mut present: HashMap<(u32, u32, u32), bool> = HashMap::new();
            let mut out = Vec::new();
            let mut time = 0u64;
            for (s, r, t, _seed) in edges {
                let slot = present.entry((s, r, t)).or_insert(false);
                let op = if *slot { EditOp::Remove } else { EditOp::Add };
                *slot = !*slot;
                time += 7;
                out.push(Action::new(
                    op,
                    EntityId::from_u32(s),
                    RelId::from_u32(r),
                    EntityId::from_u32(t),
                    time,
                ));
            }
            out
        },
    )
}

proptest! {
    /// Reduction output is always reduced (idempotence).
    #[test]
    fn reduction_idempotent(actions in proptest::collection::vec(action_strategy(), 0..32)) {
        let once = reduce_actions(&actions);
        prop_assert!(is_reduced(&once));
        prop_assert_eq!(reduce_actions(&once), once);
    }

    /// Reduction preserves the net graph effect (the paper's equivalence).
    #[test]
    fn reduction_preserves_net_effect(actions in alternating_actions()) {
        let red = reduce_actions(&actions);
        prop_assert_eq!(net_effect(&actions), net_effect(&red));
    }

    /// On alternating histories the reduced set is exactly the net effect:
    /// one action per surviving edge, matching op.
    #[test]
    fn reduced_matches_net_effect_exactly(actions in alternating_actions()) {
        let red = reduce_actions(&actions);
        let net = net_effect(&actions);
        prop_assert_eq!(red.len(), net.len());
        for a in &red {
            prop_assert_eq!(net.get(&a.triple()).copied(), Some(a.op));
        }
    }

    /// Reduction never invents actions: survivors are a subset of input.
    #[test]
    fn reduction_is_subset(actions in proptest::collection::vec(action_strategy(), 0..32)) {
        let red = reduce_actions(&actions);
        for a in &red {
            prop_assert!(actions.contains(a));
        }
        prop_assert!(red.len() <= actions.len());
    }

    /// The size deficit is always even: cancellations remove pairs.
    #[test]
    fn cancellations_come_in_pairs(actions in proptest::collection::vec(action_strategy(), 0..32)) {
        let red = reduce_actions(&actions);
        prop_assert_eq!((actions.len() - red.len()) % 2, 0);
    }
}
