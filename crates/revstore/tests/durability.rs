//! Differential property tests for the durable revision store.
//!
//! The central invariant, checked from several directions:
//!
//! ```text
//! recover(wal(ingest(revs))) == in-memory ingest(revs)
//! ```
//!
//! exactly for fault-free runs, and as a reported, exact arrival-order
//! *prefix* under every injected-fault class — never a silently corrupted
//! store.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use wiclean_revstore::{
    scan_wal, DurabilityPolicy, DurableStore, FailKind, FailOp, FailSpec, FailpointFs, MemFs,
    RevisionStore, SyncPolicy, TailOutcome, Vfs,
};
use wiclean_types::{EntityId, Timestamp};

fn dir() -> PathBuf {
    PathBuf::from("/store")
}

fn policy(checkpoint_every: u64, delta: bool) -> DurabilityPolicy {
    DurabilityPolicy {
        sync: SyncPolicy::Always,
        checkpoint_every,
        delta_encode: delta,
    }
}

/// An arbitrary ingestion stream over a small entity space: timestamps are
/// free (so out-of-order arrivals occur), texts share structure (so delta
/// encoding actually triggers).
fn stream_strategy() -> impl Strategy<Value = Vec<(u32, u64, String)>> {
    proptest::collection::vec(
        (
            0u32..5,
            0u64..500,
            0usize..4,
            proptest::collection::vec(0u8..27, 0..12),
        ),
        0..40,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .map(|(e, t, tpl, raw)| {
                let extra: String = raw
                    .into_iter()
                    .map(|c| if c == 26 { ' ' } else { (b'a' + c) as char })
                    .collect();
                let body = match tpl {
                    0 => format!("[[A]] {extra}"),
                    1 => format!("{{{{Infobox | x = [[B]] }}}} {extra} shared tail"),
                    2 => extra.to_string(),
                    _ => format!("start {extra} [[C|label]] shared tail"),
                };
                (e, t, body)
            })
            .collect()
    })
}

fn ingest_clean(stream: &[(u32, u64, String)]) -> RevisionStore {
    let mut s = RevisionStore::new();
    for (e, t, text) in stream {
        s.record(EntityId::from_u32(*e), *t as Timestamp, text.clone());
    }
    s
}

fn ingest_durable(
    fs: Arc<MemFs>,
    stream: &[(u32, u64, String)],
    policy: DurabilityPolicy,
) -> DurableStore<Arc<MemFs>> {
    let mut ds = DurableStore::create(fs, dir(), policy).unwrap();
    for (e, t, text) in stream {
        ds.record(EntityId::from_u32(*e), *t as Timestamp, text)
            .unwrap();
    }
    ds
}

proptest! {
    /// Fault-free differential: the recovered store equals the in-memory
    /// store, for every checkpoint cadence and both encodings, including
    /// under out-of-order ingestion (timestamps are arbitrary).
    #[test]
    fn recover_equals_in_memory(
        stream in stream_strategy(),
        checkpoint_every in 1u64..16,
        delta in prop::bool::ANY,
    ) {
        let fs = Arc::new(MemFs::new());
        let ds = ingest_durable(fs.clone(), &stream, policy(checkpoint_every, delta));
        let expect = ingest_clean(&stream);
        prop_assert_eq!(ds.store(), &expect, "live store diverged");
        drop(ds);
        let back = DurableStore::open(fs, dir(), policy(checkpoint_every, delta)).unwrap();
        prop_assert!(back.recovery().is_clean(), "{:?}", back.recovery());
        prop_assert_eq!(
            back.recovery().records_recovered(),
            stream.len() as u64
        );
        prop_assert_eq!(back.store(), &expect, "recovered store diverged");
    }

    /// Satellite: WAL replay is idempotent — recovering the same directory
    /// twice (each open re-checkpoints and replays whatever tail exists)
    /// yields the identical store both times.
    #[test]
    fn replay_is_idempotent(
        stream in stream_strategy(),
        checkpoint_every in 1u64..16,
    ) {
        let fs = Arc::new(MemFs::new());
        drop(ingest_durable(fs.clone(), &stream, policy(checkpoint_every, true)));
        let first = DurableStore::open(fs.clone(), dir(), policy(checkpoint_every, true))
            .unwrap()
            .into_store();
        let second = DurableStore::open(fs, dir(), policy(checkpoint_every, true))
            .unwrap()
            .into_store();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &ingest_clean(&stream));
    }

    /// Satellite: recovery commutes with checkpoint timing — a checkpoint
    /// forced at ANY record boundary produces the identical recovered
    /// store (the split between "in checkpoint" and "in WAL" is invisible).
    #[test]
    fn checkpoint_timing_commutes(
        stream in stream_strategy(),
        boundary_seed in 0usize..64,
    ) {
        // Effectively no automatic checkpoints; one manual one at an
        // arbitrary record boundary.
        let pol = policy(1_000_000, true);
        let boundary = if stream.is_empty() { 0 } else { boundary_seed % (stream.len() + 1) };
        let fs = Arc::new(MemFs::new());
        let mut ds = DurableStore::create(fs.clone(), dir(), pol).unwrap();
        for (i, (e, t, text)) in stream.iter().enumerate() {
            if i == boundary {
                ds.checkpoint().unwrap();
            }
            ds.record(EntityId::from_u32(*e), *t as Timestamp, text).unwrap();
        }
        if boundary == stream.len() {
            ds.checkpoint().unwrap();
        }
        drop(ds);
        let back = DurableStore::open(fs, dir(), pol).unwrap();
        prop_assert!(back.recovery().is_clean(), "{:?}", back.recovery());
        prop_assert_eq!(back.store(), &ingest_clean(&stream));
    }

    /// Torn final append (every cut point): recovery restores exactly the
    /// records that were acknowledged, reports the torn tail, and the
    /// recovered store equals clean ingestion of that prefix.
    #[test]
    fn torn_append_recovers_acked_prefix(
        stream in stream_strategy(),
        tear_at_frac in 0.0f64..1.0,
        keep in 1usize..64,
    ) {
        prop_assume!(stream.len() >= 2);
        let tear_at = ((stream.len() - 1) as f64 * tear_at_frac) as u64;
        let mem = Arc::new(MemFs::new());
        let fs = Arc::new(FailpointFs::new(
            mem.clone(),
            FailSpec::once(FailOp::Append, tear_at, FailKind::TornWrite { keep }),
        ));
        let pol = policy(1_000_000, true);
        let mut ds = DurableStore::create(fs, dir(), pol).unwrap();
        let mut acked = 0u64;
        for (e, t, text) in &stream {
            if ds.record(EntityId::from_u32(*e), *t as Timestamp, text).is_err() {
                break;
            }
            acked += 1;
        }
        prop_assert_eq!(acked, tear_at);
        drop(ds);
        let back = DurableStore::open(mem, dir(), pol).unwrap();
        let r = back.recovery();
        prop_assert_eq!(r.records_recovered(), acked, "{:?}", r);
        // A tear that cuts exactly at the frame boundary (keep wrapped to
        // zero) leaves a clean, shorter log; any mid-frame cut must be
        // reported as a torn tail with its bytes counted.
        if r.bytes_dropped > 0 {
            prop_assert_eq!(r.tail, TailOutcome::TornTail);
        } else {
            prop_assert_eq!(r.tail, TailOutcome::Clean);
        }
        let expect = ingest_clean(&stream[..acked as usize]);
        prop_assert_eq!(back.store(), &expect);
    }

    /// Bit flips at arbitrary WAL offsets: recovery either still has every
    /// record (flip hit already-superseded bytes — impossible here since
    /// the whole run lives in one segment, so any flip is in live data) or
    /// restores a strictly shorter exact prefix AND reports the
    /// corruption. It never panics and never returns a store that differs
    /// from some clean prefix.
    #[test]
    fn wal_bit_flip_never_silently_accepted(
        stream in stream_strategy(),
        offset_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        prop_assume!(!stream.is_empty());
        let pol = policy(1_000_000, true);
        let fs = Arc::new(MemFs::new());
        drop(ingest_durable(fs.clone(), &stream, pol));
        let wal_file = dir().join(format!("wal-{:010}.wal", 0));
        let len = fs.len(&wal_file).unwrap();
        prop_assume!(len > 0);
        let offset = ((len - 1) as f64 * offset_frac) as u64;
        fs.corrupt_byte(&wal_file, offset, xor).unwrap();
        let back = DurableStore::open(fs, dir(), pol).unwrap();
        let r = back.recovery().clone();
        let n = r.records_recovered() as usize;
        prop_assert!(n <= stream.len());
        if n < stream.len() {
            prop_assert!(
                r.tail != TailOutcome::Clean,
                "dropped records without reporting: {r:?}"
            );
            prop_assert!(r.bytes_dropped > 0, "{r:?}");
        }
        prop_assert_eq!(back.store(), &ingest_clean(&stream[..n]));
    }

    /// Checkpoint bit flips: the damaged checkpoint is rejected (recovery
    /// falls back an epoch and loses nothing, because the WAL chain is
    /// intact) — or, when every checkpoint is hit, recovery refuses.
    #[test]
    fn checkpoint_bit_flip_rejected_or_refused(
        stream in stream_strategy(),
        offset_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        prop_assume!(stream.len() >= 4);
        let pol = policy(3, true);
        let fs = Arc::new(MemFs::new());
        let ds = ingest_durable(fs.clone(), &stream, pol);
        let newest = ds.epoch();
        drop(ds);
        let ckpt = dir().join(format!("ckpt-{newest:010}.wcc"));
        let len = fs.len(&ckpt).unwrap();
        let offset = ((len - 1) as f64 * offset_frac) as u64;
        fs.corrupt_byte(&ckpt, offset, xor).unwrap();
        match DurableStore::open(fs, dir(), pol) {
            Ok(back) => {
                let r = back.recovery();
                prop_assert_eq!(r.checkpoints_rejected, 1, "flip must be detected: {:?}", r);
                prop_assert_eq!(r.records_recovered(), stream.len() as u64, "{:?}", r);
                prop_assert_eq!(back.store(), &ingest_clean(&stream));
            }
            // Both retained checkpoints damaged (only possible when the
            // fallback was also hit — not in this single-flip test) or no
            // fallback existed: refusal is the acceptable outcome.
            Err(_) => prop_assert!(newest == 0, "with a fallback, recovery must succeed"),
        }
    }

    /// Seeded probabilistic torn appends + failed syncs (the FaultPlan
    /// idiom): whatever the fault pattern, recovery yields an exact,
    /// reported prefix of what was acknowledged.
    #[test]
    fn seeded_fault_storm_recovers_reported_prefix(
        stream in stream_strategy(),
        seed in 0u64..1_000,
    ) {
        prop_assume!(!stream.is_empty());
        let pol = DurabilityPolicy {
            sync: SyncPolicy::EveryN(2),
            checkpoint_every: 5,
            delta_encode: true,
        };
        let mem = Arc::new(MemFs::new());
        let fs = Arc::new(FailpointFs::new(
            mem.clone(),
            FailSpec {
                fail_at: vec![],
                seed,
                torn_append_rate: 0.15,
                sync_fail_rate: 0.10,
            },
        ));
        let mut ds = match DurableStore::create(fs, dir(), pol) {
            Ok(ds) => ds,
            // A seeded fault can hit the initial checkpoint/WAL creation;
            // nothing was acknowledged, nothing to verify.
            Err(_) => return Ok(()),
        };
        let mut acked: u64 = 0;
        for (e, t, text) in &stream {
            if ds.record(EntityId::from_u32(*e), *t as Timestamp, text).is_err() {
                break;
            }
            acked += 1;
        }
        drop(ds);
        let back = DurableStore::open(mem, dir(), pol).unwrap();
        let r = back.recovery();
        let n = r.records_recovered();
        // The failure that stopped ingestion can strike AFTER the append
        // landed (failed sync, wedged checkpoint), so recovery may hold
        // one durable-but-unacknowledged record — but never more, because
        // the store wedges at the first error.
        prop_assert!(n <= acked + 1, "recovered {n} > acked {acked} + 1: {r:?}");
        prop_assert_eq!(back.store(), &ingest_clean(&stream[..n as usize]));
        if n < acked {
            prop_assert!(!r.is_clean(), "silent loss of acked records: {r:?}");
        }
    }
}

/// Power loss (all unsynced bytes vanish) under each sync policy: the
/// surviving prefix is exact and bounded by the policy's sync cadence.
#[test]
fn power_loss_respects_sync_policy() {
    let stream: Vec<(u32, u64, String)> = (0..20)
        .map(|i| (i % 3, i as u64 * 5, format!("text [[T{i}]] body")))
        .collect();
    for (sync, min_survive) in [
        (SyncPolicy::Always, 20u64),
        (SyncPolicy::EveryN(4), 16),
        (SyncPolicy::Never, 0),
    ] {
        let pol = DurabilityPolicy {
            sync,
            checkpoint_every: 1_000_000,
            delta_encode: true,
        };
        let fs = Arc::new(MemFs::new());
        drop(ingest_durable(fs.clone(), &stream, pol));
        fs.drop_unsynced();
        let back = DurableStore::open(fs, dir(), pol).unwrap();
        let n = back.recovery().records_recovered();
        assert!(
            n >= min_survive,
            "{sync:?}: only {n} records survived a power loss"
        );
        assert_eq!(back.store(), &ingest_clean(&stream[..n as usize]));
    }
}

/// The WAL delta encoding must actually compress repetitive histories —
/// otherwise the splice-delta tag is dead weight.
#[test]
fn delta_encoding_shrinks_repetitive_histories() {
    let stream: Vec<(u32, u64, String)> = (0..30)
        .map(|i| {
            (
                0,
                i as u64,
                format!("{{{{Infobox settlement\n| population = {i}\n}}}}\nA long stable article body that only changes by one number per revision."),
            )
        })
        .collect();
    let mut sizes = [0u64; 2];
    for (slot, delta) in [(0, false), (1, true)] {
        let fs = Arc::new(MemFs::new());
        let pol = policy(1_000_000, delta);
        drop(ingest_durable(fs.clone(), &stream, pol));
        sizes[slot] = fs.len(&dir().join(format!("wal-{:010}.wal", 0))).unwrap();
        // Either encoding replays to the same store.
        let data = fs.read(&dir().join(format!("wal-{:010}.wal", 0))).unwrap();
        let scan = scan_wal(&data);
        assert_eq!(scan.outcome, TailOutcome::Clean);
        assert_eq!(scan.records.len(), 30);
    }
    assert!(
        sizes[1] * 2 < sizes[0],
        "delta {} should be well under half of full {}",
        sizes[1],
        sizes[0]
    );
}
