//! The out-of-core revision corpus: delta-encoded, hash-sharded segment
//! logs with mmap-backed snapshot materialization.
//!
//! [`RevisionStore`] keeps every revision's full wikitext in memory — fine
//! for thousands of entities, hopeless for the million-entity corpora the
//! real system crawls (full-Wikipedia revision history is terabytes).
//! [`ShardedStore`] keeps the corpus on disk instead and materializes
//! page histories on demand:
//!
//! * **Delta-encoded entity logs.** Each revision is appended as a WAL
//!   frame (`len:u32 crc:u32 payload`, the exact format of
//!   [`crate::wal`]): a line-splice delta against the entity's previous
//!   revision when that is smaller, a full text otherwise. Every
//!   `snapshot_every`-th revision per entity is forced full, so
//!   materializing any revision replays at most `snapshot_every − 1`
//!   deltas past the nearest checkpoint frame.
//! * **Hash sharding.** Entity logs are interleaved across
//!   `shards` segment files by `mix64(entity) % shards`. Shards are
//!   independent: they ingest in parallel (one appender per shard, each
//!   behind its own lock) and fail independently — a torn write in one
//!   segment cannot touch another's bytes, and recovery reports losses
//!   per shard.
//! * **mmap-backed reads.** Materialization reads frames through
//!   [`Vfs::map`]: a zero-copy `mmap(2)` view on a real filesystem, an
//!   owned read on [`MemFs`](crate::failfs::MemFs) so every fault test
//!   still runs. Only the in-memory *frame index* (offsets, lengths,
//!   timestamps) and the bounded caches below stay on the heap.
//! * **Bounded working set.** Materialized histories land in a
//!   byte-budgeted LRU ([`SnapshotCache`]) charged against a shared
//!   [`MemoryBudget`], so the hot window's working set stays warm while
//!   the corpus itself never needs to fit in RAM. During ingest the
//!   per-shard delta bases are bounded the same way: evicting a base
//!   simply restarts that entity's chain with a full frame.
//!
//! **Mining equivalence.** Frames are decoded in arrival order and folded
//! through [`PageHistory::extend`] — one stable sort by timestamp, exactly
//! what [`RevisionStore::record_batch`] does — so a mined result over a
//! `ShardedStore` is byte-identical to the in-memory store at any shard
//! count, snapshot interval, or cache budget (differential proptests pin
//! this).
//!
//! **Crash safety.** Opening a store scans each segment's longest valid
//! frame prefix (CRC + structural header checks), truncates anything
//! after it, and reports per-shard losses in a [`ShardRecoveryReport`] —
//! the same torn-tail/corrupt-frame taxonomy as [`crate::wal::scan_wal`],
//! applied shard by shard.

use crate::failfs::Vfs;
use crate::fault::mix64;
use crate::fetch::{FetchError, FetchSource};
use crate::mmap::FileMap;
use crate::store::{CrawlStats, PageHistory};
use crate::wal::{self, crc32, SyncPolicy, TailOutcome, WalError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wiclean_types::{EntityId, Timestamp};

/// On-disk format version of a sharded store directory.
const SHARD_STORE_VERSION: u32 = 1;

/// Knobs of a [`ShardedStore`]. Validated on construction and at
/// deserialize time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ShardPolicy {
    /// Number of segment files entity logs are hashed across.
    pub shards: u32,
    /// Force a full-text frame every this many revisions per entity, so a
    /// materialization replays at most `snapshot_every − 1` deltas past a
    /// checkpoint frame. 1 disables delta encoding entirely (every frame
    /// full) — the "full-text store" baseline the corpus bench compares
    /// against.
    pub snapshot_every: u32,
    /// Fsync cadence per shard segment, same semantics as the WAL's.
    pub sync: SyncPolicy,
    /// Byte budget for the per-shard delta-base texts kept during ingest
    /// (the previous revision per entity, needed to splice the next).
    /// Evicting a base restarts that entity's chain with a full frame —
    /// a compression heuristic, never a correctness concern.
    pub ingest_base_budget: u64,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        Self {
            shards: 8,
            snapshot_every: 16,
            sync: SyncPolicy::EveryN(256),
            ingest_base_budget: 64 << 20,
        }
    }
}

impl ShardPolicy {
    /// Validates the knob values.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 || self.shards > 4096 {
            return Err("shard policy: shards must be in 1..=4096".to_owned());
        }
        if self.snapshot_every == 0 {
            return Err("shard policy: snapshot_every must be at least 1".to_owned());
        }
        self.sync.validate()
    }
}

impl<'de> serde::Deserialize<'de> for ShardPolicy {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::{content_into_fields, take_field, take_field_or_default};
        const NAME: &str = "ShardPolicy";
        let content = serde::Deserializer::deserialize_content(deserializer)?;
        let mut fields = content_into_fields::<D::Error>(content, NAME)?;
        let defaults = Self::default();
        let policy = Self {
            shards: take_field(&mut fields, "shards", NAME)?,
            snapshot_every: take_field(&mut fields, "snapshot_every", NAME)?,
            sync: take_field(&mut fields, "sync", NAME)?,
            ingest_base_budget: take_field_or_default::<Option<u64>, D::Error>(
                &mut fields,
                "ingest_base_budget",
                NAME,
            )?
            .unwrap_or(defaults.ingest_base_budget),
        };
        policy.validate().map_err(serde::de::Error::custom)?;
        Ok(policy)
    }
}

/// The store's immutable identity, persisted as `meta.json` in the store
/// directory at creation so a reopen cannot mis-shard or mis-checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ShardMeta {
    version: u32,
    shards: u32,
    snapshot_every: u32,
}

/// A shared byte budget. [`SnapshotCache`] evicts while `used > capacity`;
/// other holders of the same budget (the ingest base cache, an
/// [`ActionCache`](crate::cache::ActionCache) accounting its outcomes)
/// charge it too, shrinking the snapshot cache's headroom so the total
/// stays bounded.
#[derive(Debug)]
pub struct MemoryBudget {
    capacity: u64,
    used: AtomicU64,
}

impl MemoryBudget {
    /// A budget of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: AtomicU64::new(0),
        }
    }

    /// The configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Charges `bytes` against the budget.
    pub fn charge(&self, bytes: u64) {
        self.used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Releases `bytes` back to the budget.
    pub fn release(&self, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Whether more than the capacity is currently charged.
    pub fn over(&self) -> bool {
        self.used() > self.capacity
    }
}

/// Approximate heap footprint of a materialized history, for budget
/// accounting: text bytes plus per-revision and per-entry bookkeeping.
pub fn history_bytes(history: &PageHistory) -> u64 {
    let text: usize = history.revisions().iter().map(|r| r.text.len()).sum();
    (text + 48 * history.len() + 64) as u64
}

struct SnapEntry {
    history: Arc<PageHistory>,
    bytes: u64,
    stamp: u64,
}

#[derive(Default)]
struct SnapInner {
    entries: HashMap<EntityId, SnapEntry>,
    /// LRU order: stamp → entity. Stamps are unique (a monotone clock).
    lru: BTreeMap<u64, EntityId>,
    clock: u64,
}

/// Counter snapshot of a [`SnapshotCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to materialize from disk.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
}

/// A byte-budgeted LRU of materialized [`PageHistory`] snapshots, shared
/// across shards and mining threads. Entries are `Arc`s, so an eviction
/// never invalidates a history a miner is still holding.
pub struct SnapshotCache {
    budget: Arc<MemoryBudget>,
    inner: Mutex<SnapInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SnapshotCache {
    /// An empty cache charging `budget`.
    pub fn new(budget: Arc<MemoryBudget>) -> Self {
        Self {
            budget,
            inner: Mutex::new(SnapInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The budget this cache evicts against.
    pub fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// Looks up `entity`, bumping its recency on a hit.
    pub fn get(&self, entity: EntityId) -> Option<Arc<PageHistory>> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        match inner.entries.get_mut(&entity) {
            Some(entry) => {
                inner.lru.remove(&entry.stamp);
                inner.clock += 1;
                entry.stamp = inner.clock;
                inner.lru.insert(entry.stamp, entity);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.history))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `entity`'s materialized history, evicting least-recently
    /// used entries until the budget is respected again. A history larger
    /// than the whole budget is not cached at all (it would only thrash).
    pub fn insert(&self, entity: EntityId, history: Arc<PageHistory>, bytes: u64) {
        if bytes > self.budget.capacity() {
            return;
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(old) = inner.entries.remove(&entity) {
            inner.lru.remove(&old.stamp);
            self.budget.release(old.bytes);
        }
        inner.clock += 1;
        let stamp = inner.clock;
        self.budget.charge(bytes);
        inner.entries.insert(
            entity,
            SnapEntry {
                history,
                bytes,
                stamp,
            },
        );
        inner.lru.insert(stamp, entity);
        while self.budget.over() && inner.entries.len() > 1 {
            let Some((&oldest, &victim)) = inner.lru.iter().next() else {
                break;
            };
            if victim == entity {
                break; // never evict the entry just inserted
            }
            inner.lru.remove(&oldest);
            if let Some(gone) = inner.entries.remove(&victim) {
                self.budget.release(gone.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops `entity`'s cached snapshot (called on append, so readers
    /// never see a stale history).
    pub fn invalidate(&self, entity: EntityId) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(old) = inner.entries.remove(&entity) {
            inner.lru.remove(&old.stamp);
            self.budget.release(old.bytes);
        }
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SnapshotCacheStats {
        SnapshotCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// What one shard lost during recovery. Only shards that actually dropped
/// bytes appear in a [`ShardRecoveryReport`]'s loss list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLoss {
    /// Which shard.
    pub shard: u32,
    /// Frame records dropped (counted only when the dropped region still
    /// frame-scans; a torn tail's partial record is bytes-only).
    pub records_dropped: u64,
    /// Bytes after the shard's last valid frame.
    pub bytes_dropped: u64,
    /// How the shard's scan ended.
    pub outcome: TailOutcome,
}

/// The per-shard outcome of opening a [`ShardedStore`]: what every shard
/// kept, and exactly what the damaged ones lost. Shards are independent
/// files, so one shard's torn tail never costs another shard a byte.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRecoveryReport {
    /// Shards scanned.
    pub shards: u32,
    /// Frame records kept across all shards.
    pub records_recovered: u64,
    /// Shards that dropped bytes, with per-shard accounting.
    pub losses: Vec<ShardLoss>,
}

impl ShardRecoveryReport {
    /// Whether every shard scanned clean.
    pub fn is_clean(&self) -> bool {
        self.losses.is_empty()
    }

    /// Total bytes dropped across shards.
    pub fn bytes_dropped(&self) -> u64 {
        self.losses.iter().map(|l| l.bytes_dropped).sum()
    }

    /// Total records dropped across shards.
    pub fn records_dropped(&self) -> u64 {
        self.losses.iter().map(|l| l.records_dropped).sum()
    }
}

/// Counter snapshot of a [`ShardedStore`] — the corpus-side numbers that
/// feed `MineStats` (`bytes_on_disk`, snapshot-cache traffic, delta-chain
/// replay work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Valid segment bytes across all shards.
    pub bytes_on_disk: u64,
    /// Full-text frames written.
    pub frames_full: u64,
    /// Delta frames written.
    pub frames_delta: u64,
    /// Snapshot-cache hits.
    pub snapshot_cache_hits: u64,
    /// Snapshot-cache misses (each one materialized from disk).
    pub snapshot_cache_misses: u64,
    /// Snapshot-cache evictions.
    pub snapshot_cache_evictions: u64,
    /// Delta frames decoded while materializing snapshots.
    pub delta_chain_replays: u64,
    /// Times the store handed its segments' resident pages back to the
    /// kernel (`madvise(MADV_DONTNEED)`) because the pages faulted in by
    /// materializations exceeded the memory budget. Zero on in-memory
    /// filesystems and on corpora smaller than the budget.
    #[serde(default)]
    pub map_residency_releases: u64,
}

/// One frame's position in a shard segment, held in the in-memory index.
/// Timestamps are not kept here — decoding provides them — so the index
/// stays small at million-entity scale.
#[derive(Debug, Clone, Copy)]
struct FrameRef {
    /// Frame start (the `len` header) within the segment file.
    offset: u64,
    /// Payload length.
    len: u32,
    /// Whether the frame is full-text (a chain checkpoint).
    full: bool,
}

/// One entity's log within a shard: its frames in arrival order plus the
/// running maximum timestamp (for out-of-order accounting, matching
/// [`PageHistory::push`]'s definition).
#[derive(Debug, Default)]
struct EntityLog {
    frames: Vec<FrameRef>,
    max_time: Timestamp,
}

struct ShardState {
    /// Frame index: everything needed to locate and schedule frames
    /// without touching segment bytes.
    index: HashMap<EntityId, EntityLog>,
    /// Valid bytes in the segment (== next append offset).
    bytes: u64,
    /// Bounded delta bases for ingest (previous text per entity).
    bases: HashMap<EntityId, String>,
    bases_bytes: u64,
    /// FIFO insertion order for base eviction.
    base_order: VecDeque<EntityId>,
    /// Appends since the last fsync (for `SyncPolicy::EveryN`).
    since_sync: u32,
    /// Cached byte view of the segment, remapped when it grows.
    map: Option<(u64, Arc<FileMap>)>,
}

impl ShardState {
    fn empty() -> Self {
        Self {
            index: HashMap::new(),
            bytes: 0,
            bases: HashMap::new(),
            bases_bytes: 0,
            base_order: VecDeque::new(),
            since_sync: 0,
            map: None,
        }
    }
}

#[derive(Default)]
struct Counters {
    frames_full: AtomicU64,
    frames_delta: AtomicU64,
    delta_chain_replays: AtomicU64,
    pages_fetched: AtomicU64,
    revisions_scanned: AtomicU64,
    bytes_scanned: AtomicU64,
    out_of_order: AtomicU64,
    /// Page-granular estimate of segment bytes faulted in by
    /// materializations since the last residency release.
    map_touch_bytes: AtomicU64,
    map_residency_releases: AtomicU64,
}

/// The out-of-core revision corpus: see the module docs for the design.
///
/// Appends take `&self` and lock only the target entity's shard, so
/// ingestion parallelizes per shard (one `MiningPool` task per shard —
/// `wiclean_core`'s `ingest_sharded` drives this). Reads lock a shard only
/// long enough to clone the entity's frame list and grab the segment map,
/// then decode lock-free.
pub struct ShardedStore<V> {
    fs: V,
    dir: PathBuf,
    policy: ShardPolicy,
    states: Vec<Mutex<ShardState>>,
    counters: Counters,
    cache: SnapshotCache,
}

impl<V: Vfs> ShardedStore<V> {
    /// Creates an empty sharded store in `dir` (which must not already
    /// contain one), persisting the store's identity in `meta.json`.
    pub fn create(
        fs: V,
        dir: &Path,
        policy: ShardPolicy,
        budget: Arc<MemoryBudget>,
    ) -> Result<Self, WalError> {
        policy.validate().map_err(WalError::Corrupt)?;
        fs.create_dir_all(dir)?;
        let meta_path = dir.join("meta.json");
        if fs.exists(&meta_path) {
            return Err(WalError::Corrupt(format!(
                "sharded store already exists at {}",
                dir.display()
            )));
        }
        let meta = ShardMeta {
            version: SHARD_STORE_VERSION,
            shards: policy.shards,
            snapshot_every: policy.snapshot_every,
        };
        let json = serde_json::to_string(&meta).expect("meta serializes");
        fs.write(&meta_path, json.as_bytes())?;
        fs.sync(&meta_path)?;
        let states = (0..policy.shards)
            .map(|_| Mutex::new(ShardState::empty()))
            .collect();
        Ok(Self {
            fs,
            dir: dir.to_owned(),
            policy,
            states,
            counters: Counters::default(),
            cache: SnapshotCache::new(budget),
        })
    }

    /// Opens an existing sharded store, scanning every shard's longest
    /// valid frame prefix, truncating damage, and reporting per-shard
    /// losses. `sync` and `ingest_base_budget` come from `policy`; the
    /// structural knobs (`shards`, `snapshot_every`) come from the
    /// directory's `meta.json` — they are properties of the bytes on
    /// disk, not of the reopening process.
    pub fn open(
        fs: V,
        dir: &Path,
        policy: ShardPolicy,
        budget: Arc<MemoryBudget>,
    ) -> Result<(Self, ShardRecoveryReport), WalError> {
        let meta_path = dir.join("meta.json");
        let meta_bytes = fs.read(&meta_path).map_err(|e| {
            WalError::Corrupt(format!(
                "sharded store at {} has no readable meta.json: {e}",
                dir.display()
            ))
        })?;
        let meta_text = String::from_utf8(meta_bytes)
            .map_err(|_| WalError::Corrupt("meta.json is not UTF-8".to_owned()))?;
        let meta: ShardMeta = serde_json::from_str(&meta_text)
            .map_err(|e| WalError::Corrupt(format!("meta.json does not parse: {e}")))?;
        if meta.version != SHARD_STORE_VERSION {
            return Err(WalError::Corrupt(format!(
                "sharded store version {} (this build reads {})",
                meta.version, SHARD_STORE_VERSION
            )));
        }
        let policy = ShardPolicy {
            shards: meta.shards,
            snapshot_every: meta.snapshot_every,
            ..policy
        };
        policy.validate().map_err(WalError::Corrupt)?;

        let mut states = Vec::with_capacity(policy.shards as usize);
        let mut report = ShardRecoveryReport {
            shards: policy.shards,
            ..ShardRecoveryReport::default()
        };
        for shard in 0..policy.shards {
            let path = segment_path(dir, shard);
            let mut state = ShardState::empty();
            if fs.exists(&path) {
                let data = fs.map(&path)?;
                let scan = scan_segment(&data, &mut state.index);
                state.bytes = scan.valid_bytes;
                report.records_recovered += scan.records;
                if scan.dropped_bytes > 0 {
                    drop(data);
                    fs.truncate(&path, scan.valid_bytes)?;
                    fs.sync(&path)?;
                    report.losses.push(ShardLoss {
                        shard,
                        records_dropped: 0,
                        bytes_dropped: scan.dropped_bytes,
                        outcome: scan.outcome,
                    });
                }
            }
            states.push(Mutex::new(state));
        }
        Ok((
            Self {
                fs,
                dir: dir.to_owned(),
                policy,
                states,
                counters: Counters::default(),
                cache: SnapshotCache::new(budget),
            },
            report,
        ))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The effective policy (structural knobs come from `meta.json` after
    /// an [`open`](Self::open)).
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    /// The snapshot cache (for stats or warm-up).
    pub fn cache(&self) -> &SnapshotCache {
        &self.cache
    }

    /// Which shard `entity`'s log lives in.
    pub fn shard_of(&self, entity: EntityId) -> u32 {
        (mix64(entity.as_u32() as u64) % self.policy.shards as u64) as u32
    }

    /// Appends one revision of `entity`. Locks only the entity's shard,
    /// so distinct shards append concurrently.
    pub fn append(&self, entity: EntityId, time: Timestamp, text: &str) -> Result<(), WalError> {
        let shard = self.shard_of(entity);
        let path = segment_path(&self.dir, shard);
        let mut state = self.states[shard as usize].lock();
        let state = &mut *state;

        let log = state.index.entry(entity).or_default();
        let seen = log.frames.len() as u32;
        // Chain checkpoints: the first frame per entity and every
        // snapshot_every-th after it are forced full. snapshot_every == 1
        // is the all-full (delta-disabled) configuration.
        let want_delta = seen > 0 && !seen.is_multiple_of(self.policy.snapshot_every);
        let base = if want_delta {
            state.bases.get(&entity).map(String::as_str)
        } else {
            None
        };
        let payload = wal::encode_payload_parts(entity, time, text, base);
        let full = payload[0] == wal::TAG_FULL;
        let frame = wal::frame_payload(&payload);

        self.fs.append(&path, &frame)?;

        log.frames.push(FrameRef {
            offset: state.bytes,
            len: payload.len() as u32,
            full,
        });
        if time < log.max_time {
            self.counters.out_of_order.fetch_add(1, Ordering::Relaxed);
        } else {
            log.max_time = time;
        }
        state.bytes += frame.len() as u64;
        if full {
            self.counters.frames_full.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.frames_delta.fetch_add(1, Ordering::Relaxed);
        }

        // Refresh the entity's delta base, evicting oldest bases past the
        // budget (their entities simply restart with a full frame later).
        match state.bases.insert(entity, text.to_owned()) {
            Some(old) => state.bases_bytes -= old.len() as u64,
            None => state.base_order.push_back(entity),
        }
        state.bases_bytes += text.len() as u64;
        while state.bases_bytes > self.policy.ingest_base_budget {
            let Some(victim) = state.base_order.pop_front() else {
                break;
            };
            if victim == entity {
                state.base_order.push_back(victim);
                if state.base_order.len() == 1 {
                    break;
                }
                continue;
            }
            if let Some(gone) = state.bases.remove(&victim) {
                state.bases_bytes -= gone.len() as u64;
            }
        }

        self.cache.invalidate(entity);

        match self.policy.sync {
            SyncPolicy::Always => self.fs.sync(&path)?,
            SyncPolicy::EveryN(n) => {
                state.since_sync += 1;
                if state.since_sync >= n {
                    self.fs.sync(&path)?;
                    state.since_sync = 0;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Appends a whole history (arrival order preserved).
    pub fn append_history<'a>(
        &self,
        entity: EntityId,
        revisions: impl IntoIterator<Item = (Timestamp, &'a str)>,
    ) -> Result<(), WalError> {
        for (time, text) in revisions {
            self.append(entity, time, text)?;
        }
        Ok(())
    }

    /// Fsyncs every shard segment (regardless of sync policy).
    pub fn flush(&self) -> Result<(), WalError> {
        for shard in 0..self.policy.shards {
            let path = segment_path(&self.dir, shard);
            let mut state = self.states[shard as usize].lock();
            if state.bytes > 0 {
                self.fs.sync(&path)?;
                state.since_sync = 0;
            }
        }
        Ok(())
    }

    /// Materializes `entity`'s full history: cache hit, or decode the
    /// entity's frame chain from the (mapped) segment and stable-sort by
    /// timestamp — byte-identical to [`RevisionStore::record_batch`] over
    /// the same arrival sequence.
    ///
    /// [`RevisionStore::record_batch`]: crate::store::RevisionStore::record_batch
    pub fn materialize(&self, entity: EntityId) -> Result<Option<Arc<PageHistory>>, WalError> {
        if let Some(hit) = self.cache.get(entity) {
            return Ok(Some(hit));
        }
        let shard = self.shard_of(entity);
        let (frames, map) = {
            let mut state = self.states[shard as usize].lock();
            let Some(log) = state.index.get(&entity) else {
                return Ok(None);
            };
            let frames = log.frames.clone();
            let need = frames.last().map_or(0, |f| f.offset + 8 + f.len as u64);
            let map = self.segment_map(&mut state, shard, need)?;
            (frames, map)
        };

        let mut bases = HashMap::new();
        let mut revisions = Vec::with_capacity(frames.len());
        let mut deltas = 0u64;
        for frame in &frames {
            let start = frame.offset as usize + 8;
            let end = start + frame.len as usize;
            let payload = map.get(start..end).ok_or_else(|| {
                WalError::Corrupt(format!("shard {shard}: frame runs past mapped segment"))
            })?;
            let stored_crc = u32::from_le_bytes(
                map[frame.offset as usize + 4..frame.offset as usize + 8]
                    .try_into()
                    .expect("4 crc bytes"),
            );
            if crc32(payload) != stored_crc {
                return Err(WalError::Corrupt(format!(
                    "shard {shard}: frame at {} fails its checksum (bit rot after open?)",
                    frame.offset
                )));
            }
            let record = wal::decode_payload(payload, &mut bases)
                .map_err(|e| WalError::Corrupt(format!("shard {shard}: {e}")))?;
            if !frame.full {
                deltas += 1;
            }
            revisions.push((record.time, record.text));
        }
        if deltas > 0 {
            self.counters
                .delta_chain_replays
                .fetch_add(deltas, Ordering::Relaxed);
        }
        self.note_map_touch(frames.len() as u64);

        let mut history = PageHistory::new();
        history.extend(revisions);
        let history = Arc::new(history);
        let bytes = history_bytes(&history);
        self.cache.insert(entity, Arc::clone(&history), bytes);
        Ok(Some(history))
    }

    /// Accounts `frames` decoded frames against the residency budget and
    /// hands the segments' resident pages back to the kernel once the
    /// estimate crosses it. File-backed pages are only evicted under
    /// global memory pressure, so a scan over segments larger than RAM's
    /// comfort zone would otherwise accumulate the whole corpus in RSS —
    /// an out-of-core store has to give pages back itself. Each frame is
    /// charged one page (frames are far smaller than a page but scattered,
    /// and `MADV_RANDOM` suppresses readahead, so a frame touch faults in
    /// about one page); the overestimate merely releases a little early.
    fn note_map_touch(&self, frames: u64) {
        const PAGE: u64 = 4096;
        let budget = self.cache.budget().capacity();
        let touched = self
            .counters
            .map_touch_bytes
            .fetch_add(frames * PAGE, Ordering::Relaxed)
            + frames * PAGE;
        if touched < budget {
            return;
        }
        // One thread wins the reset and performs the release; the rest
        // keep accumulating into the fresh counter.
        if self.counters.map_touch_bytes.swap(0, Ordering::Relaxed) < budget {
            return;
        }
        let mut released = 0u64;
        for state in &self.states {
            if let Some((_, map)) = &state.lock().map {
                released += map.release_resident();
            }
        }
        if released > 0 {
            self.counters
                .map_residency_releases
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Returns the shard's byte view, remapping when the segment grew past
    /// the cached mapping.
    fn segment_map(
        &self,
        state: &mut ShardState,
        shard: u32,
        need: u64,
    ) -> Result<Arc<FileMap>, WalError> {
        if let Some((len, map)) = &state.map {
            if *len >= need {
                return Ok(Arc::clone(map));
            }
        }
        let map = Arc::new(self.fs.map(&segment_path(&self.dir, shard))?);
        if (map.len() as u64) < need {
            return Err(WalError::Corrupt(format!(
                "shard {shard}: segment shorter than its index ({} < {need})",
                map.len()
            )));
        }
        state.map = Some((map.len() as u64, Arc::clone(&map)));
        Ok(map)
    }

    /// Whether `entity` has any recorded revisions.
    pub fn contains(&self, entity: EntityId) -> bool {
        let shard = self.shard_of(entity);
        self.states[shard as usize]
            .lock()
            .index
            .contains_key(&entity)
    }

    /// All entities with at least one revision, ascending.
    pub fn entities(&self) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .states
            .iter()
            .flat_map(|s| s.lock().index.keys().copied().collect::<Vec<_>>())
            .collect();
        out.sort();
        out
    }

    /// Entities with at least one revision.
    pub fn page_count(&self) -> usize {
        self.states.iter().map(|s| s.lock().index.len()).sum()
    }

    /// Total revisions across all entities.
    pub fn revision_count(&self) -> u64 {
        self.states
            .iter()
            .map(|s| {
                s.lock()
                    .index
                    .values()
                    .map(|log| log.frames.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Corpus-side counter snapshot (disk bytes, frame mix, cache traffic,
    /// replay work).
    pub fn corpus_stats(&self) -> CorpusStats {
        let cache = self.cache.stats();
        CorpusStats {
            bytes_on_disk: self.states.iter().map(|s| s.lock().bytes).sum(),
            frames_full: self.counters.frames_full.load(Ordering::Relaxed),
            frames_delta: self.counters.frames_delta.load(Ordering::Relaxed),
            snapshot_cache_hits: cache.hits,
            snapshot_cache_misses: cache.misses,
            snapshot_cache_evictions: cache.evictions,
            delta_chain_replays: self.counters.delta_chain_replays.load(Ordering::Relaxed),
            map_residency_releases: self.counters.map_residency_releases.load(Ordering::Relaxed),
        }
    }
}

impl<V: Vfs> FetchSource for ShardedStore<V> {
    fn fetch_history(&self, entity: EntityId) -> Result<Option<Cow<'_, PageHistory>>, FetchError> {
        match self.materialize(entity) {
            Ok(Some(history)) => {
                self.counters.pages_fetched.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .revisions_scanned
                    .fetch_add(history.len() as u64, Ordering::Relaxed);
                let bytes: usize = history.revisions().iter().map(|r| r.text.len()).sum();
                self.counters
                    .bytes_scanned
                    .fetch_add(bytes as u64, Ordering::Relaxed);
                Ok(Some(Cow::Owned((*history).clone())))
            }
            Ok(None) => Ok(None),
            Err(_) => {
                // The chain is unreadable (post-open bit rot): the page is
                // lost to this run, exactly like a crawl's deleted page.
                let lost = self.history_version(entity);
                Err(FetchError::Gone {
                    revisions_lost: lost,
                })
            }
        }
    }

    fn crawl_stats(&self) -> CrawlStats {
        CrawlStats {
            pages_fetched: self.counters.pages_fetched.load(Ordering::Relaxed),
            revisions_scanned: self.counters.revisions_scanned.load(Ordering::Relaxed),
            bytes_scanned: self.counters.bytes_scanned.load(Ordering::Relaxed),
            out_of_order: self.counters.out_of_order.load(Ordering::Relaxed),
            ..CrawlStats::default()
        }
    }

    fn history_version(&self, entity: EntityId) -> u64 {
        let shard = self.shard_of(entity);
        self.states[shard as usize]
            .lock()
            .index
            .get(&entity)
            .map_or(0, |log| log.frames.len() as u64)
    }
}

/// `dir/shard-NNNN.seg`.
fn segment_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard:04}.seg"))
}

struct SegmentScan {
    records: u64,
    valid_bytes: u64,
    dropped_bytes: u64,
    outcome: TailOutcome,
}

/// Scans a segment image's longest valid frame prefix into `index`,
/// *without* materializing any text: per frame it checks the CRC and the
/// structural header (tag, lengths adding up, delta frames having a prior
/// frame for their entity), which is everything [`wal::scan_wal`] checks
/// except UTF-8 validity and splice bounds — those are re-verified lazily
/// at materialization, where the base text exists.
fn scan_segment(data: &[u8], index: &mut HashMap<EntityId, EntityLog>) -> SegmentScan {
    let mut at = 0usize;
    let mut records = 0u64;
    let mut outcome = TailOutcome::Clean;
    while at < data.len() {
        let remaining = data.len() - at;
        if remaining < 8 {
            outcome = TailOutcome::TornTail;
            break;
        }
        let len = u32::from_le_bytes(data[at..at + 4].try_into().expect("4 len bytes"));
        let crc = u32::from_le_bytes(data[at + 4..at + 8].try_into().expect("4 crc bytes"));
        if len > wal::MAX_PAYLOAD {
            outcome = TailOutcome::CorruptFrame;
            break;
        }
        if (len as usize) > remaining - 8 {
            outcome = TailOutcome::TornTail;
            break;
        }
        let payload = &data[at + 8..at + 8 + len as usize];
        if crc32(payload) != crc {
            outcome = TailOutcome::CorruptFrame;
            break;
        }
        match parse_frame_header(payload, index) {
            Some((entity, time, full)) => {
                let log = index.entry(entity).or_default();
                log.frames.push(FrameRef {
                    offset: at as u64,
                    len,
                    full,
                });
                log.max_time = log.max_time.max(time);
                records += 1;
            }
            None => {
                outcome = TailOutcome::CorruptFrame;
                break;
            }
        }
        at += 8 + len as usize;
    }
    SegmentScan {
        records,
        valid_bytes: at as u64,
        dropped_bytes: (data.len() - at) as u64,
        outcome,
    }
}

/// Structural header check of one payload; returns `(entity, time, full)`
/// or `None` if the frame cannot be valid.
fn parse_frame_header(
    payload: &[u8],
    index: &HashMap<EntityId, EntityLog>,
) -> Option<(EntityId, Timestamp, bool)> {
    if payload.len() < 13 {
        return None;
    }
    let tag = payload[0];
    let entity = EntityId::from_u32(u32::from_le_bytes(payload[1..5].try_into().ok()?));
    let time = u64::from_le_bytes(payload[5..13].try_into().ok()?);
    match tag {
        wal::TAG_FULL => {
            if payload.len() < 17 {
                return None;
            }
            let text_len = u32::from_le_bytes(payload[13..17].try_into().ok()?) as usize;
            (17 + text_len == payload.len()).then_some((entity, time, true))
        }
        wal::TAG_DELTA => {
            if payload.len() < 25 {
                return None;
            }
            let mid_len = u32::from_le_bytes(payload[21..25].try_into().ok()?) as usize;
            if 25 + mid_len != payload.len() {
                return None;
            }
            // A delta's base is the previous frame for the same entity in
            // this segment; without one the chain cannot decode.
            index
                .get(&entity)
                .is_some_and(|log| !log.frames.is_empty())
                .then_some((entity, time, false))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failfs::MemFs;
    use crate::store::RevisionStore;

    fn budget(bytes: u64) -> Arc<MemoryBudget> {
        Arc::new(MemoryBudget::new(bytes))
    }

    fn policy(shards: u32, snapshot_every: u32) -> ShardPolicy {
        ShardPolicy {
            shards,
            snapshot_every,
            sync: SyncPolicy::Always,
            ..ShardPolicy::default()
        }
    }

    fn text(i: usize) -> String {
        format!("line one stays\nlink points at [[T{i}]]\nline three stays\n")
    }

    #[test]
    fn round_trips_against_revision_store() {
        let fs = MemFs::new();
        let dir = Path::new("/store");
        let store = ShardedStore::create(&fs, dir, policy(4, 3), budget(1 << 20)).unwrap();
        let mut reference = RevisionStore::new();
        // Out-of-order, interleaved, with in-place edits.
        let stream = [
            (7u32, 30u64, 0usize),
            (3, 10, 1),
            (7, 20, 2),
            (7, 20, 3), // equal timestamps keep arrival order
            (3, 40, 4),
            (9, 5, 5),
            (7, 25, 6),
        ];
        for &(e, t, i) in &stream {
            let entity = EntityId::from_u32(e);
            store.append(entity, t, &text(i)).unwrap();
            reference.record(entity, t, text(i));
        }
        for &(e, _, _) in &stream {
            let entity = EntityId::from_u32(e);
            let got = store.materialize(entity).unwrap().unwrap();
            assert_eq!(got.revisions(), reference.peek(entity).unwrap().revisions());
        }
        assert_eq!(store.page_count(), 3);
        assert_eq!(store.revision_count(), 7);
    }

    #[test]
    fn snapshot_every_bounds_delta_chains() {
        let fs = MemFs::new();
        let store =
            ShardedStore::create(&fs, Path::new("/k"), policy(1, 4), budget(1 << 20)).unwrap();
        let e = EntityId::from_u32(1);
        for i in 0..10 {
            store.append(e, i as u64, &text(i)).unwrap();
        }
        let stats = store.corpus_stats();
        // Frames 0, 4, 8 are forced full; the rest may delta (and do, the
        // edit touches one line of three).
        assert_eq!(stats.frames_full, 3);
        assert_eq!(stats.frames_delta, 7);
    }

    #[test]
    fn delta_disabled_writes_all_full_frames() {
        let fs = MemFs::new();
        let store =
            ShardedStore::create(&fs, Path::new("/f"), policy(2, 1), budget(1 << 20)).unwrap();
        let e = EntityId::from_u32(1);
        for i in 0..6 {
            store.append(e, i as u64, &text(i)).unwrap();
        }
        let stats = store.corpus_stats();
        assert_eq!(stats.frames_delta, 0);
        assert_eq!(stats.frames_full, 6);
        assert_eq!(
            store.materialize(e).unwrap().unwrap().len(),
            6,
            "all-full store still materializes"
        );
    }

    #[cfg(unix)]
    #[test]
    fn tiny_budget_releases_map_residency_on_real_fs() {
        use crate::failfs::RealFs;

        let dir = std::env::temp_dir().join(format!("wiclean-shard-resid-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut reference = RevisionStore::new();
        {
            let store = ShardedStore::create(RealFs, &dir, policy(2, 4), budget(1 << 20)).unwrap();
            for e in 0..16u32 {
                for r in 0..6usize {
                    let entity = EntityId::from_u32(e);
                    store
                        .append(entity, r as u64, &text(e as usize + r))
                        .unwrap();
                    reference.record(entity, r as u64, text(e as usize + r));
                }
            }
            store.flush().unwrap();
        }
        // A budget far below one materialization's page estimate forces a
        // residency release on (nearly) every decode.
        let (store, report) = ShardedStore::open(RealFs, &dir, policy(2, 4), budget(4096)).unwrap();
        assert!(report.is_clean());
        for e in 0..16u32 {
            let entity = EntityId::from_u32(e);
            let got = store.materialize(entity).unwrap().unwrap();
            assert_eq!(
                got.revisions(),
                reference.peek(entity).unwrap().revisions(),
                "released pages must fault back in with identical bytes"
            );
        }
        let stats = store.corpus_stats();
        assert!(
            stats.map_residency_releases > 0,
            "mapped segments over budget must be handed back, stats: {stats:?}"
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_rebuilds_index_and_serves_identical_histories() {
        let fs = MemFs::new();
        let dir = Path::new("/reopen");
        let mut reference = RevisionStore::new();
        {
            let store = ShardedStore::create(&fs, dir, policy(3, 2), budget(1 << 20)).unwrap();
            for e in 0..20u32 {
                for r in 0..5usize {
                    let entity = EntityId::from_u32(e);
                    let t = (r as u64) * 7 % 13; // deliberately out of order
                    store.append(entity, t, &text(e as usize + r)).unwrap();
                    reference.record(entity, t, text(e as usize + r));
                }
            }
            store.flush().unwrap();
        }
        let (store, report) = ShardedStore::open(&fs, dir, policy(3, 2), budget(1 << 20)).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.records_recovered, 100);
        for e in 0..20u32 {
            let entity = EntityId::from_u32(e);
            let got = store.materialize(entity).unwrap().unwrap();
            assert_eq!(got.revisions(), reference.peek(entity).unwrap().revisions());
        }
    }

    #[test]
    fn open_uses_meta_shard_count_not_callers() {
        let fs = MemFs::new();
        let dir = Path::new("/meta");
        {
            let store = ShardedStore::create(&fs, dir, policy(5, 2), budget(1 << 20)).unwrap();
            store.append(EntityId::from_u32(9), 1, "x\n").unwrap();
            store.flush().unwrap();
        }
        // Caller passes a different shard count; meta.json wins.
        let (store, _) = ShardedStore::open(&fs, dir, policy(2, 7), budget(1 << 20)).unwrap();
        assert_eq!(store.policy().shards, 5);
        assert_eq!(store.policy().snapshot_every, 2);
        assert!(store.contains(EntityId::from_u32(9)));
    }

    #[test]
    fn torn_tail_in_one_shard_leaves_others_intact() {
        let fs = MemFs::new();
        let dir = Path::new("/torn");
        let mut per_entity = HashMap::new();
        {
            let store = ShardedStore::create(&fs, dir, policy(4, 3), budget(1 << 20)).unwrap();
            for e in 0..12u32 {
                let entity = EntityId::from_u32(e);
                for r in 0..3usize {
                    store
                        .append(entity, r as u64, &text(e as usize + r))
                        .unwrap();
                }
                per_entity.insert(entity, store.shard_of(entity));
            }
            store.flush().unwrap();
        }
        // Tear the tail of shard 0 only.
        let victim_path = segment_path(dir, 0);
        let len = fs.len(&victim_path).unwrap();
        fs.truncate(&victim_path, len - 5).unwrap();

        let (store, report) = ShardedStore::open(&fs, dir, policy(4, 3), budget(1 << 20)).unwrap();
        assert_eq!(report.losses.len(), 1);
        assert_eq!(report.losses[0].shard, 0);
        assert_eq!(report.losses[0].outcome, TailOutcome::TornTail);
        assert!(report.losses[0].bytes_dropped > 0);
        // Every entity in an untouched shard still materializes in full.
        for (&entity, &shard) in &per_entity {
            let got = store.materialize(entity).unwrap().unwrap();
            if shard != 0 {
                assert_eq!(got.len(), 3, "shard {shard} must be unaffected");
            }
        }
    }

    #[test]
    fn corrupt_frame_drops_that_shards_suffix_only() {
        let fs = MemFs::new();
        let dir = Path::new("/rot");
        {
            let store = ShardedStore::create(&fs, dir, policy(2, 2), budget(1 << 20)).unwrap();
            for e in 0..8u32 {
                let entity = EntityId::from_u32(e);
                for r in 0..4usize {
                    store.append(entity, r as u64, &text(r)).unwrap();
                }
            }
            store.flush().unwrap();
        }
        let victim = segment_path(dir, 1);
        let mid = fs.len(&victim).unwrap() / 2;
        fs.corrupt_byte(&victim, mid, 0x40).unwrap();

        let (store, report) = ShardedStore::open(&fs, dir, policy(2, 2), budget(1 << 20)).unwrap();
        assert_eq!(report.losses.len(), 1);
        assert_eq!(report.losses[0].shard, 1);
        assert_eq!(report.losses[0].outcome, TailOutcome::CorruptFrame);
        // Shard 0's entities are complete.
        for e in 0..8u32 {
            let entity = EntityId::from_u32(e);
            if store.shard_of(entity) == 0 {
                assert_eq!(store.materialize(entity).unwrap().unwrap().len(), 4);
            }
        }
    }

    #[test]
    fn snapshot_cache_hits_and_evicts_within_budget() {
        let fs = MemFs::new();
        // Budget fits roughly one materialized history.
        let b = budget(600);
        let store = ShardedStore::create(&fs, Path::new("/lru"), policy(1, 4), b).unwrap();
        for e in 0..4u32 {
            let entity = EntityId::from_u32(e);
            for r in 0..3usize {
                store.append(entity, r as u64, &text(r)).unwrap();
            }
        }
        let e0 = EntityId::from_u32(0);
        store.materialize(e0).unwrap();
        store.materialize(e0).unwrap(); // hit
        store.materialize(EntityId::from_u32(1)).unwrap(); // evicts e0
        store.materialize(e0).unwrap(); // miss again
        let stats = store.corpus_stats();
        assert_eq!(stats.snapshot_cache_hits, 1);
        assert_eq!(stats.snapshot_cache_misses, 3);
        assert!(stats.snapshot_cache_evictions >= 1);
        assert!(
            store.cache().budget().used() <= store.cache().budget().capacity(),
            "cache must respect its byte budget"
        );
    }

    #[test]
    fn append_invalidates_cached_snapshot() {
        let fs = MemFs::new();
        let store =
            ShardedStore::create(&fs, Path::new("/inv"), policy(1, 4), budget(1 << 20)).unwrap();
        let e = EntityId::from_u32(3);
        store.append(e, 1, "a\n").unwrap();
        assert_eq!(store.materialize(e).unwrap().unwrap().len(), 1);
        store.append(e, 2, "b\n").unwrap();
        assert_eq!(
            store.materialize(e).unwrap().unwrap().len(),
            2,
            "append must invalidate the cached snapshot"
        );
        assert_eq!(store.history_version(e), 2);
    }

    #[test]
    fn evicted_ingest_base_restarts_chain_with_full_frame() {
        let fs = MemFs::new();
        let mut p = policy(1, 100);
        p.ingest_base_budget = 1; // evict after every insert
        let store = ShardedStore::create(&fs, Path::new("/base"), p, budget(1 << 20)).unwrap();
        let a = EntityId::from_u32(1);
        let b = EntityId::from_u32(2);
        store.append(a, 1, &text(0)).unwrap();
        store.append(b, 1, &text(0)).unwrap(); // evicts a's base
        store.append(a, 2, &text(1)).unwrap(); // no base: must write full
        let stats = store.corpus_stats();
        assert_eq!(stats.frames_delta, 0, "evicted bases force full frames");
        // And the history still materializes correctly.
        assert_eq!(store.materialize(a).unwrap().unwrap().len(), 2);
    }

    #[test]
    fn delta_frames_shrink_the_segment() {
        let fs = MemFs::new();
        let long = "header line\n".repeat(40);
        let edit = |i: usize| format!("{long}tail [[T{i}]]\n");
        let mk = |snapshot_every: u32, dir: &str| {
            let store = ShardedStore::create(
                &fs,
                Path::new(dir),
                policy(1, snapshot_every),
                budget(1 << 20),
            )
            .unwrap();
            let e = EntityId::from_u32(1);
            for i in 0..12usize {
                store.append(e, i as u64, &edit(i)).unwrap();
            }
            store.corpus_stats().bytes_on_disk
        };
        let delta_bytes = mk(16, "/delta");
        let full_bytes = mk(1, "/full");
        assert!(
            delta_bytes * 4 < full_bytes,
            "single-line edits must delta-compress ≥4×: {delta_bytes} vs {full_bytes}"
        );
    }

    #[test]
    fn fetch_source_counts_crawl_work() {
        let fs = MemFs::new();
        let store =
            ShardedStore::create(&fs, Path::new("/crawl"), policy(2, 4), budget(1 << 20)).unwrap();
        let e = EntityId::from_u32(1);
        store.append(e, 5, "abc\n").unwrap();
        store.append(e, 3, "abcd\n").unwrap(); // out of order
        let fetched = store.fetch_history(e).unwrap().unwrap();
        assert_eq!(fetched.len(), 2);
        let stats = store.crawl_stats();
        assert_eq!(stats.pages_fetched, 1);
        assert_eq!(stats.revisions_scanned, 2);
        assert_eq!(stats.bytes_scanned, 9);
        assert_eq!(stats.out_of_order, 1);
        assert_eq!(
            store.fetch_history(EntityId::from_u32(99)).unwrap(),
            None,
            "unknown entity is definitively absent, not an error"
        );
    }

    #[test]
    fn create_refuses_existing_store() {
        let fs = MemFs::new();
        let dir = Path::new("/dup");
        ShardedStore::create(&fs, dir, policy(1, 1), budget(1024)).unwrap();
        assert!(ShardedStore::create(&fs, dir, policy(1, 1), budget(1024)).is_err());
    }

    #[test]
    fn shard_policy_validates() {
        assert!(ShardPolicy::default().validate().is_ok());
        assert!(policy(0, 1).validate().is_err());
        assert!(policy(1, 0).validate().is_err());
        let json = serde_json::to_string(&ShardPolicy::default()).unwrap();
        let back: ShardPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ShardPolicy::default());
        assert!(serde_json::from_str::<ShardPolicy>(
            "{\"shards\":0,\"snapshot_every\":1,\"sync\":\"Always\"}"
        )
        .is_err());
    }
}
